#!/usr/bin/env python
"""Manufacture one repro bundle per headline failure mode, for CI.

Drives three real failures end to end and lets each one's capture hook
export a deterministic repro bundle:

1. **SIGKILL mid-lease** — a sharded toy campaign with work stealing
   disabled loses a shard to ``SIGKILL``; the terminal
   :class:`~repro.errors.FabricError` exports a ``journal-verify``
   bundle freezing the victim's durable lease journals.
2. **Tampered scheme certification** — the fast certifier runs a
   SEC-DED-DP scheme with a zeroed parity column; the FAILED
   certificate exports a ``certify`` bundle carrying the violated
   claims and minimal counterexample.
3. **Containment violation** — a campaign compiled with the
   ``swdup-late-check`` tampered pass leaks a detected error to memory;
   the engine's terminal-failure hook exports a ``ladder`` bundle with
   the exact fault plan, seed, and workload.

Every bundle lands under ``--out``; replay them all (in a fresh
process) with ``python examples/replay_bundle.py <out>``.  Exits
nonzero if any expected bundle failed to materialize.

Usage::

    PYTHONPATH=src python tools/make_repro_bundles.py --out bundles
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
import time


def make_lease_bundle(out_dir: str) -> None:
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from tests.inject.fabric_driver import toy_config, toy_units

    from repro.errors import FabricError
    from repro.inject.fabric import CampaignFabric

    with tempfile.TemporaryDirectory(prefix="fabric-") as fabric_dir:
        fabric = CampaignFabric(
            toy_units(4, delay=0.1), os.path.join(fabric_dir, "fab"),
            toy_config(shards=2, lease_ttl_s=1.0, steal=False,
                       max_batches=4, bundle_dir=out_dir))
        result = {}

        def target():
            try:
                fabric.run()
            except FabricError as exc:
                result["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        deadline = time.time() + 30
        victim = None
        while time.time() < deadline and victim is None:
            for _, process in sorted(fabric.processes.items()):
                if process.pid is not None and process.is_alive():
                    victim = process
                    break
            time.sleep(0.01)
        if victim is None:
            raise SystemExit("no shard process appeared to SIGKILL")
        time.sleep(0.3)  # let it journal something durable first
        os.kill(victim.pid, signal.SIGKILL)
        thread.join(60)
        if "error" not in result:
            raise SystemExit("lost lease did not fail the fabric")
    print("lease bundle: fabric failed as designed "
          f"({result['error'].code})")


def make_certify_bundle(out_dir: str) -> None:
    from repro.certify import (Certifier, capture_certificate_bundle,
                               tampered_secded_dp)

    tamper = {"factory": "secded-dp", "kind": "zero-column",
              "position": 11}
    certificate = Certifier(mode="fast", seed=0).certify(
        tampered_secded_dp("zero-column", 11), name="secded-dp")
    if certificate.passed:
        raise SystemExit("tampered scheme certified clean?!")
    path = capture_certificate_bundle(certificate, out_dir,
                                      tamper=tamper)
    print(f"certify bundle: {os.path.basename(path)}")


def make_containment_bundle(out_dir: str) -> None:
    from repro.inject.engine import (CampaignEngine, EngineConfig,
                                     WorkUnit)

    config = EngineConfig(batch_size=4, max_batches=6,
                          bundle_dir=out_dir)
    unit = WorkUnit(unit_id="ladder-cv", kind="gpu-recovery", params={
        "workload": "snap", "scale": 0.1, "build_seed": 3,
        "tamper": {"pass": "swdup-late-check"}, "mode": "swdup"})
    report = CampaignEngine(config).run([unit])
    status = report.units["ladder-cv"].status
    if status != "crashed":
        raise SystemExit(f"tampered pass did not crash the unit "
                         f"(status={status})")
    print("containment bundle: unit crashed as designed")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="directory the bundles are exported to")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    make_lease_bundle(args.out)
    make_certify_bundle(args.out)
    make_containment_bundle(args.out)

    bundles = sorted(name for name in os.listdir(args.out)
                     if name.startswith("bundle-"))
    print(f"exported {len(bundles)} bundle(s):")
    for name in bundles:
        print(f"  {name}")
    if len(bundles) < 3:
        print("expected at least 3 bundles", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
