#!/usr/bin/env python
"""Check relative links (and their anchors) in the repo's markdown files.

Scans every tracked ``*.md`` file for inline links, verifies that
relative targets exist on disk, and that ``#anchor`` fragments match a
heading in the target file (GitHub slug rules, simplified).  External
schemes (http, https, mailto) are skipped — the checker must work
offline.  Exits nonzero and lists every broken link.

Usage::

    python tools/check_markdown_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links: [text](target), ignoring images' leading "!"
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules"}


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading (simplified)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set:
    """All anchor slugs defined by ``markdown``'s headings."""
    without_code = CODE_FENCE.sub("", markdown)
    return {slugify(match) for match in HEADING.findall(without_code)}


def check_file(path: Path, root: Path) -> list:
    """Return human-readable problems for every broken link in ``path``."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in LINK.findall(CODE_FENCE.sub("", text)):
        if target.startswith(SKIP_SCHEMES):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: broken link "
                                f"-> {target}")
                continue
        if anchor and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor.lower() not in slugs:
                problems.append(f"{path.relative_to(root)}: missing anchor "
                                f"-> {target}#{anchor}")
    return problems


def main(argv=None) -> int:
    """Command-line entry point."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path.cwd()
    files = [path for path in sorted(root.rglob("*.md"))
             if not (SKIP_DIRS & set(part for part in path.parts))]
    problems = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} markdown files: "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
