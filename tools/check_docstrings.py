#!/usr/bin/env python
"""Docstring checker for the public ECC API (pydocstyle-lite, offline).

Walks the given packages with ``ast`` and requires a docstring on every
module, every public class, and every public function/method (public =
name without a leading underscore, plus ``__init__`` is exempt).  The
build environment has no pydocstyle wheel, so this covers the subset of
its checks the docs CI job needs without a new dependency.

Usage::

    python tools/check_docstrings.py src/repro/ecc [more paths...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def missing_docstrings(path: Path) -> list:
    """(line, kind, name) for every public definition lacking a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append((1, "module", path.name))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            members = [(child, "method") for child in node.body]
            kind = "class"
        elif isinstance(node, FUNCTION_NODES):
            continue  # visited through their parent below
        else:
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append((node.lineno, kind, node.name))
        for child, child_kind in members:
            if not isinstance(child, FUNCTION_NODES):
                continue
            if child.name.startswith("_") and child.name != "__init__":
                continue
            if child.name == "__init__":
                continue  # documented by the class docstring
            if ast.get_docstring(child) is None:
                problems.append((child.lineno, child_kind,
                                 f"{node.name}.{child.name}"))
    # Module-level functions (not nested, not methods).
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, FUNCTION_NODES) and \
                not node.name.startswith("_") and \
                ast.get_docstring(node) is None:
            problems.append((node.lineno, "function", node.name))
    return sorted(set(problems))


def main(argv=None) -> int:
    """Command-line entry point."""
    argv = sys.argv[1:] if argv is None else argv
    roots = [Path(arg) for arg in argv] or [Path("src/repro/ecc")]
    files = []
    for root in roots:
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    failures = 0
    for path in files:
        for line, kind, name in missing_docstrings(path):
            print(f"{path}:{line}: undocumented public {kind} {name}")
            failures += 1
    print(f"checked {len(files)} files: {failures} missing docstring(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
