"""Tests for the device-level launch API."""

import numpy as np
import pytest

from repro.gpu import (Device, LaunchConfig, MemorySpace, TimingParams,
                       assemble)
from repro.gpu.power import PowerModel


def counting_kernel():
    return assemble("count", """
        S2R R0, SR_TID
        S2R R1, SR_CTAID
        S2R R2, SR_NTID
        IMAD R3, R1, R2, R0
        MOV R4, 1
        ATOM.ADD R5, [0], R4
        STG [R3+8], R3
        EXIT
    """)


class TestDeviceLaunch:
    def test_all_ctas_execute_across_sms(self):
        kernel = counting_kernel()
        memory = MemorySpace(4096)
        result = Device(TimingParams(num_sms=2)).launch(
            kernel, LaunchConfig(6, 64), memory)
        assert memory.read_words(0, 1)[0] == 6 * 64
        assert np.array_equal(memory.read_words(8, 6 * 64),
                              np.arange(6 * 64))
        assert result.cycles > 0
        assert result.issued >= 6 * 64 // 32 * 8

    def test_seconds_follow_clock(self):
        kernel = counting_kernel()
        slow = Device(TimingParams(clock_ghz=1.0)).launch(
            kernel, LaunchConfig(2, 64), MemorySpace(4096))
        fast = Device(TimingParams(clock_ghz=2.0)).launch(
            kernel, LaunchConfig(2, 64), MemorySpace(4096))
        assert slow.seconds == pytest.approx(
            slow.cycles / 1e9)
        assert fast.seconds == pytest.approx(fast.cycles / 2e9)

    def test_pipe_accounting_sums_to_issued(self):
        kernel = counting_kernel()
        result = Device().launch(kernel, LaunchConfig(4, 64),
                                 MemorySpace(4096))
        assert sum(result.issued_by_pipe.values()) == result.issued

    def test_more_sms_do_not_change_results(self):
        kernel = counting_kernel()
        first = MemorySpace(4096)
        second = MemorySpace(4096)
        Device(TimingParams(num_sms=1)).launch(
            kernel, LaunchConfig(4, 64), first)
        Device(TimingParams(num_sms=4)).launch(
            kernel, LaunchConfig(4, 64), second)
        assert np.array_equal(first.words, second.words)

    def test_power_estimate_positive(self):
        kernel = counting_kernel()
        result = Device().launch(kernel, LaunchConfig(2, 64),
                                 MemorySpace(4096))
        estimate = PowerModel().estimate(result)
        assert estimate.watts > 60.0  # above static floor
        assert estimate.joules == pytest.approx(
            estimate.watts * result.seconds)
