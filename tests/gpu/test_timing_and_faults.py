"""Tests for the timing model (occupancy, pipes, cache) and fault model."""

import numpy as np
import pytest

from repro.ecc import SecDedDpSwap, DetectOnlySwap, ResidueCode
from repro.errors import SimulationError
from repro.gpu import (Device, FaultPlan, LaunchConfig, MemorySpace,
                       ResilienceState, TimingParams, assemble,
                       run_functional)


def simple_kernel(body="IADD R1, R1, 1"):
    return assemble("t", f"""
        S2R R0, SR_TID
        {body}
        STG [R0], R1
        EXIT
    """)


class TestOccupancy:
    params = TimingParams()

    def test_register_pressure_limits_ctas(self):
        light = assemble("light", "MOV R1, 1\nEXIT")
        heavy_moves = "\n".join(f"MOV R{i}, {i}" for i in range(1, 65))
        heavy = assemble("heavy", heavy_moves + "\nEXIT")
        launch = LaunchConfig(1, 128)
        light_occ = self.params.occupancy(light, launch)
        heavy_occ = self.params.occupancy(heavy, launch)
        assert heavy_occ.ctas_per_sm < light_occ.ctas_per_sm
        assert heavy_occ.limiter == "registers"

    def test_warp_limit(self):
        kernel = assemble("k", "MOV R1, 1\nEXIT")
        occupancy = self.params.occupancy(kernel, LaunchConfig(64, 1024))
        assert occupancy.warps_per_sm == self.params.max_warps_per_sm

    def test_shared_memory_limit(self):
        kernel = assemble("k", "MOV R1, 1\nEXIT")
        occupancy = self.params.occupancy(
            kernel, LaunchConfig(8, 32, shared_words_per_cta=6144))
        assert occupancy.ctas_per_sm == 2
        assert occupancy.limiter == "shared"

    def test_impossible_launch_raises(self):
        kernel = assemble("k", "MOV R1, 1\nEXIT")
        with pytest.raises(SimulationError):
            self.params.occupancy(
                kernel, LaunchConfig(1, 32, shared_words_per_cta=999999))


class TestTimingBehaviour:
    def test_duplicated_arithmetic_costs_cycles_when_saturated(self):
        # A dense fp64 loop saturates the half-rate pipe: doubling the
        # DFMAs roughly doubles runtime.
        def build(dup):
            body = "DFMA RD2, RD4, RD4, RD2\n" * (2 if dup else 1)
            return assemble("k", f"""
                S2R R0, SR_TID
                MOV R1, 0
            loop:
                {body}
                IADD R1, R1, 1
                ISETP.LT P0, R1, 32
            @P0 BRA loop
                STG [R0], R1
                EXIT
            """)

        device = Device(TimingParams(num_sms=1))
        memory = MemorySpace(4096)
        single = device.launch(build(False), LaunchConfig(8, 128), memory)
        double = device.launch(build(True), LaunchConfig(8, 128),
                               MemorySpace(4096))
        assert double.cycles > single.cycles * 1.5

    def test_cache_hits_shorten_reuse(self):
        # Re-loading the same word repeatedly should hit in L1.
        kernel = assemble("k", """
            S2R R0, SR_TID
            MOV R1, 0
            MOV R2, 0
        loop:
            LDG R3, [0]
            IADD R2, R2, R3
            IADD R1, R1, 1
            ISETP.LT P0, R1, 16
        @P0 BRA loop
            STG [R0+8], R2
            EXIT
        """)
        warm = Device(TimingParams(num_sms=1)).launch(
            kernel, LaunchConfig(1, 32), MemorySpace(256))
        cold = Device(TimingParams(num_sms=1, l1_lines=0)).launch(
            kernel, LaunchConfig(1, 32), MemorySpace(256))
        assert warm.cycles < cold.cycles

    def test_coalescing_cost(self):
        # Strided accesses touch more segments and hold the LSU longer.
        def kernel(stride):
            return assemble("k", f"""
                S2R R0, SR_TID
                IMUL R1, R0, {stride}
                LDG R2, [R1]
                STG [R0+4096], R2
                EXIT
            """)

        device = Device(TimingParams(num_sms=1, l1_lines=0))
        unit = device.launch(kernel(1), LaunchConfig(8, 128),
                             MemorySpace(16384))
        strided = device.launch(kernel(32), LaunchConfig(8, 128),
                                MemorySpace(16384))
        assert strided.memory_transactions > unit.memory_transactions
        assert strided.cycles > unit.cycles

    def test_results_match_functional_mode(self):
        kernel = simple_kernel("IMAD R1, R0, R0, R0")
        timed_memory = MemorySpace(256)
        Device().launch(kernel, LaunchConfig(1, 64), timed_memory)
        functional_memory = MemorySpace(256)
        run_functional(kernel, LaunchConfig(1, 64), functional_memory)
        assert np.array_equal(timed_memory.words, functional_memory.words)


class TestFaultModel:
    def make_state(self, occurrence=1, lane=0, bit=3, where="result",
                   scheme=None):
        return ResilienceState(
            mode="swap" if scheme else "none", scheme=scheme,
            fault=FaultPlan(0, 0, occurrence, lane, bit, where))

    def test_unprotected_fault_corrupts_output(self):
        kernel = simple_kernel("IMAD R1, R0, 3, R0")
        memory = MemorySpace(256)
        state = self.make_state()
        run_functional(kernel, LaunchConfig(1, 32), memory, state)
        assert state.fault_fired
        out = memory.read_words(0, 32)
        want = np.arange(32) * 4
        assert (out != want).sum() == 1  # exactly one lane corrupted

    def test_swap_taint_detected_on_read(self):
        kernel = simple_kernel("IMAD R1, R0, 3, R0")
        memory = MemorySpace(256)
        state = self.make_state(scheme=SecDedDpSwap())
        # Without a shadow, the original writes a valid codeword of the
        # bad value; this kernel is un-duplicated so the fault escapes.
        run_functional(kernel, LaunchConfig(1, 32), memory, state)
        assert state.fault_fired and not state.detected

    def test_fault_plan_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, 0, 0, lane=99, bit=0)
        with pytest.raises(SimulationError):
            FaultPlan(0, 0, 0, lane=0, bit=99)
        with pytest.raises(SimulationError):
            FaultPlan(0, 0, 0, lane=0, bit=0, where="everywhere")

    def test_inactive_lane_fault_is_masked(self):
        kernel = assemble("k", """
            S2R R0, SR_TID
            ISETP.LT P0, R0, 8
        @P0 IADD R1, R0, 1
            STG [R0], R1
            EXIT
        """)
        memory = MemorySpace(256)
        state = ResilienceState(
            mode="none", fault=FaultPlan(0, 0, 1, lane=20, bit=0))
        run_functional(kernel, LaunchConfig(1, 32), memory, state)
        assert not state.fault_fired  # lane 20 never executed the IADD

    def test_detection_event_recording(self):
        from repro.compiler import compile_for_scheme
        kernel = assemble("k", """
            S2R R0, SR_TID
            IADD R1, R0, 5
            IMAD R2, R1, 2, R0
            STG [R0], R2
            EXIT
        """)
        launch = LaunchConfig(1, 32)
        compiled = compile_for_scheme(kernel, launch, "swap-ecc")
        memory = MemorySpace(256)
        state = ResilienceState(
            mode="swap", scheme=DetectOnlySwap(ResidueCode(7)),
            fault=FaultPlan(0, 0, 2, lane=4, bit=7))
        run_functional(compiled.kernel, launch, memory, state)
        assert state.detected
        assert state.events[0].kind == "due"


class TestAccessProfiles:
    """Direct unit tests for the single-pass coalescing/bank helpers.

    These run once per memory instruction on the simulator's hot path
    (see ``Warp._exec_memory``); the cases pin the transaction and
    conflict counts the timing model bills against.
    """

    def test_global_coalesced_single_segment(self):
        from repro.gpu.warp import global_access_profile
        addresses = np.arange(32, dtype=np.uint32)
        mask = np.ones(32, dtype=bool)
        transactions, segments = global_access_profile(
            addresses, mask, wide=False)
        assert transactions == 1
        assert segments == (0,)

    def test_global_strided_counts_distinct_segments(self):
        from repro.gpu.warp import global_access_profile
        addresses = np.arange(32, dtype=np.uint32) * 32
        mask = np.ones(32, dtype=bool)
        transactions, segments = global_access_profile(
            addresses, mask, wide=False)
        assert transactions == 32
        assert segments == tuple(range(32))

    def test_global_wide_issues_each_part(self):
        from repro.gpu.warp import global_access_profile
        # Even addresses 0..62: low parts span segments 0-1, high parts
        # (address + 1) span the same two segments -> 2 + 2.
        addresses = np.arange(32, dtype=np.uint32) * 2
        mask = np.ones(32, dtype=bool)
        transactions, segments = global_access_profile(
            addresses, mask, wide=True)
        assert transactions == 4
        assert segments == (0, 1)

    def test_global_inactive_lanes_ignored(self):
        from repro.gpu.warp import global_access_profile
        addresses = np.zeros(32, dtype=np.uint32)
        addresses[7] = 4096  # would add a segment if lane 7 were active
        mask = np.ones(32, dtype=bool)
        mask[7] = False
        transactions, segments = global_access_profile(
            addresses, mask, wide=False)
        assert transactions == 1
        assert segments == (0,)
        assert global_access_profile(
            addresses, np.zeros(32, dtype=bool), wide=False) == (0, ())

    def test_shared_broadcast_is_conflict_free(self):
        from repro.gpu.warp import shared_bank_conflicts
        addresses = np.full(32, 5, dtype=np.uint32)
        mask = np.ones(32, dtype=bool)
        assert shared_bank_conflicts(addresses, mask, wide=False) == 1

    def test_shared_same_bank_serializes(self):
        from repro.gpu.warp import shared_bank_conflicts
        # Eight distinct addresses all hitting bank 0.
        addresses = (np.arange(32, dtype=np.uint32) % 8) * 32
        mask = np.ones(32, dtype=bool)
        assert shared_bank_conflicts(addresses, mask, wide=False) == 8

    def test_shared_wide_sums_both_parts(self):
        from repro.gpu.warp import shared_bank_conflicts
        addresses = np.arange(32, dtype=np.uint32) * 2
        mask = np.ones(32, dtype=bool)
        # Each part lands 2 distinct addresses per touched bank.
        assert shared_bank_conflicts(addresses, mask, wide=True) == 4

    def test_shared_empty_mask_is_free(self):
        from repro.gpu.warp import shared_bank_conflicts
        addresses = np.zeros(32, dtype=np.uint32)
        assert shared_bank_conflicts(
            addresses, np.zeros(32, dtype=bool), wide=False) == 0
