"""Tests for the multi-bit / cross-lane fault-model extension.

Three layers: FaultPlan construction-time validation (malformed strike
parameters raise :class:`~repro.errors.FaultModelError`, never wrap
silently), the derived strike geometry (bits/burst/lanes resolution and
drop-not-wrap mask clipping), and end-to-end warp injection (multi-bit
and correlated multi-lane strikes land exactly where the plan says,
and the certified schemes detect what their claims promise).
"""

import numpy as np
import pytest

from repro.ecc import DetectOnlySwap, ParityCode, SecDedDpSwap
from repro.errors import FaultModelError, SimulationError
from repro.gpu import (FaultPlan, LaunchConfig, MemorySpace,
                       ResilienceState, assemble, run_functional)


def simple_kernel(body="IMAD R1, R0, 3, R0"):
    return assemble("t", f"""
        S2R R0, SR_TID
        {body}
        STG [R0], R1
        EXIT
    """)


class TestFaultPlanValidation:
    def test_empty_bits_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, bits=())

    def test_out_of_range_bits_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, bits=(0, 64))
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, bits=(-1,))

    def test_duplicate_bits_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, bits=(3, 3))

    def test_nonpositive_burst_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, burst=0)
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, burst=-2)

    def test_bad_lanes_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, lanes=())
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, lanes=(0, 32))
        with pytest.raises(FaultModelError):
            FaultPlan(0, 0, 0, lane=0, bit=0, lanes=(4, 4))

    def test_fault_model_error_is_a_simulation_error(self):
        # campaign code catches SimulationError; malformed plans must not
        # slip past those handlers
        with pytest.raises(SimulationError):
            FaultPlan(0, 0, 0, lane=0, bit=0, bits=(99,))

    def test_lists_normalise_to_tuples(self):
        plan = FaultPlan(0, 0, 0, lane=0, bit=0, bits=[1, 2], lanes=[0, 3])
        assert plan.bits == (1, 2)
        assert plan.lanes == (0, 3)


class TestStrikeGeometry:
    def test_default_is_single_bit_single_lane(self):
        plan = FaultPlan(0, 0, 0, lane=5, bit=9)
        assert plan.strike_bits == (9,)
        assert plan.strike_lanes == (5,)
        assert plan.multiplicity == 1
        assert plan.strike_mask(32) == 1 << 9

    def test_burst_expands_from_base_bit(self):
        plan = FaultPlan(0, 0, 0, lane=0, bit=4, burst=3)
        assert plan.strike_bits == (4, 5, 6)
        assert plan.multiplicity == 3
        assert plan.strike_mask(32) == 0b111 << 4

    def test_explicit_bits_override_burst(self):
        plan = FaultPlan(0, 0, 0, lane=0, bit=4, burst=3, bits=(1, 30))
        assert plan.strike_bits == (1, 30)
        assert plan.multiplicity == 2

    def test_mask_drops_bits_past_width_never_wraps(self):
        plan = FaultPlan(0, 0, 0, lane=0, bit=30, burst=4)
        assert plan.strike_bits == (30, 31, 32, 33)
        assert plan.strike_mask(32) == (1 << 30) | (1 << 31)
        assert plan.strike_mask(64) == 0b1111 << 30

    def test_fully_clipped_mask_is_zero(self):
        plan = FaultPlan(0, 0, 0, lane=0, bit=40)
        assert plan.strike_mask(32) == 0

    def test_lanes_include_base_lane(self):
        plan = FaultPlan(0, 0, 0, lane=7, bit=0, lanes=(2, 9))
        assert 7 in plan.strike_lanes
        assert set(plan.strike_lanes) == {2, 7, 9}


class TestWarpInjection:
    def run_plan(self, plan, mode="none", scheme=None):
        kernel = simple_kernel()
        memory = MemorySpace(256)
        state = ResilienceState(mode=mode, scheme=scheme, fault=plan)
        run_functional(kernel, LaunchConfig(1, 32), memory, state)
        return memory, state

    def test_multibit_strike_flips_exact_mask_in_one_lane(self):
        plan = FaultPlan(0, 0, 1, lane=6, bit=0, bits=(1, 4, 9))
        memory, state = self.run_plan(plan)
        assert state.fault_fired
        out = memory.read_words(0, 32)
        want = np.arange(32) * 4
        assert (out != want).sum() == 1
        assert int(out[6]) == int(want[6]) ^ ((1 << 1) | (1 << 4) | (1 << 9))

    def test_correlated_strike_hits_every_planned_lane(self):
        plan = FaultPlan(0, 0, 1, lane=3, bit=2, lanes=(3, 11, 19))
        memory, state = self.run_plan(plan)
        assert state.fault_fired
        out = memory.read_words(0, 32)
        want = np.arange(32) * 4
        corrupted = np.nonzero(out != want)[0]
        assert sorted(corrupted) == [3, 11, 19]
        for lane in (3, 11, 19):
            assert int(out[lane]) == int(want[lane]) ^ (1 << 2)

    def test_fully_clipped_strike_fires_as_noop(self):
        plan = FaultPlan(0, 0, 1, lane=0, bit=40)
        memory, state = self.run_plan(plan)
        assert state.fault_fired
        out = memory.read_words(0, 32)
        assert np.array_equal(out, np.arange(32) * 4)

    def compiled_run(self, plan, scheme):
        from repro.compiler import compile_for_scheme
        kernel = assemble("k", """
            S2R R0, SR_TID
            IADD R1, R0, 5
            IMAD R2, R1, 2, R0
            STG [R0], R2
            EXIT
        """)
        launch = LaunchConfig(1, 32)
        compiled = compile_for_scheme(kernel, launch, "swap-ecc")
        memory = MemorySpace(256)
        state = ResilienceState(mode="swap", scheme=scheme, fault=plan)
        run_functional(compiled.kernel, launch, memory, state)
        return state

    def test_secded_dp_detects_double_bit_pipeline_strike(self):
        # the certified guarantee: weight-2 pipeline errors never escape
        plan = FaultPlan(0, 0, 2, lane=4, bit=7, bits=(7, 13))
        state = self.compiled_run(plan, SecDedDpSwap())
        assert state.fault_fired
        assert state.detected

    def test_parity_misses_even_weight_strike(self):
        # the MBU degradation story: parity is blind to even masks
        plan = FaultPlan(0, 0, 2, lane=4, bit=7, bits=(7, 13))
        state = self.compiled_run(plan, DetectOnlySwap(ParityCode()))
        assert state.fault_fired
        assert not state.detected

    def test_parity_catches_odd_weight_strike(self):
        plan = FaultPlan(0, 0, 2, lane=4, bit=7, bits=(7, 13, 21))
        state = self.compiled_run(plan, DetectOnlySwap(ParityCode()))
        assert state.fault_fired
        assert state.detected

    def test_correlated_multilane_strike_detected_in_every_lane(self):
        plan = FaultPlan(0, 0, 2, lane=4, bit=7, lanes=(4, 5, 6))
        state = self.compiled_run(plan, SecDedDpSwap())
        assert state.fault_fired
        assert state.detected
        due_events = [event for event in state.events
                      if event.kind in ("due", "trap")]
        assert len(due_events) >= 1
