"""Tests for the hang watchdog: step budgets, deadlines, HANG verdicts."""

import pytest

from repro.errors import HangError, SimulationError
from repro.gpu import (Device, LaunchConfig, MemorySpace, Watchdog,
                       WatchdogConfig, assemble, run_functional)

#: decrements R1 forever once a fault makes it loop; clean runs exit fast
LOOP_SOURCE = """
    S2R R0, SR_TID
    IADD R1, RZ, 3
loop:
    IADD R1, R1, -1
    ISETP.NE P0, R1, 0
@P0 BRA loop
    STG [R0], R1
    EXIT
"""


def loop_kernel():
    return assemble("spin", LOOP_SOURCE), LaunchConfig(1, 32)


class TestWatchdogConfig:
    def test_rejects_non_positive_budgets(self):
        with pytest.raises(SimulationError, match="max_steps"):
            WatchdogConfig(max_steps=0)
        with pytest.raises(SimulationError, match="max_warp_steps"):
            WatchdogConfig(max_warp_steps=-1)
        with pytest.raises(SimulationError, match="deadline_s"):
            WatchdogConfig(deadline_s=0.0)
        with pytest.raises(SimulationError, match="deadline_check_interval"):
            WatchdogConfig(deadline_check_interval=0)

    def test_none_disables_budgets(self):
        watchdog = Watchdog(WatchdogConfig(max_steps=None,
                                           max_warp_steps=None))
        watchdog.start()
        for _ in range(1000):
            watchdog.tick(0, 0)
        assert watchdog.steps == 1000


class TestWatchdogBudgets:
    def test_global_budget_raises_hang(self):
        watchdog = Watchdog(WatchdogConfig(max_steps=5), name="k")
        for _ in range(5):
            watchdog.tick(0, 0)
        with pytest.raises(HangError, match="runaway"):
            watchdog.tick(0, 0)

    def test_hang_is_a_simulation_error(self):
        # Old crash-isolation paths catch SimulationError; a hang must
        # still land there when nobody handles it specifically.
        assert issubclass(HangError, SimulationError)

    def test_per_warp_budget_catches_one_spinner(self):
        watchdog = Watchdog(WatchdogConfig(max_steps=None, max_warp_steps=4))
        for warp in range(8):  # spread across warps: all fine
            for _ in range(4):
                watchdog.tick(0, warp)
        with pytest.raises(HangError, match="warp 3 of CTA 0"):
            watchdog.tick(0, 3)

    def test_clear_cta_resets_only_that_cta(self):
        watchdog = Watchdog(WatchdogConfig(max_steps=None, max_warp_steps=2))
        for _ in range(2):
            watchdog.tick(0, 0)
            watchdog.tick(1, 0)
        watchdog.clear_cta(0)
        watchdog.tick(0, 0)  # budget replenished
        with pytest.raises(HangError, match="CTA 1"):
            watchdog.tick(1, 0)  # CTA 1 untouched

    def test_deadline_checked_every_interval(self):
        clock = iter([0.0, 10.0]).__next__
        watchdog = Watchdog(
            WatchdogConfig(max_steps=None, deadline_s=1.0,
                           deadline_check_interval=8),
            clock=clock)
        watchdog.start()
        for _ in range(7):  # below the interval: clock never read
            watchdog.tick(0, 0)
        with pytest.raises(HangError, match="wall-clock"):
            watchdog.tick(0, 0)

    def test_deadline_needs_start(self):
        watchdog = Watchdog(WatchdogConfig(deadline_s=0.001))
        watchdog.check_deadline()  # unarmed: no-op


class TestWatchdogInSimulator:
    def test_functional_max_steps_is_a_hang(self):
        kernel, launch = loop_kernel()
        with pytest.raises(HangError, match="functional steps"):
            run_functional(kernel, launch, MemorySpace(64), max_steps=10)

    def test_functional_clean_run_unaffected(self):
        kernel, launch = loop_kernel()
        memory = MemorySpace(64)
        run_functional(kernel, launch, memory)
        assert int(memory.words[0]) == 0

    def test_explicit_watchdog_overrides_max_steps(self):
        kernel, launch = loop_kernel()
        watchdog = Watchdog(WatchdogConfig(max_steps=7), name="spin")
        with pytest.raises(HangError, match="7 functional steps"):
            run_functional(kernel, launch, MemorySpace(64),
                           max_steps=10_000, watchdog=watchdog)

    def test_timing_model_ticks_watchdog(self):
        kernel, launch = loop_kernel()
        watchdog = Watchdog(WatchdogConfig(max_steps=11))
        with pytest.raises(HangError):
            Device().launch(kernel, launch, MemorySpace(64),
                            watchdog=watchdog)
        clean = Device().launch(kernel, loop_kernel()[1], MemorySpace(64),
                                watchdog=Watchdog())
        assert clean.cycles > 0
