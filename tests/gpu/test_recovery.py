"""Tests for checkpoint-restart recovery over SwapCodes detection."""

import numpy as np
import pytest

from repro.compiler import compile_for_scheme
from repro.ecc import SecDedDpSwap
from repro.errors import SimulationError
from repro.gpu import (FaultPlan, LaunchConfig, MemorySpace,
                       ResilienceState, assemble)
from repro.gpu.recovery import run_with_recovery

SOURCE = """
    S2R R0, SR_TID
    LDG R1, [R0]
    IMAD R2, R1, 7, R1
    STG [R0+64], R2
    EXIT
"""


def compiled_kernel():
    kernel = assemble("k", SOURCE)
    launch = LaunchConfig(1, 32)
    return compile_for_scheme(kernel, launch, "swap-ecc").kernel, launch


def checkpoint():
    memory = MemorySpace(256)
    memory.write_words(0, list(range(32)))
    return memory


def expected():
    values = np.arange(32)
    return (values * 7 + values).astype(np.uint32)


class TestRecovery:
    def test_clean_run_single_attempt(self):
        kernel, launch = compiled_kernel()
        result = run_with_recovery(
            kernel, launch, checkpoint(),
            lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()))
        assert result.attempts == 1
        assert not result.recovered
        assert np.array_equal(result.memory.read_words(64, 32), expected())

    def test_transient_fault_costs_one_retry(self):
        kernel, launch = compiled_kernel()
        states = []

        def make_state():
            # The transient strikes only the first attempt.
            fault = FaultPlan(0, 0, 1, lane=5, bit=9) if not states \
                else None
            state = ResilienceState(mode="swap", scheme=SecDedDpSwap(),
                                    fault=fault)
            states.append(state)
            return state

        result = run_with_recovery(kernel, launch, checkpoint(), make_state)
        assert result.attempts == 2
        assert result.recovered
        assert np.array_equal(result.memory.read_words(64, 32), expected())

    def test_persistent_fault_exhausts_attempts(self):
        # A fresh FaultPlan per attempt, so every attempt detects and the
        # retry budget is truly exhausted.
        kernel, launch = compiled_kernel()
        states = []

        def make_state():
            state = ResilienceState(
                mode="swap", scheme=SecDedDpSwap(),
                fault=FaultPlan(0, 0, 1, lane=5, bit=9))
            states.append(state)
            return state

        with pytest.raises(SimulationError,
                           match=r"2 attempts \(2 detections\)"):
            run_with_recovery(kernel, launch, checkpoint(), make_state,
                              max_attempts=2)
        assert len(states) == 2
        assert all(state.detected for state in states)

    def test_zero_attempts_rejected_up_front(self):
        kernel, launch = compiled_kernel()
        with pytest.raises(SimulationError, match="at least 1"):
            run_with_recovery(
                kernel, launch, checkpoint(),
                lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()),
                max_attempts=0)

    def test_negative_attempts_rejected_up_front(self):
        kernel, launch = compiled_kernel()
        with pytest.raises(SimulationError, match="at least 1"):
            run_with_recovery(
                kernel, launch, checkpoint(),
                lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()),
                max_attempts=-3)

    def test_checkpoint_never_mutated(self):
        kernel, launch = compiled_kernel()
        image = checkpoint()
        before = image.words.copy()
        run_with_recovery(
            kernel, launch, image,
            lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()))
        assert np.array_equal(image.words, before)
