"""Tests for checkpoint-restart recovery over SwapCodes detection."""

import os
import random

import numpy as np
import pytest

from repro.compiler import compile_for_scheme
from repro.ecc import DetectOnlySwap, ParityCode, SecDedDpSwap
from repro.errors import ContainmentViolation, SimulationError
from repro.gpu import (LADDER_OUTCOMES, ContainmentAuditor, FaultPlan,
                       LadderConfig, LadderReport, LaunchConfig, MemorySpace,
                       ResilienceState, WatchdogConfig, assemble,
                       run_functional_cta, run_with_ladder)
from repro.gpu.recovery import run_with_recovery

SOURCE = """
    S2R R0, SR_TID
    LDG R1, [R0]
    IMAD R2, R1, 7, R1
    STG [R0+64], R2
    EXIT
"""


def compiled_kernel():
    kernel = assemble("k", SOURCE)
    launch = LaunchConfig(1, 32)
    return compile_for_scheme(kernel, launch, "swap-ecc").kernel, launch


def checkpoint():
    memory = MemorySpace(256)
    memory.write_words(0, list(range(32)))
    return memory


def expected():
    values = np.arange(32)
    return (values * 7 + values).astype(np.uint32)


class TestRecovery:
    def test_clean_run_single_attempt(self):
        kernel, launch = compiled_kernel()
        result = run_with_recovery(
            kernel, launch, checkpoint(),
            lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()))
        assert result.attempts == 1
        assert not result.recovered
        assert np.array_equal(result.memory.read_words(64, 32), expected())

    def test_transient_fault_costs_one_retry(self):
        kernel, launch = compiled_kernel()
        states = []

        def make_state():
            # The transient strikes only the first attempt.
            fault = FaultPlan(0, 0, 1, lane=5, bit=9) if not states \
                else None
            state = ResilienceState(mode="swap", scheme=SecDedDpSwap(),
                                    fault=fault)
            states.append(state)
            return state

        result = run_with_recovery(kernel, launch, checkpoint(), make_state)
        assert result.attempts == 2
        assert result.recovered
        assert np.array_equal(result.memory.read_words(64, 32), expected())

    def test_persistent_fault_exhausts_attempts(self):
        # A fresh FaultPlan per attempt, so every attempt detects and the
        # retry budget is truly exhausted.
        kernel, launch = compiled_kernel()
        states = []

        def make_state():
            state = ResilienceState(
                mode="swap", scheme=SecDedDpSwap(),
                fault=FaultPlan(0, 0, 1, lane=5, bit=9))
            states.append(state)
            return state

        with pytest.raises(SimulationError,
                           match=r"2 attempts \(2 detections\)"):
            run_with_recovery(kernel, launch, checkpoint(), make_state,
                              max_attempts=2)
        assert len(states) == 2
        assert all(state.detected for state in states)

    def test_zero_attempts_rejected_up_front(self):
        kernel, launch = compiled_kernel()
        with pytest.raises(SimulationError, match="at least 1"):
            run_with_recovery(
                kernel, launch, checkpoint(),
                lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()),
                max_attempts=0)

    def test_negative_attempts_rejected_up_front(self):
        kernel, launch = compiled_kernel()
        with pytest.raises(SimulationError, match="at least 1"):
            run_with_recovery(
                kernel, launch, checkpoint(),
                lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()),
                max_attempts=-3)

    def test_checkpoint_never_mutated(self):
        kernel, launch = compiled_kernel()
        image = checkpoint()
        before = image.words.copy()
        run_with_recovery(
            kernel, launch, image,
            lambda: ResilienceState(mode="swap", scheme=SecDedDpSwap()))
        assert np.array_equal(image.words, before)

    def test_reused_state_object_raises(self):
        # The docstring has always demanded a fresh state per attempt;
        # silently reusing one (a fired fault latch) degraded to zero
        # injection.  Now it is validated.
        kernel, launch = compiled_kernel()
        shared = ResilienceState(mode="swap", scheme=SecDedDpSwap(),
                                 fault=FaultPlan(0, 0, 1, lane=5, bit=9))
        with pytest.raises(SimulationError, match="same ResilienceState"):
            run_with_recovery(kernel, launch, checkpoint(), lambda: shared)

    def test_already_fired_state_raises(self):
        kernel, launch = compiled_kernel()
        stale = ResilienceState(mode="swap", scheme=SecDedDpSwap())
        stale.fault_fired = True
        with pytest.raises(SimulationError, match="already ran"):
            run_with_recovery(kernel, launch, checkpoint(), lambda: stale)

    def test_non_state_return_raises(self):
        kernel, launch = compiled_kernel()
        with pytest.raises(SimulationError, match="must return"):
            run_with_recovery(kernel, launch, checkpoint(), lambda: None)


MULTI_CTA_SOURCE = """
    S2R R0, SR_TID
    S2R R1, SR_CTAID
    S2R R2, SR_NTID
    IMAD R0, R1, R2, R0
    LDG R1, [R0]
    IMAD R2, R1, 7, R1
    STG [R0+128], R2
    EXIT
"""


def multi_cta_kernel(ctas=4):
    kernel = assemble("grid", MULTI_CTA_SOURCE)
    launch = LaunchConfig(ctas, 32)
    return compile_for_scheme(kernel, launch, "swap-ecc").kernel, launch


def multi_cta_checkpoint(ctas=4):
    memory = MemorySpace(512)
    memory.write_words(0, list(range(32 * ctas)))
    return memory


def multi_cta_expected(ctas=4):
    values = np.arange(32 * ctas)
    return (values * 8).astype(np.uint32)


def make_states(scheme_factory, *faults):
    """A make_state closure arming ``faults`` one per attempt, in order."""
    queue = list(faults)

    def make_state():
        fault = queue.pop(0) if queue else None
        return ResilienceState(mode="swap", scheme=scheme_factory(),
                               fault=fault)

    return make_state


class TestRecoveryLadder:
    def test_clean_run_is_ok(self):
        kernel, launch = compiled_kernel()
        report = run_with_ladder(kernel, launch, checkpoint(),
                                 make_states(SecDedDpSwap))
        assert report.outcome == "ok"
        assert report.succeeded and not report.recovered
        assert report.cta_replays == 0 and report.kernel_replays == 0
        assert report.replayed_instructions == 0
        assert np.array_equal(report.memory.read_words(64, 32), expected())

    def test_storage_error_corrected_in_place(self):
        # Rung 0: SEC-DED-DP scrubs a storage upset at the next read —
        # no halt, no replay, one scrub-log entry.
        kernel, launch = compiled_kernel()
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(SecDedDpSwap,
                        FaultPlan(0, 0, 1, lane=5, bit=9, where="storage")))
        assert report.outcome == "corrected"
        assert report.corrected_in_place == 1
        assert report.cta_replays == 0 and report.kernel_replays == 0
        assert report.replayed_instructions == 0
        assert np.array_equal(report.memory.read_words(64, 32), expected())

    def test_storage_error_under_detect_only_replays(self):
        # The same storage upset under parity has no correction story:
        # it must DUE and climb to rung 1.
        kernel, launch = compiled_kernel()
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(lambda: DetectOnlySwap(ParityCode()),
                        FaultPlan(0, 0, 1, lane=5, bit=9, where="storage")))
        assert report.outcome == "cta_replayed"
        assert report.detections == 1 and report.cta_replays == 1
        assert np.array_equal(report.memory.read_words(64, 32), expected())

    def test_pipeline_error_replays_one_cta(self):
        kernel, launch = compiled_kernel()
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(SecDedDpSwap, FaultPlan(0, 0, 1, lane=5, bit=9)))
        assert report.outcome == "cta_replayed"
        assert report.recovered
        assert report.kernel_replays == 0
        assert report.replayed_instructions > 0
        assert np.array_equal(report.memory.read_words(64, 32), expected())

    def test_rung_one_disabled_escalates_to_kernel_replay(self):
        kernel, launch = compiled_kernel()
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(SecDedDpSwap, FaultPlan(0, 0, 1, lane=5, bit=9)),
            config=LadderConfig(max_cta_replays=0))
        assert report.outcome == "kernel_replayed"
        assert report.kernel_replays == 1
        assert np.array_equal(report.memory.read_words(64, 32), expected())

    def test_multi_cta_replays_only_struck_cta(self):
        kernel, launch = multi_cta_kernel()
        report = run_with_ladder(
            kernel, launch, multi_cta_checkpoint(),
            make_states(SecDedDpSwap, FaultPlan(2, 0, 2, lane=7, bit=11)))
        assert report.outcome == "cta_replayed"
        assert report.cta_replays == 1
        # Only CTA 2 re-ran: the replay overhead is about a quarter of
        # one full grid pass.
        assert report.replayed_instructions * 3 < report.total_instructions
        assert np.array_equal(report.memory.read_words(128, 128),
                              multi_cta_expected())

    def test_persistent_fault_exhausts_ladder_to_due(self):
        # A stuck-at cell strikes every attempt: the ladder must burn its
        # bounded budgets and surface a DUE, never loop forever.
        kernel, launch = compiled_kernel()
        attempts = []

        def make_state():
            state = ResilienceState(
                mode="swap", scheme=DetectOnlySwap(ParityCode()),
                fault=FaultPlan(0, 0, 1, lane=5, bit=9, where="storage"))
            attempts.append(state)
            return state

        config = LadderConfig(max_cta_replays=1, max_kernel_replays=2)
        report = run_with_ladder(kernel, launch, checkpoint(), make_state,
                                 config=config)
        assert report.outcome == "due"
        assert not report.succeeded
        assert report.memory is None
        # (initial + 1 CTA replay) per kernel attempt, 3 kernel attempts.
        assert len(attempts) == 6
        assert report.detections == 6
        assert report.cta_replays == 3 and report.kernel_replays == 2

    def test_persistent_fault_multi_cta_still_bounded(self):
        kernel, launch = multi_cta_kernel()
        attempts = []

        def make_state():
            state = ResilienceState(
                mode="swap", scheme=DetectOnlySwap(ParityCode()),
                fault=FaultPlan(1, 0, 2, lane=3, bit=4, where="storage"))
            attempts.append(state)
            return state

        report = run_with_ladder(kernel, launch, multi_cta_checkpoint(),
                                 make_state)
        assert report.outcome == "due"
        assert len(attempts) == 6  # same bound as single-CTA: never loops

    def test_hang_exhausts_ladder_to_hang(self):
        kernel, launch = compiled_kernel()
        config = LadderConfig(watchdog=WatchdogConfig(max_steps=4))
        report = run_with_ladder(kernel, launch, checkpoint(),
                                 make_states(SecDedDpSwap), config=config)
        assert report.outcome == "hang"
        assert report.hangs > 0
        assert report.memory is None

    def test_events_drained_across_attempts(self):
        kernel, launch = compiled_kernel()
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(SecDedDpSwap, FaultPlan(0, 0, 1, lane=5, bit=9)))
        assert [event.kind for event in report.events] == ["due"]
        assert report.faults_fired == 1

    def test_checkpoint_never_mutated(self):
        kernel, launch = compiled_kernel()
        image = checkpoint()
        before = image.words.copy()
        run_with_ladder(kernel, launch, image,
                        make_states(SecDedDpSwap,
                                    FaultPlan(0, 0, 1, lane=5, bit=9)))
        assert np.array_equal(image.words, before)

    def test_reused_state_across_rungs_raises(self):
        # The detection forces a CTA replay, whose fresh-state request
        # returns the same object — the reuse the validation exists for.
        kernel, launch = compiled_kernel()
        shared = ResilienceState(mode="swap", scheme=SecDedDpSwap(),
                                 fault=FaultPlan(0, 0, 1, lane=5, bit=9))
        with pytest.raises(SimulationError, match="same ResilienceState"):
            run_with_ladder(kernel, launch, checkpoint(), lambda: shared)

    def test_negative_budgets_rejected(self):
        with pytest.raises(SimulationError, match="max_cta_replays"):
            LadderConfig(max_cta_replays=-1)
        with pytest.raises(SimulationError, match="max_kernel_replays"):
            LadderConfig(max_kernel_replays=-2)


class TestContainmentAuditor:
    def test_detections_audit_clean(self):
        kernel, launch = compiled_kernel()
        auditor = ContainmentAuditor(kernel, launch)
        report = run_with_ladder(
            kernel, launch, checkpoint(),
            make_states(SecDedDpSwap, FaultPlan(0, 0, 1, lane=5, bit=9)),
            auditor=auditor)
        assert report.outcome == "cta_replayed"
        assert report.audits == 1
        assert auditor.violations == []

    def test_doctored_memory_is_a_violation(self):
        # Manufacture a leak: complete the CTA cleanly, then corrupt one
        # word of "post-detection" memory before auditing the prefix.
        kernel, launch = compiled_kernel()
        image = checkpoint()
        snapshot = image.words.copy()
        steps = run_functional_cta(kernel, launch, 0, image,
                                   ResilienceState())
        image.words[64] ^= 1
        auditor = ContainmentAuditor(kernel, launch)
        with pytest.raises(ContainmentViolation, match="leaked 1"):
            auditor.audit(0, snapshot, steps, image)
        assert auditor.violations == [(0, [64])]

    def test_non_raising_auditor_records_addresses(self):
        kernel, launch = compiled_kernel()
        image = checkpoint()
        snapshot = image.words.copy()
        steps = run_functional_cta(kernel, launch, 0, image,
                                   ResilienceState())
        image.words[70] ^= 4
        image.words[71] ^= 4
        auditor = ContainmentAuditor(kernel, launch,
                                     raise_on_violation=False)
        assert auditor.audit(0, snapshot, steps, image) == [70, 71]
        assert auditor.audits == 1


class TestLadderStress:
    def test_randomized_faults_never_leak_or_loop(self):
        # Seeded via REPRO_STRESS_SEED so CI can fan the matrix out.
        seed = int(os.environ.get("REPRO_STRESS_SEED", "0"))
        rng = random.Random(seed)
        kernel, launch = multi_cta_kernel()
        want = multi_cta_expected()
        for trial in range(12):
            where = rng.choice(["result", "storage"])
            plan = FaultPlan(
                cta_index=rng.randrange(launch.grid_ctas),
                warp_index=0, occurrence=rng.randrange(12),
                lane=rng.randrange(32), bit=rng.randrange(32), where=where)
            scheme = rng.choice(
                [SecDedDpSwap, lambda: DetectOnlySwap(ParityCode())])
            auditor = ContainmentAuditor(kernel, launch)
            report = run_with_ladder(
                kernel, launch, multi_cta_checkpoint(),
                make_states(scheme, plan), auditor=auditor)
            assert report.outcome in LADDER_OUTCOMES
            assert auditor.violations == []
            assert report.kernel_replays <= 2
            if report.succeeded:
                assert np.array_equal(report.memory.read_words(128, 128),
                                      want), (seed, trial, plan)
            assert isinstance(report, LadderReport)
