"""Tests for the assembler and ISA metadata."""

import pytest

from repro.errors import AssemblyError
from repro.gpu import OPCODES, PT, RZ, Operand, OperandKind, assemble, \
    parse_instruction


class TestParseInstruction:
    def test_basic_add(self):
        instruction = parse_instruction("IADD R1, R2, 5")
        assert instruction.op == "IADD"
        assert instruction.dest.value == 1
        assert instruction.sources[0].value == 2
        assert instruction.sources[1].kind is OperandKind.IMMEDIATE
        assert instruction.sources[1].value == 5

    def test_predicated_negated(self):
        instruction = parse_instruction("@!P2 MOV R1, R2")
        assert instruction.predicate == 2
        assert instruction.predicate_negated

    def test_setp_compare_modifier(self):
        instruction = parse_instruction("ISETP.GE P0, R1, R2")
        assert instruction.compare == "GE"
        assert instruction.dest.kind is OperandKind.PREDICATE

    def test_setp_without_compare_rejected(self):
        with pytest.raises(AssemblyError):
            parse_instruction("ISETP P0, R1, R2")

    def test_memory_operand(self):
        instruction = parse_instruction("LDG R1, [R2+12]")
        assert instruction.offset == 12
        assert instruction.sources[0].value == 2

    def test_immediate_address(self):
        instruction = parse_instruction("STG [64], R1")
        assert instruction.sources[0].value == RZ
        assert instruction.offset == 64

    def test_register_pair(self):
        instruction = parse_instruction("DFMA RD2, RD4, RD6, RD8")
        assert instruction.dest.kind is OperandKind.REGISTER64
        assert instruction.dest_registers() == (2, 3)

    def test_odd_pair_rejected(self):
        with pytest.raises(AssemblyError):
            parse_instruction("DADD RD3, RD4, RD6")

    def test_float_literal(self):
        instruction = parse_instruction("FADD R1, R2, 1.5")
        import struct
        expected = struct.unpack("<I", struct.pack("<f", 1.5))[0]
        assert instruction.sources[1].value == expected

    def test_branch_with_reconverge(self):
        instruction = parse_instruction("@P0 BRA out, reconv=join")
        assert instruction.target == "out"
        assert instruction.reconverge == "join"

    def test_shuffle_needs_mode(self):
        with pytest.raises(AssemblyError):
            parse_instruction("SHFL R1, R2, 16")

    def test_atom_needs_op(self):
        with pytest.raises(AssemblyError):
            parse_instruction("ATOM R1, [R2], R3")

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblyError):
            parse_instruction("IADD R1, R2")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblyError):
            parse_instruction("FROB R1, R2")


class TestAssemble:
    def test_labels_resolve(self):
        kernel = assemble("k", """
        top:
            IADD R1, R1, 1
            ISETP.LT P0, R1, 4
        @P0 BRA top
            EXIT
        """)
        assert kernel.labels["top"] == 0
        assert kernel.register_count() == 2

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("k", "BRA nowhere\nEXIT")

    def test_comments_stripped(self):
        kernel = assemble("k", """
            MOV R1, 3   // a comment
            EXIT        # another
        """)
        assert len(kernel.instructions) == 2

    def test_listing_roundtrips_text(self):
        kernel = assemble("k", "MOV R1, 3\nEXIT")
        listing = kernel.listing()
        assert "MOV R1, 3" in listing
        assert "EXIT" in listing


class TestOpcodeMetadata:
    def test_every_opcode_has_pipe_and_class(self):
        for name, spec in OPCODES.items():
            assert spec.latency >= 1, name
            assert spec.initiation_interval >= 1, name

    def test_fp64_double_rate_penalty(self):
        assert OPCODES["DFMA"].initiation_interval == 2
        assert OPCODES["FFMA"].initiation_interval == 1

    def test_prediction_tiers(self):
        assert OPCODES["IADD"].predict_kind == "addsub"
        assert OPCODES["IMAD"].predict_kind == "mad"
        assert OPCODES["SHL"].predict_kind == "fxp"
        assert OPCODES["DFMA"].predict_kind == "fp-mad"
        assert OPCODES["FRCP"].predict_kind is None

    def test_rz_reads_zero_registers(self):
        assert Operand.reg(RZ).registers() == ()
        assert Operand.reg(4).registers() == (4,)
