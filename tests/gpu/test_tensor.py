"""Batched == scalar contract tests for the trial-batched executor.

:mod:`repro.gpu.tensor` promises *exact* per-trial equivalence with the
scalar simulator: identical outcome bins, identical fault firing and
detection events, identical memory images — or an explicit ``fallback``
label that sends the trial back to the scalar path.  These tests pin
that contract over random fault plans (seeded via ``REPRO_STRESS_SEED``
so CI can fan the matrix out), the per-trial watchdog, the fallback
trigger, and the engine-level count equality of ``tensor=True`` vs.
``tensor=False``.
"""

import os
import random

import numpy as np
import pytest

from repro.compiler import compile_for_scheme, resilience_mode
from repro.errors import HangError, SimulationError
from repro.gpu import LaunchConfig, assemble, run_functional
from repro.gpu.memory import MemorySpace
from repro.gpu.resilience import FaultPlan, ResilienceState
from repro.gpu.tensor import (TRIAL_CRASH, TRIAL_FALLBACK, TRIAL_HALT,
                              TRIAL_HANG, TRIAL_OK, _IndexedWords,
                              run_trials)
from repro.inject.engine import (BatchSpec, make_scheme, run_gpu_batch,
                                 run_mbu_sweep_batch)
from repro.workloads import get_workload

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "0"))


def scalar_reference(kernel, launch, image_words, state, max_steps):
    """The oracle: one scalar run, mapped onto the batched outcome bins."""
    memory = MemorySpace(len(image_words))
    memory.words[:] = image_words
    try:
        run_functional(kernel, launch, memory, state, max_steps=max_steps)
    except HangError:
        return TRIAL_HANG, memory
    except SimulationError:
        return TRIAL_CRASH, memory
    return (TRIAL_HALT if state.detected else TRIAL_OK), memory


def event_keys(state):
    return [(event.kind, event.cta_index, event.warp_index, event.pc,
             event.detail) for event in state.events]


def random_plans(rng, launch, count, occurrence_max=40, where="result",
                 multi=False):
    """Random fault plans mirroring the engine's draw shape."""
    lane_count = min(32, launch.threads_per_cta)
    plans = []
    for _ in range(count):
        bits = (rng.randrange(32),)
        lanes = (rng.randrange(lane_count),)
        if multi and rng.random() < 0.7:
            bits = tuple(sorted(rng.sample(range(32),
                                           rng.randrange(2, 6))))
            lanes = tuple(sorted(rng.sample(range(lane_count),
                                            rng.randrange(1, 4))))
        plans.append(FaultPlan(
            cta_index=rng.randrange(launch.grid_ctas),
            warp_index=rng.randrange(launch.warps_per_cta),
            occurrence=rng.randrange(occurrence_max),
            lane=lanes[0], bit=bits[0], bits=bits, lanes=lanes,
            where=where))
    return plans


def assert_batched_matches_scalar(workload, scheme, plans, scale=0.25,
                                  max_steps=50_000_000):
    """Every non-fallback trial must match its scalar rerun exactly."""
    instance = get_workload(workload).build(scale=scale, seed=11)
    compiled = compile_for_scheme(instance.kernel, instance.launch, scheme)
    launch = compiled.adjust_launch(instance.launch)
    mode = resilience_mode(scheme)
    codec = make_scheme("secded-dp") if mode == "swap" else None

    def state_of(plan):
        return ResilienceState(mode=mode, scheme=codec, fault=plan)

    result = run_trials(compiled.kernel, launch, instance.memory.words,
                        [state_of(plan) for plan in plans],
                        max_steps=max_steps)
    compared = 0
    for index, plan in enumerate(plans):
        outcome = result.outcomes[index]
        if outcome == TRIAL_FALLBACK:
            continue  # no claim made; the engine reruns these scalar
        reference = state_of(plan)
        want, memory = scalar_reference(
            compiled.kernel, launch, instance.memory.words, reference,
            max_steps)
        context = (STRESS_SEED, workload, scheme, index, plan)
        assert outcome == want, context
        state = result.states[index]
        assert state.fault_fired == reference.fault_fired, context
        assert event_keys(state) == event_keys(reference), context
        assert np.array_equal(result.memory.image_of(index),
                              memory.words), context
        compared += 1
    assert compared > 0, (workload, scheme, "every trial fell back")


CASES = [
    ("saxpy", "swap-ecc"),     # straight-line fp32
    ("saxpy", "baseline"),     # unprotected: SDC visible in memory
    ("fxp-stream", "swdup"),   # integer loop under duplication traps
    ("gaussian", "swap-ecc"),  # fp32 elimination, divergent guards
    ("btree", "swap-ecc"),     # integer traversal, data-dependent paths
    ("bfs", "swdup"),          # heavy divergence + atomics
    ("snap", "swap-ecc"),      # shuffles, shared memory, barriers
    ("lavamd", "swap-ecc"),    # fp64-heavy (64-bit register pairs)
]


class TestScalarEquivalence:
    @pytest.mark.parametrize("workload,scheme", CASES)
    def test_random_single_bit_plans(self, workload, scheme):
        rng = random.Random(f"{STRESS_SEED}/{workload}/{scheme}")
        instance = get_workload(workload).build(scale=0.25, seed=11)
        plans = random_plans(rng, instance.launch, 6)
        assert_batched_matches_scalar(workload, scheme, plans)

    @pytest.mark.parametrize("where", ["result", "storage", "predictor"])
    def test_fault_sites(self, where):
        rng = random.Random(f"{STRESS_SEED}/site/{where}")
        instance = get_workload("btree").build(scale=0.25, seed=11)
        plans = random_plans(rng, instance.launch, 6, where=where)
        assert_batched_matches_scalar("btree", "swap-ecc", plans)

    @pytest.mark.parametrize("workload", ["gaussian", "btree"])
    def test_multi_bit_multi_lane_plans(self, workload):
        rng = random.Random(f"{STRESS_SEED}/mbu/{workload}")
        instance = get_workload(workload).build(scale=0.25, seed=11)
        plans = random_plans(rng, instance.launch, 6, where="storage",
                             multi=True)
        assert_batched_matches_scalar(workload, "swap-ecc", plans)

    def test_unstruck_trials_match_clean_run(self):
        # A batch of no-fault trials must reproduce the clean scalar
        # image bit-for-bit in every trial slot.
        instance = get_workload("fxp-stream").build(scale=0.25, seed=11)
        states = [ResilienceState() for _ in range(5)]
        result = run_trials(instance.kernel, instance.launch,
                            instance.memory.words, states)
        assert result.outcomes == [TRIAL_OK] * 5
        for index in range(5):
            assert instance.verify(result.memory.space_of(index))


# A strike on the MOV (the second datapath op, after the S2R) seeds R1
# with a large value, sending only the struck trial around a long
# countdown loop.
COUNTDOWN = """
    S2R R0, SR_TID
    MOV R1, 0
loop:
    ISETP.NE P0, R1, 0
@P0 IADD R1, R1, -1
@P0 BRA loop
    STG [R0], R1
    EXIT
"""

# A strike on the MOV flips every lane's guard, so the whole struck
# warp skips the barrier other trials arrive at: cross-trial divergent
# arrival, the designed fallback trigger.
SKIPPED_BARRIER = """
    S2R R0, SR_TID
    MOV R1, 0
    ISETP.NE P0, R1, 0
@P0 BRA skip, reconv=join
    BAR
skip:
join:
    STG [R0], R1
    EXIT
"""


class TestPerTrialWatchdog:
    def test_hang_bins_only_the_struck_trial(self):
        kernel = assemble("countdown", COUNTDOWN)
        launch = LaunchConfig(1, 32)
        image = np.zeros(32, dtype=np.uint32)
        plan = FaultPlan(cta_index=0, warp_index=0, occurrence=1, lane=3,
                         bit=20, where="result")
        states = [ResilienceState(), ResilienceState(fault=plan),
                  ResilienceState()]
        result = run_trials(kernel, launch, image, states, max_steps=5_000)
        assert result.outcomes == [TRIAL_OK, TRIAL_HANG, TRIAL_OK]
        # Healthy trials stop ticking once they finish: their step
        # counts stay at the short path even though the batch keeps
        # stepping the hung trial.
        assert result.steps[1] > 5_000
        assert result.steps[0] == result.steps[2] < 100

    def test_hang_threshold_matches_scalar(self):
        kernel = assemble("countdown", COUNTDOWN)
        launch = LaunchConfig(1, 32)
        image = np.zeros(32, dtype=np.uint32)
        plan = FaultPlan(cta_index=0, warp_index=0, occurrence=1, lane=3,
                         bit=12, where="result")
        for max_steps in (1_000, 100_000):
            state = ResilienceState(fault=plan)
            want, _ = scalar_reference(kernel, launch, image, state,
                                       max_steps)
            result = run_trials(kernel, launch, image,
                                [ResilienceState(fault=plan)],
                                max_steps=max_steps)
            assert result.outcomes == [want], max_steps


class TestFallback:
    def test_cross_trial_divergent_barrier_flags_fallback(self):
        kernel = assemble("skipbar", SKIPPED_BARRIER)
        launch = LaunchConfig(1, 32)
        image = np.zeros(32, dtype=np.uint32)
        plan = FaultPlan(cta_index=0, warp_index=0, occurrence=1, lane=0,
                         bit=4, bits=(4,), lanes=tuple(range(32)),
                         where="result")
        states = [ResilienceState(), ResilienceState(fault=plan),
                  ResilienceState()]
        result = run_trials(kernel, launch, image, states)
        assert result.outcomes == [TRIAL_OK, TRIAL_FALLBACK, TRIAL_OK]
        # The healthy trials still completed and stored their zeros.
        for index in (0, 2):
            assert np.array_equal(result.memory.image_of(index),
                                  np.zeros(32, dtype=np.uint32))

    def test_mixed_mode_states_rejected(self):
        instance = get_workload("saxpy").build(scale=0.25, seed=11)
        states = [ResilienceState(mode="none"),
                  ResilienceState(mode="swdup")]
        with pytest.raises(SimulationError):
            run_trials(instance.kernel, instance.launch,
                       instance.memory.words, states)


class TestEngineEquivalence:
    """tensor=True must be count-identical to the scalar engine loop."""

    @pytest.mark.parametrize("workload,scheme,size", [
        ("saxpy", "swap-ecc", 120),
        ("fxp-stream", "swdup", 80),
        ("gaussian", "swap-ecc", 48),
    ])
    def test_gpu_batch_counts_identical(self, workload, scheme, size):
        params = {"workload": workload, "compile_scheme": scheme,
                  "scale": 0.25, "trial_batch": 48}
        batch = BatchSpec(index=0, size=size, seed=STRESS_SEED + 7)
        scalar = run_gpu_batch(dict(params, tensor=False), None, batch)
        batched = run_gpu_batch(dict(params, tensor=True), None, batch)
        assert batched["counts"] == scalar["counts"]
        assert batched["trials"] == scalar["trials"]
        assert batched["successes"] == scalar["successes"]
        assert batched["payload"]["executor"] == "tensor"

    def test_mbu_batch_counts_identical(self):
        params = {"workload": "saxpy", "multiplicity": 3,
                  "pattern": "burst", "lane_spread": 2,
                  "compile_scheme": "swap-ecc", "scale": 0.25,
                  "trial_batch": 32}
        batch = BatchSpec(index=0, size=90, seed=STRESS_SEED + 13)
        scalar = run_mbu_sweep_batch(dict(params, tensor=False), None,
                                     batch)
        batched = run_mbu_sweep_batch(dict(params, tensor=True), None,
                                      batch)
        assert batched["counts"] == scalar["counts"]
        assert batched["trials"] == scalar["trials"]
        assert batched["successes"] == scalar["successes"]
        assert batched["payload"]["multiplicity"] == 3
        assert batched["payload"]["executor"] == "tensor"


class TestIndexedWords:
    """The taint-map index must track every mutation path the scalar
    :class:`~repro.gpu.resilience.TaintTracker` uses (setitem, delitem,
    pop with and without default)."""

    def test_set_delete_pop_maintain_index(self):
        words = _IndexedWords()
        words[(1, 3)] = "a"
        words[(1, 5)] = "b"
        words[(2, 0)] = "c"
        assert words.by_register[1] == {3, 5}
        assert words.by_register[2] == {0}
        words[(1, 3)] = "a2"  # overwrite keeps the index intact
        assert words.by_register[1] == {3, 5}
        del words[(1, 3)]
        assert words.by_register[1] == {5}
        assert words.pop((1, 5)) == "b"
        assert 1 not in words.by_register
        assert words.pop((9, 9), None) is None
        assert 9 not in words.by_register
        assert dict(words) == {(2, 0): "c"}

    def test_missing_pop_without_default_raises(self):
        words = _IndexedWords()
        with pytest.raises(KeyError):
            words.pop((1, 1))


class TestFallbackAttribution:
    def test_divergent_barrier_reason_is_per_trial(self):
        kernel = assemble("skipbar", SKIPPED_BARRIER)
        launch = LaunchConfig(1, 32)
        image = np.zeros(32, dtype=np.uint32)
        plan = FaultPlan(cta_index=0, warp_index=0, occurrence=1, lane=0,
                         bit=4, bits=(4,), lanes=tuple(range(32)),
                         where="result")
        states = [ResilienceState(), ResilienceState(fault=plan),
                  ResilienceState()]
        result = run_trials(kernel, launch, image, states)
        assert result.outcomes == [TRIAL_OK, TRIAL_FALLBACK, TRIAL_OK]
        # only the struck trial carries a reason; decided trials stay None
        assert result.fallback_reasons == [None, "divergent_barrier",
                                           None]

    def test_finish_live_attributes_union_reasons(self):
        from repro.gpu.tensor import TrialBatch
        batch = TrialBatch(3, max_steps=100)
        batch.finish(0, TRIAL_OK)
        batch.finish_live(TRIAL_FALLBACK, reason="union_deadlock")
        assert batch.fallback_reasons == [None, "union_deadlock",
                                          "union_deadlock"]
        # a non-fallback outcome never records a reason
        assert batch.outcomes == [TRIAL_OK, TRIAL_FALLBACK,
                                  TRIAL_FALLBACK]

    def test_engine_payload_tallies_reasons(self):
        """run_gpu_batch(tensor=True) surfaces a per-reason tally in its
        campaign payload when any trial fell back."""
        from repro.gpu import tensor as tensor_module
        from repro.inject.engine import _run_trials_tensor

        original = tensor_module.run_trials

        def forced_fallback(kernel, launch, image, states, **kwargs):
            result = original(kernel, launch, image, states, **kwargs)
            for index in range(len(result.outcomes)):
                result.outcomes[index] = TRIAL_FALLBACK
                result.fallback_reasons[index] = (
                    "divergent_barrier" if index % 2 else "union_error")
            return result

        instance = get_workload("saxpy").build(scale=0.25, seed=11)
        plans = []
        rng = random.Random(5)
        for _ in range(4):
            plans.append(FaultPlan(
                cta_index=0, warp_index=0,
                occurrence=rng.randrange(1, 4),
                lane=rng.randrange(32), bit=rng.randrange(32),
                where="result"))

        def fresh_state(plan, shared=None):
            return ResilienceState(fault=plan)

        tensor_module.run_trials = forced_fallback
        try:
            report = _run_trials_tensor(
                instance, instance.kernel, instance.launch, plans,
                fresh_state, max_steps=200_000, trial_batch=4)
        finally:
            tensor_module.run_trials = original
        payload = report["payload"]
        assert payload["fallbacks"] == 4
        assert payload["fallback_reasons"] == {
            "divergent_barrier": 2, "union_error": 2}
