"""Tests for the memory spaces and the coalescing model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu import MemorySpace


class TestHostAccess:
    def test_word_roundtrip(self):
        memory = MemorySpace(64)
        memory.write_words(4, [1, 2, 3])
        assert np.array_equal(memory.read_words(4, 3), [1, 2, 3])

    def test_f32_roundtrip(self):
        memory = MemorySpace(64)
        memory.write_f32(0, [1.5, -2.25])
        assert np.array_equal(memory.read_f32(0, 2),
                              np.array([1.5, -2.25], dtype=np.float32))

    def test_f64_roundtrip(self):
        memory = MemorySpace(64)
        memory.write_f64(0, [3.141592653589793])
        assert memory.read_f64(0, 1)[0] == 3.141592653589793

    def test_i32_roundtrip(self):
        memory = MemorySpace(64)
        memory.write_i32(0, [-5, 7])
        assert np.array_equal(memory.read_i32(0, 2), [-5, 7])

    def test_out_of_range_rejected(self):
        memory = MemorySpace(8)
        with pytest.raises(SimulationError):
            memory.write_words(6, [1, 2, 3])
        with pytest.raises(SimulationError):
            memory.read_words(-1, 2)

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            MemorySpace(0)


class TestLaneAccess:
    def test_gather_scatter_masked(self):
        memory = MemorySpace(64)
        memory.write_words(0, list(range(64)))
        addresses = np.arange(32, dtype=np.uint32)
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        values = memory.gather(addresses, mask)
        assert (values[::2] == np.arange(0, 32, 2)).all()
        assert (values[1::2] == 0).all()

    def test_atomic_serializes_collisions(self):
        memory = MemorySpace(8)
        addresses = np.zeros(32, dtype=np.uint32)
        values = np.ones(32, dtype=np.uint32)
        mask = np.ones(32, dtype=bool)
        old = memory.atomic("ADD", addresses, values, mask)
        assert memory.words[0] == 32
        assert sorted(old.tolist()) == list(range(32))

    def test_atomic_exch(self):
        memory = MemorySpace(8)
        addresses = np.arange(32, dtype=np.uint32) % 4
        values = np.full(32, 9, dtype=np.uint32)
        memory.atomic("EXCH", addresses, values,
                      np.ones(32, dtype=bool))
        assert (memory.words[:4] == 9).all()

    def test_unknown_atomic_rejected(self):
        memory = MemorySpace(8)
        with pytest.raises(SimulationError):
            memory.atomic("NAND", np.zeros(1, dtype=np.uint32),
                          np.zeros(1, dtype=np.uint32),
                          np.ones(1, dtype=bool))


class TestCoalescing:
    def test_unit_stride_is_one_transaction(self):
        addresses = np.arange(32, dtype=np.uint32)
        assert MemorySpace.transactions(
            addresses, np.ones(32, dtype=bool)) == 1

    def test_wide_stride_fans_out(self):
        addresses = (np.arange(32, dtype=np.uint32) * 32)
        assert MemorySpace.transactions(
            addresses, np.ones(32, dtype=bool)) == 32

    def test_masked_lanes_do_not_count(self):
        addresses = np.arange(32, dtype=np.uint32) * 32
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert MemorySpace.transactions(addresses, mask) == 1
        assert MemorySpace.transactions(
            addresses, np.zeros(32, dtype=bool)) == 0
