"""Functional tests of warp execution: SIMT divergence, memory, shuffles."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu import (Device, LaunchConfig, MemorySpace, assemble,
                       run_functional)


def run(source, words=512, ctas=1, threads=32, shared=0, init=None):
    kernel = assemble("t", source)
    memory = MemorySpace(words)
    if init:
        for address, values in init.items():
            memory.write_words(address, values)
    run_functional(kernel, LaunchConfig(ctas, threads, shared), memory)
    return memory


class TestDivergence:
    def test_if_else(self):
        memory = run("""
            S2R R0, SR_TID
            AND R1, R0, 1
            ISETP.EQ P0, R1, 0
        @P0 BRA even, reconv=join
            MOV R2, 100
            BRA join
        even:
            MOV R2, 200
        join:
            STG [R0], R2
            EXIT
        """)
        out = memory.read_words(0, 32)
        want = np.where(np.arange(32) % 2 == 0, 200, 100)
        assert np.array_equal(out, want)

    def test_divergent_loop_trip_counts(self):
        memory = run("""
            S2R R0, SR_TID
            MOV R1, 0
            MOV R2, 0
        loop:
            IADD R1, R1, 1
            IADD R2, R2, R1
            ISETP.LT P0, R1, R0
        @P0 BRA loop
            STG [R0], R2
            EXIT
        """)
        out = memory.read_words(0, 32)
        want = np.array([max(1, t) * (max(1, t) + 1) // 2
                         for t in range(32)])
        assert np.array_equal(out, want)

    def test_nested_divergence(self):
        memory = run("""
            S2R R0, SR_TID
            AND R1, R0, 3
            ISETP.LT P0, R1, 2
        @P0 BRA low, reconv=join
            ISETP.EQ P1, R1, 2
        @P1 BRA two, reconv=inner
            MOV R2, 33
            BRA inner
        two:
            MOV R2, 22
        inner:
            BRA join
        low:
            MOV R2, 11
        join:
            STG [R0], R2
            EXIT
        """)
        out = memory.read_words(0, 32)
        lanes = np.arange(32) % 4
        want = np.where(lanes < 2, 11, np.where(lanes == 2, 22, 33))
        assert np.array_equal(out, want)

    def test_early_loop_exit_divergence(self):
        memory = run("""
            S2R R0, SR_TID
            MOV R1, 0
        loop:
            ISETP.GE P0, R1, R0
        @P0 BRA done, reconv=done
            IADD R1, R1, 1
            BRA loop
        done:
            STG [R0], R1
            EXIT
        """)
        assert np.array_equal(memory.read_words(0, 32), np.arange(32))

    def test_missing_exit_detected(self):
        with pytest.raises(SimulationError):
            run("MOV R1, 1")


class TestPredication:
    def test_predicated_off_instruction_has_no_effect(self):
        memory = run("""
            S2R R0, SR_TID
            MOV R1, 7
            ISETP.LT P0, R0, 0
        @P0 MOV R1, 9
            STG [R0], R1
            EXIT
        """)
        assert (memory.read_words(0, 32) == 7).all()

    def test_sel(self):
        memory = run("""
            S2R R0, SR_TID
            AND R1, R0, 1
            ISETP.EQ P0, R1, 1
            MOV R2, 5
            MOV R3, 6
            SEL R4, R2, R3, P0
            STG [R0], R4
            EXIT
        """)
        out = memory.read_words(0, 32)
        want = np.where(np.arange(32) % 2 == 1, 5, 6)
        assert np.array_equal(out, want)


class TestMemoryAndAtomics:
    def test_atomic_add_counts_lanes(self):
        memory = run("""
            MOV R1, 1
            ATOM.ADD R2, [0], R1
            S2R R0, SR_TID
            STG [R0+8], R2
            EXIT
        """)
        assert memory.read_words(0, 1)[0] == 32
        # returned old values are a permutation of 0..31
        old = memory.read_words(8, 32)
        assert sorted(old.tolist()) == list(range(32))

    def test_atomic_max(self):
        memory = run("""
            S2R R0, SR_TID
            ATOM.MAX R1, [0], R0
            EXIT
        """)
        assert memory.read_words(0, 1)[0] == 31

    def test_shared_memory_roundtrip(self):
        memory = run("""
            S2R R0, SR_TID
            STS [R0], R0
            BAR
            XOR R1, R0, 31
            LDS R2, [R1]
            STG [R0], R2
            EXIT
        """, shared=32)
        assert np.array_equal(memory.read_words(0, 32),
                              np.arange(32) ^ 31)

    def test_out_of_range_access_raises(self):
        with pytest.raises(SimulationError):
            run("""
                MOV R1, 100000
                LDG R2, [R1]
                EXIT
            """)

    def test_64_bit_load_store(self):
        memory = MemorySpace(256)
        memory.write_f64(0, [2.5])
        kernel = assemble("t", """
            LDG.64 RD2, [0]
            DADD RD4, RD2, RD2
            STG.64 [2], RD4
            EXIT
        """)
        run_functional(kernel, LaunchConfig(1, 1), memory)
        assert memory.read_f64(2, 1)[0] == 5.0


class TestShuffles:
    @pytest.mark.parametrize("mode,amount,expect", [
        ("BFLY", 8, lambda lanes: lanes ^ 8),
        ("DOWN", 1, lambda lanes: np.minimum(lanes + 1, 31)),
        ("UP", 1, lambda lanes: np.maximum(lanes - 1, 0)),
        ("IDX", 5, lambda lanes: np.full(32, 5)),
    ])
    def test_modes(self, mode, amount, expect):
        memory = run(f"""
            S2R R0, SR_TID
            SHFL.{mode} R1, R0, {amount}
            STG [R0], R1
            EXIT
        """)
        lanes = np.arange(32)
        want = expect(lanes)
        # out-of-range sources keep the lane's own value (UP/DOWN edges)
        assert np.array_equal(memory.read_words(0, 32), want)


class TestBarriers:
    def test_cross_warp_barrier(self):
        memory = run("""
            S2R R0, SR_TID
            STS [R0], R0
            BAR
            XOR R1, R0, 63
            LDS R2, [R1]
            STG [R0], R2
            EXIT
        """, threads=64, shared=64)
        assert np.array_equal(memory.read_words(0, 64),
                              np.arange(64) ^ 63)

    def test_multiple_ctas_isolated_shared(self):
        memory = run("""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            STS [R0], R1
            BAR
            LDS R2, [R0]
            IMAD R3, R1, 32, R0
            STG [R3], R2
            EXIT
        """, ctas=2, shared=32)
        assert (memory.read_words(0, 32) == 0).all()
        assert (memory.read_words(32, 32) == 1).all()
