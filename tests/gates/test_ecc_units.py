"""Tests for the ECC hardware netlists and the Table IV area model."""

import random

import pytest

from repro.ecc import HsiaoSecDed
from repro.ecc.base import DecodeStatus
from repro.gates import (build_decoder, build_dp_reporting, build_encoder,
                         build_move_propagate, format_table_iv,
                         table_iv_rows)


class TestEncoderNetlist:
    def test_matches_software_encoder(self):
        code = HsiaoSecDed()
        encoder = build_encoder(code)
        rng = random.Random(0)
        data = [rng.getrandbits(32) for _ in range(128)]
        values = encoder.evaluate(encoder.pack_inputs({"data": data}))
        for index, value in enumerate(data):
            assert encoder.read_output(values, "check", index) == \
                code.encode(value)


class TestDecoderNetlist:
    code = HsiaoSecDed()
    decoder = build_decoder(code)

    def _decode(self, data, check):
        values = self.decoder.evaluate(
            self.decoder.pack_inputs({"data": [data], "check": [check]}))
        return {
            "corrected": self.decoder.read_output(values, "corrected", 0),
            "ce_data": self.decoder.read_output(values, "ce_data", 0),
            "ce_check": self.decoder.read_output(values, "ce_check", 0),
            "due": self.decoder.read_output(values, "due", 0),
        }

    def test_clean_word(self):
        data = 0xDEAD_BEEF
        out = self._decode(data, self.code.encode(data))
        assert out == {"corrected": data, "ce_data": 0, "ce_check": 0,
                       "due": 0}

    def test_single_data_error_corrects(self):
        data = 0x0BAD_F00D
        check = self.code.encode(data)
        rng = random.Random(1)
        for __ in range(20):
            bit = rng.randrange(32)
            out = self._decode(data ^ (1 << bit), check)
            assert out["corrected"] == data
            assert out["ce_data"] == 1
            assert out["due"] == 0

    def test_single_check_error_flags_check(self):
        data = 0x1234_5678
        check = self.code.encode(data)
        for bit in range(7):
            out = self._decode(data, check ^ (1 << bit))
            assert out["corrected"] == data
            assert out["ce_check"] == 1
            assert out["due"] == 0

    def test_double_error_raises_due(self):
        data = 0x1111_2222
        check = self.code.encode(data)
        rng = random.Random(2)
        for __ in range(20):
            first, second = rng.sample(range(32), 2)
            out = self._decode(data ^ (1 << first) ^ (1 << second), check)
            assert out["due"] == 1
            assert out["ce_data"] == 0

    def test_matches_software_decoder_bulk(self):
        rng = random.Random(3)
        samples = []
        for __ in range(128):
            data = rng.getrandbits(32)
            check = self.code.encode(data)
            flips = rng.randrange(3)
            for __ in range(flips):
                position = rng.randrange(39)
                if position < 32:
                    data ^= 1 << position
                else:
                    check ^= 1 << (position - 32)
            samples.append((data, check))
        values = self.decoder.evaluate(self.decoder.pack_inputs({
            "data": [s[0] for s in samples],
            "check": [s[1] for s in samples],
        }))
        for index, (data, check) in enumerate(samples):
            software = self.code.decode(data, check)
            due = self.decoder.read_output(values, "due", index)
            corrected = self.decoder.read_output(values, "corrected", index)
            assert due == int(software.status is DecodeStatus.DUE)
            if software.status in (DecodeStatus.OK,
                                   DecodeStatus.CORRECTED_DATA):
                assert corrected == software.data


class TestDpReporting:
    unit = build_dp_reporting(32)

    def _report(self, data, dp, ce_data, due_in):
        values = self.unit.evaluate(self.unit.pack_inputs({
            "data": [data], "dp": [dp], "ce_data": [ce_data],
            "due_in": [due_in],
        }))
        return (self.unit.read_output(values, "correct_enable", 0),
                self.unit.read_output(values, "due", 0))

    def test_storage_flip_enables_correction(self):
        # Parity mismatch: the data changed after the DP bit was written.
        data = 0b0111  # odd parity
        correct, due = self._report(data, dp=0, ce_data=1, due_in=0)
        assert correct == 1 and due == 0

    def test_pipeline_error_raises_due(self):
        # Parity agrees: data and DP were produced together -> compute error.
        data = 0b0111
        correct, due = self._report(data, dp=1, ce_data=1, due_in=0)
        assert correct == 0 and due == 1

    def test_decoder_due_passes_through(self):
        __, due = self._report(0, dp=0, ce_data=0, due_in=1)
        assert due == 1

    def test_clean_read(self):
        correct, due = self._report(0, dp=0, ce_data=0, due_in=0)
        assert correct == 0 and due == 0


class TestMovePropagate:
    def test_selects_moved_ecc(self):
        unit = build_move_propagate(7)
        values = unit.evaluate(unit.pack_inputs({
            "encoder_check": [0x55, 0x55],
            "moved_check": [0x2A, 0x2A],
            "is_move": [1, 0],
        }))
        assert unit.read_output(values, "check", 0) == 0x2A
        assert unit.read_output(values, "check", 1) == 0x55

    def test_has_pipeline_registers(self):
        assert build_move_propagate(7).flip_flop_count() == 14


class TestTableIv:
    rows = table_iv_rows()

    def _find(self, section, unit, bits):
        for row in self.rows:
            if (row.section, row.unit, row.bits) == (section, unit, bits):
                return row
        raise AssertionError(f"missing row {section}/{unit}/{bits}")

    def test_all_rows_present(self):
        assert len(self.rows) == 13

    def test_mad_predictors_are_cheap(self):
        # Paper: Mod-3 MAD prediction costs <1% of the MAD unit, Mod-127
        # about 6%.
        mod3 = self._find("swap-predict", "MAD", "2")
        mod127 = self._find("swap-predict", "MAD", "7")
        assert mod3.overhead < 0.01
        assert mod127.overhead < 0.10

    def test_add_predictors_cost_more_relatively(self):
        mod3 = self._find("swap-predict", "Add", "2")
        mod127 = self._find("swap-predict", "Add", "7")
        mad3 = self._find("swap-predict", "MAD", "2")
        assert mod3.overhead > mad3.overhead
        assert mod127.overhead > mod3.overhead

    def test_modified_encoders_largest_relative_overhead(self):
        enc3 = self._find("swap-predict", "Mod-3 Enc.", "2")
        enc127 = self._find("swap-predict", "Mod-127 Enc.", "7")
        others = [row for row in self.rows if row.section == "swap-predict"
                  and "Enc" not in row.unit]
        assert enc3.overhead > max(row.overhead for row in others)
        assert enc127.overhead > 1.0  # more than doubles the encoder

    def test_swap_ecc_mods_small_vs_decoder(self):
        move = self._find("swap-ecc", "Move-Propagate", "7")
        dp = self._find("swap-ecc", "SEC-(DED)-DP", "2")
        # Together well under the decoder itself (paper: ~50%).
        assert move.overhead + dp.overhead < 0.6

    def test_formatting_runs(self):
        text = format_table_iv(self.rows)
        assert "Original Data Path" in text
        assert "Move-Propagate" in text
