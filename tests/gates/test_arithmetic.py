"""Tests for adders, shifters, multipliers, and the MOMA blocks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.gates import Netlist, build_add_unit, build_mad_unit, multiply_bus
from repro.gates.adders import (eac_add, incrementer, kogge_stone_add,
                                ripple_carry_add, subtract)
from repro.gates.moma import cs_moma_sum
from repro.gates.shifters import (normalize_bus, shift_left_bus,
                                  shift_right_bus)

U16 = st.integers(min_value=0, max_value=2**16 - 1)


def run_samples(netlist, inputs):
    packed = netlist.pack_inputs(inputs)
    return netlist.evaluate(packed)


class TestAdders:
    @given(st.lists(st.tuples(U16, U16), min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_ripple_and_prefix_agree(self, pairs):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        b = netlist.input_bus("b", 16)
        ripple, ripple_carry = ripple_carry_add(netlist, a, b)
        prefix, prefix_carry = kogge_stone_add(netlist, a, b)
        netlist.set_output("r", ripple + [ripple_carry])
        netlist.set_output("p", prefix + [prefix_carry])
        values = run_samples(netlist, {"a": [p[0] for p in pairs],
                                       "b": [p[1] for p in pairs]})
        for index, (x, y) in enumerate(pairs):
            want = x + y
            assert netlist.read_output(values, "r", index) == want
            assert netlist.read_output(values, "p", index) == want

    @given(st.lists(st.tuples(U16, U16), min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_eac_add_is_modular(self, pairs):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        b = netlist.input_bus("b", 16)
        netlist.set_output("s", eac_add(netlist, a, b))
        values = run_samples(netlist, {"a": [p[0] for p in pairs],
                                       "b": [p[1] for p in pairs]})
        modulus = 2**16 - 1
        for index, (x, y) in enumerate(pairs):
            got = netlist.read_output(values, "s", index)
            assert got % modulus == (x + y) % modulus

    def test_eac_double_zero(self):
        # x + ~x produces the all-ones alternate zero, never canonical 0.
        netlist = Netlist()
        a = netlist.input_bus("a", 8)
        b = netlist.input_bus("b", 8)
        netlist.set_output("s", eac_add(netlist, a, b))
        values = run_samples(netlist, {"a": [0x5A], "b": [0xA5]})
        assert netlist.read_output(values, "s", 0) == 0xFF

    @given(st.lists(st.tuples(U16, U16), min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_subtract(self, pairs):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        b = netlist.input_bus("b", 16)
        diff, not_borrow = subtract(netlist, a, b)
        netlist.set_output("d", diff)
        netlist.set_output("nb", [not_borrow])
        values = run_samples(netlist, {"a": [p[0] for p in pairs],
                                       "b": [p[1] for p in pairs]})
        for index, (x, y) in enumerate(pairs):
            assert netlist.read_output(values, "d", index) == (x - y) % 2**16
            assert netlist.read_output(values, "nb", index) == int(x >= y)

    @given(st.lists(st.tuples(U16, st.integers(0, 1)), min_size=1,
                    max_size=32))
    @settings(max_examples=30)
    def test_incrementer(self, cases):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        en = netlist.input_bus("en", 1)
        total, carry = incrementer(netlist, a, en[0])
        netlist.set_output("s", total + [carry])
        values = run_samples(netlist, {"a": [c[0] for c in cases],
                                       "en": [c[1] for c in cases]})
        for index, (x, e) in enumerate(cases):
            assert netlist.read_output(values, "s", index) == x + e

    def test_width_mismatch_rejected(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 4)
        b = netlist.input_bus("b", 5)
        with pytest.raises(NetlistError):
            kogge_stone_add(netlist, a, b)


class TestShifters:
    @given(st.lists(st.tuples(U16, st.integers(0, 31)), min_size=1,
                    max_size=32))
    @settings(max_examples=30)
    def test_shift_right(self, cases):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        amount = netlist.input_bus("n", 5)
        netlist.set_output("s", shift_right_bus(netlist, a, amount))
        values = run_samples(netlist, {"a": [c[0] for c in cases],
                                       "n": [c[1] for c in cases]})
        for index, (x, n) in enumerate(cases):
            assert netlist.read_output(values, "s", index) == x >> n

    @given(st.lists(st.tuples(U16, st.integers(0, 31)), min_size=1,
                    max_size=32))
    @settings(max_examples=30)
    def test_shift_left(self, cases):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        amount = netlist.input_bus("n", 5)
        netlist.set_output("s", shift_left_bus(netlist, a, amount))
        values = run_samples(netlist, {"a": [c[0] for c in cases],
                                       "n": [c[1] for c in cases]})
        for index, (x, n) in enumerate(cases):
            assert netlist.read_output(values, "s", index) == (x << n) % 2**16

    @given(st.lists(st.integers(1, 2**16 - 1), min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_normalize(self, cases):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        normalized, count = normalize_bus(netlist, a)
        netlist.set_output("norm", normalized)
        netlist.set_output("count", count)
        values = run_samples(netlist, {"a": cases})
        for index, x in enumerate(cases):
            lzc = 16 - x.bit_length()
            assert netlist.read_output(values, "count", index) == lzc
            assert netlist.read_output(values, "norm", index) == \
                (x << lzc) % 2**16


class TestMultiplier:
    @given(st.lists(st.tuples(U16, U16), min_size=1, max_size=16))
    @settings(max_examples=20)
    def test_multiply_bus(self, pairs):
        netlist = Netlist()
        a = netlist.input_bus("a", 16)
        b = netlist.input_bus("b", 16)
        netlist.set_output("p", multiply_bus(netlist, a, b))
        values = run_samples(netlist, {"a": [p[0] for p in pairs],
                                       "b": [p[1] for p in pairs]})
        for index, (x, y) in enumerate(pairs):
            assert netlist.read_output(values, "p", index) == x * y

    def test_mad_unit_full_width(self):
        mad = build_mad_unit(32)
        rng = random.Random(5)
        a = [rng.getrandbits(32) for _ in range(64)]
        b = [rng.getrandbits(32) for _ in range(64)]
        c = [rng.getrandbits(64) for _ in range(64)]
        values = run_samples(mad, {"a": a, "b": b, "c": c})
        for index in range(64):
            want = (a[index] * b[index] + c[index]) % 2**64
            assert mad.read_output(values, "result", index) == want

    def test_add_unit(self):
        add = build_add_unit(32)
        values = run_samples(add, {"a": [3, 2**32 - 1], "b": [4, 1]})
        assert add.read_output(values, "sum", 0) == 7
        assert add.read_output(values, "sum", 1) == 0  # wraps

    def test_pipelined_units_have_flip_flops(self):
        assert build_add_unit(32).flip_flop_count() == 96
        assert build_mad_unit(32).flip_flop_count() > 200
        assert build_add_unit(32, pipelined=False).flip_flop_count() == 0


class TestMoma:
    @given(st.lists(st.lists(st.integers(0, 127), min_size=1, max_size=9),
                    min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_multi_operand_modular_sum(self, rows):
        # Each inner list is one sample's operand set; pad to uniform count.
        operand_count = max(len(row) for row in rows)
        samples = [row + [0] * (operand_count - len(row)) for row in rows]
        netlist = Netlist()
        buses = [netlist.input_bus(f"x{i}", 7) for i in range(operand_count)]
        netlist.set_output("s", cs_moma_sum(netlist, buses))
        inputs = {f"x{i}": [sample[i] for sample in samples]
                  for i in range(operand_count)}
        values = run_samples(netlist, inputs)
        for index, sample in enumerate(samples):
            got = netlist.read_output(values, "s", index)
            assert got % 127 == sum(sample) % 127

    def test_empty_moma_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            cs_moma_sum(netlist, [])
