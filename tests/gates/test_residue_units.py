"""Tests for the residue hardware: generators, predictors, recode encoder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.residue import split_correction_factor
from repro.gates import (build_add_predictor, build_mad_predictor,
                         build_recode_encoder, build_residue_adder,
                         build_residue_generator, build_residue_multiplier,
                         table3_adjustment)

MODULI = (3, 7, 15, 31, 63, 127, 255)


def canonical(value, modulus):
    return value % modulus


class TestResidueGenerator:
    @pytest.mark.parametrize("modulus", MODULI)
    def test_generator_matches_mod(self, modulus):
        generator = build_residue_generator(modulus, 32, pipelined=False)
        rng = random.Random(modulus)
        data = [rng.getrandbits(32) for _ in range(128)] + [0, 2**32 - 1]
        values = generator.evaluate(generator.pack_inputs({"data": data}))
        for index, value in enumerate(data):
            got = generator.read_output(values, "residue", index)
            assert canonical(got, modulus) == value % modulus

    def test_64_bit_generator(self):
        generator = build_residue_generator(7, 64, pipelined=False)
        rng = random.Random(1)
        data = [rng.getrandbits(64) for _ in range(64)]
        values = generator.evaluate(generator.pack_inputs({"data": data}))
        for index, value in enumerate(data):
            got = generator.read_output(values, "residue", index)
            assert canonical(got, 7) == value % 7

    def test_non_low_cost_modulus_rejected(self):
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            build_residue_generator(5, 32)


class TestPredictors:
    @pytest.mark.parametrize("modulus", (3, 7, 31, 127))
    def test_add_predictor(self, modulus):
        predictor = build_add_predictor(modulus, pipelined=False)
        rng = random.Random(modulus)
        cases = [(rng.randrange(modulus), rng.randrange(modulus),
                  rng.randrange(2)) for _ in range(128)]
        values = predictor.evaluate(predictor.pack_inputs({
            "ra": [c[0] for c in cases],
            "rb": [c[1] for c in cases],
            "subtract": [c[2] for c in cases],
        }))
        for index, (a, b, sub) in enumerate(cases):
            got = predictor.read_output(values, "prediction", index)
            want = (a - b) % modulus if sub else (a + b) % modulus
            assert canonical(got, modulus) == want

    @pytest.mark.parametrize("modulus", (3, 7, 31, 127))
    def test_multiplier(self, modulus):
        unit = build_residue_multiplier(modulus)
        rng = random.Random(modulus)
        cases = [(rng.randrange(modulus), rng.randrange(modulus))
                 for _ in range(128)]
        values = unit.evaluate(unit.pack_inputs({
            "a": [c[0] for c in cases],
            "b": [c[1] for c in cases],
        }))
        for index, (a, b) in enumerate(cases):
            got = unit.read_output(values, "product", index)
            assert canonical(got, modulus) == (a * b) % modulus

    @pytest.mark.parametrize("modulus", MODULI)
    def test_mad_predictor_equation_1(self, modulus):
        predictor = build_mad_predictor(modulus, pipelined=False)
        factor = split_correction_factor(modulus)
        rng = random.Random(modulus * 7)
        cases = [tuple(rng.randrange(modulus) for _ in range(4))
                 for _ in range(128)]
        values = predictor.evaluate(predictor.pack_inputs({
            "ra": [c[0] for c in cases],
            "rb": [c[1] for c in cases],
            "rc_hi": [c[2] for c in cases],
            "rc_lo": [c[3] for c in cases],
        }))
        for index, (ra, rb, rc_hi, rc_lo) in enumerate(cases):
            got = predictor.read_output(values, "prediction", index)
            want = (ra * rb + rc_hi * factor + rc_lo) % modulus
            assert canonical(got, modulus) == want

    def test_mad_predictor_end_to_end(self):
        # Predictor output matches the residue of an actual 32x32+64 MAD.
        modulus = 127
        predictor = build_mad_predictor(modulus, pipelined=False)
        rng = random.Random(9)
        cases = []
        for _ in range(64):
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            c = rng.getrandbits(64)
            cases.append((a, b, c))
        values = predictor.evaluate(predictor.pack_inputs({
            "ra": [a % modulus for a, __, __ in cases],
            "rb": [b % modulus for __, b, __ in cases],
            "rc_hi": [(c >> 32) % modulus for __, __, c in cases],
            "rc_lo": [(c & 0xFFFFFFFF) % modulus for __, __, c in cases],
        }))
        for index, (a, b, c) in enumerate(cases):
            got = predictor.read_output(values, "prediction", index)
            assert canonical(got, modulus) == (a * b + c) % modulus


class TestRecodeEncoder:
    @pytest.mark.parametrize("modulus", (3, 7, 15, 127))
    def test_direct_encode_path(self, modulus):
        encoder = build_recode_encoder(modulus, pipelined=False)
        rng = random.Random(modulus)
        data = [rng.getrandbits(32) for _ in range(64)]
        count = len(data)
        values = encoder.evaluate(encoder.pack_inputs({
            "z": data, "pred": [0] * count, "rz": [0] * count,
            "zadj": [0] * count, "seg_hi": [0] * count,
            "cin": [0] * count, "cout": [0] * count,
        }))
        for index, value in enumerate(data):
            got = encoder.read_output(values, "residue", index)
            assert canonical(got, modulus) == value % modulus

    @pytest.mark.parametrize("modulus", (3, 7, 15, 127, 255))
    def test_recode_both_segments(self, modulus):
        encoder = build_recode_encoder(modulus, pipelined=False)
        rng = random.Random(modulus + 1)
        cases = []
        for _ in range(128):
            full = rng.getrandbits(64)
            seg_hi = rng.randrange(2)
            cases.append((full, seg_hi))
        values = encoder.evaluate(encoder.pack_inputs({
            "z": [((f >> 32) if hi else (f & 0xFFFFFFFF))
                  for f, hi in cases],
            "pred": [1] * len(cases),
            "rz": [f % modulus for f, __ in cases],
            "zadj": [((f & 0xFFFFFFFF) if hi else (f >> 32))
                     for f, hi in cases],
            "seg_hi": [hi for __, hi in cases],
            "cin": [0] * len(cases),
            "cout": [0] * len(cases),
        }))
        for index, (full, seg_hi) in enumerate(cases):
            want = ((full >> 32) if seg_hi else (full & 0xFFFFFFFF)) % modulus
            got = encoder.read_output(values, "residue", index)
            assert canonical(got, modulus) == want, (modulus, index, seg_hi)

    @pytest.mark.parametrize("modulus", (7, 15))
    def test_carry_adjustment(self, modulus):
        # Low-segment recode with carry bits: out = rz - f*|zadj| + cin - cout.
        encoder = build_recode_encoder(modulus, pipelined=False)
        factor = split_correction_factor(modulus)
        rng = random.Random(4)
        cases = [(rng.getrandbits(64), rng.randrange(2), rng.randrange(2))
                 for _ in range(64)]
        values = encoder.evaluate(encoder.pack_inputs({
            "z": [f & 0xFFFFFFFF for f, __, __ in cases],
            "pred": [1] * len(cases),
            "rz": [f % modulus for f, __, __ in cases],
            "zadj": [f >> 32 for f, __, __ in cases],
            "seg_hi": [0] * len(cases),
            "cin": [c[1] for c in cases],
            "cout": [c[2] for c in cases],
        }))
        for index, (full, cin, cout) in enumerate(cases):
            high = full >> 32
            want = (full - factor * high + cin - cout) % modulus
            got = encoder.read_output(values, "residue", index)
            assert canonical(got, modulus) == want


class TestTable3:
    def test_adjustment_signals_match_paper(self):
        # Table III for a 4-bit residue: 0000, 0001, 1110, 1111.
        assert table3_adjustment(0, 0, 15) == 0b0000
        assert table3_adjustment(1, 0, 15) == 0b0001
        assert table3_adjustment(0, 1, 15) == 0b1110
        assert table3_adjustment(1, 1, 15) == 0b1111

    @pytest.mark.parametrize("modulus", MODULI)
    def test_signal_value_is_cin_minus_cout(self, modulus):
        for cin in (0, 1):
            for cout in (0, 1):
                signal = table3_adjustment(cin, cout, modulus)
                assert signal % modulus == (cin - cout) % modulus
