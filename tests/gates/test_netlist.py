"""Tests for the netlist IR and the bit-parallel simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.gates import Netlist, Op


def build_xor_chain(width=4):
    netlist = Netlist("chain")
    a = netlist.input_bus("a", width)
    b = netlist.input_bus("b", width)
    out = [netlist.xor(x, y) for x, y in zip(a, b)]
    netlist.set_output("out", out)
    return netlist


class TestConstruction:
    def test_forward_reference_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            netlist.and_(0, 5)

    def test_duplicate_input_bus_rejected(self):
        netlist = Netlist()
        netlist.input_bus("a", 2)
        with pytest.raises(NetlistError):
            netlist.input_bus("a", 2)

    def test_duplicate_output_rejected(self):
        netlist = Netlist()
        bus = netlist.input_bus("a", 2)
        netlist.set_output("o", bus)
        with pytest.raises(NetlistError):
            netlist.set_output("o", bus)

    def test_const_cached(self):
        netlist = Netlist()
        assert netlist.const(0) == netlist.const(0)
        assert netlist.const(1) == netlist.const(1)
        assert netlist.const(0) != netlist.const(1)

    def test_counts(self):
        netlist = build_xor_chain(4)
        assert netlist.gate_count() == 4
        assert netlist.flip_flop_count() == 0
        staged = netlist.stage(netlist.output_buses["out"])
        assert netlist.flip_flop_count() == 4
        assert len(staged) == 4

    def test_empty_reduction_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            netlist.xor_tree([])


class TestEvaluation:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    min_size=1, max_size=40))
    def test_xor_bus(self, pairs):
        netlist = build_xor_chain(4)
        packed = netlist.pack_inputs({
            "a": [a for a, __ in pairs],
            "b": [b for __, b in pairs],
        })
        values = netlist.evaluate(packed)
        for index, (a, b) in enumerate(pairs):
            assert netlist.read_output(values, "out", index) == a ^ b

    def test_all_primitive_ops(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 1)[0]
        b = netlist.input_bus("b", 1)[0]
        s = netlist.input_bus("s", 1)[0]
        ops = {
            "not": netlist.not_(a),
            "and": netlist.and_(a, b),
            "or": netlist.or_(a, b),
            "xor": netlist.xor(a, b),
            "nand": netlist.nand(a, b),
            "nor": netlist.nor(a, b),
            "xnor": netlist.xnor(a, b),
            "mux": netlist.mux(s, a, b),
            "dff": netlist.dff(a),
        }
        for name, net in ops.items():
            netlist.set_output(name, [net])
        cases = [(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)]
        packed = netlist.pack_inputs({
            "a": [c[0] for c in cases],
            "b": [c[1] for c in cases],
            "s": [c[2] for c in cases],
        })
        values = netlist.evaluate(packed)
        for index, (x, y, z) in enumerate(cases):
            assert netlist.read_output(values, "not", index) == 1 - x
            assert netlist.read_output(values, "and", index) == (x & y)
            assert netlist.read_output(values, "or", index) == (x | y)
            assert netlist.read_output(values, "xor", index) == (x ^ y)
            assert netlist.read_output(values, "nand", index) == 1 - (x & y)
            assert netlist.read_output(values, "nor", index) == 1 - (x | y)
            assert netlist.read_output(values, "xnor", index) == 1 - (x ^ y)
            assert netlist.read_output(values, "mux", index) == (x if z else y)
            assert netlist.read_output(values, "dff", index) == x

    def test_missing_input_bus_rejected(self):
        netlist = build_xor_chain(4)
        with pytest.raises(NetlistError):
            netlist.pack_inputs({"a": [1]})

    def test_mismatched_sample_counts_rejected(self):
        netlist = build_xor_chain(4)
        with pytest.raises(NetlistError):
            netlist.pack_inputs({"a": [1], "b": [1, 2]})


class TestFaultInjection:
    def test_flip_propagates_downstream(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 1)[0]
        mid = netlist.not_(a)
        out = netlist.not_(mid)
        netlist.set_output("out", [out])
        packed = netlist.pack_inputs({"a": [0, 1]})
        baseline = netlist.evaluate(packed)
        changed = netlist.evaluate_with_fault(packed, baseline, mid)
        assert changed[mid] == baseline[mid] ^ 0b11
        assert changed[out] == baseline[out] ^ 0b11

    def test_flip_mask_selects_samples(self):
        netlist = build_xor_chain(1)
        packed = netlist.pack_inputs({"a": [0, 0, 0], "b": [0, 0, 0]})
        baseline = netlist.evaluate(packed)
        site = netlist.output_buses["out"][0]
        changed = netlist.evaluate_with_fault(packed, baseline, site,
                                              flip_mask=0b010)
        assert changed[site] == 0b010

    def test_masked_fault_leaves_no_trace(self):
        # AND gate with the other input 0: a flip on one side is masked.
        netlist = Netlist()
        a = netlist.input_bus("a", 1)[0]
        b = netlist.input_bus("b", 1)[0]
        anded = netlist.and_(a, b)
        netlist.set_output("out", [anded])
        packed = netlist.pack_inputs({"a": [1], "b": [0]})
        baseline = netlist.evaluate(packed)
        changed = netlist.evaluate_with_fault(packed, baseline, a)
        assert anded not in changed  # flip of `a` masked by b == 0

    def test_fanout_cone(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 1)[0]
        b = netlist.input_bus("b", 1)[0]
        left = netlist.not_(a)
        right = netlist.not_(b)
        join = netlist.and_(left, right)
        netlist.set_output("out", [join])
        cone = netlist.fanout_cone(left)
        assert left in cone and join in cone
        assert right not in cone

    def test_fault_sites_exclude_inputs_and_consts(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 2)
        c = netlist.const(1)
        g = netlist.and_(a[0], a[1])
        d = netlist.dff(g)
        netlist.set_output("out", [d])
        sites = netlist.fault_sites()
        assert g in sites and d in sites
        assert a[0] not in sites and c not in sites
