"""Tests for the floating-point add/MAD netlists against the reference."""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import (FP32, FP64, FloatFormat, build_fp_add_unit,
                         build_fp_mad_unit, ref_fp_add, ref_fp_mad)


def float_to_bits(value):
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits):
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def random_encodings(fmt, count, seed):
    """Raw encodings mixing zeros, random patterns, and nearby exponents."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        kind = rng.randrange(6)
        if kind == 0:
            out.append(0)
        elif kind == 1:
            out.append(rng.getrandbits(fmt.width))
        else:
            exp = fmt.bias + rng.randrange(-24, 25)
            out.append(fmt.pack(rng.randrange(2), exp,
                                rng.getrandbits(fmt.man_bits)))
    return out


class TestFloatFormat:
    def test_fp32_geometry(self):
        assert FP32.width == 32
        assert FP32.bias == 127
        assert FP32.max_exp == 255

    def test_fp64_geometry(self):
        assert FP64.width == 64
        assert FP64.bias == 1023

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_pack_unpack_roundtrip(self, raw):
        assert FP32.pack(*FP32.unpack(raw)) == raw


class TestReferenceSemantics:
    def test_matches_ieee_closely(self):
        # Truncation + FTZ: relative error vs IEEE stays within one ulp-ish
        # bound for normal operands.
        rng = random.Random(0)
        for _ in range(500):
            x = rng.uniform(-1e6, 1e6)
            y = rng.uniform(-1e6, 1e6)
            got = bits_to_float(
                ref_fp_add(FP32, float_to_bits(x), float_to_bits(y)))
            want = x + y
            if abs(want) > 1e-20:
                assert abs(got - want) <= abs(want) * 1e-4 + 1e-6

    def test_add_zero_identity(self):
        x = float_to_bits(3.25)
        assert ref_fp_add(FP32, x, 0) == x
        assert ref_fp_add(FP32, 0, x) == x

    def test_add_cancellation_to_zero(self):
        x = float_to_bits(5.5)
        minus_x = float_to_bits(-5.5)
        assert ref_fp_add(FP32, x, minus_x) == 0

    def test_mad_zero_product(self):
        c = float_to_bits(7.75)
        assert ref_fp_mad(FP32, 0, float_to_bits(2.0), c) == c

    def test_mad_matches_ieee_closely(self):
        rng = random.Random(1)
        for _ in range(300):
            a = rng.uniform(-100, 100)
            b = rng.uniform(-100, 100)
            c = rng.uniform(-100, 100)
            got = bits_to_float(ref_fp_mad(
                FP32, float_to_bits(a), float_to_bits(b), float_to_bits(c)))
            want = a * b + c
            if abs(want) > 1e-12:
                assert abs(got - want) <= abs(want) * 1e-3 + \
                    abs(a * b) * 1e-5 + 1e-6

    def test_overflow_saturates(self):
        huge = FP32.pack(0, FP32.max_exp, 0)
        result = ref_fp_add(FP32, huge, huge)
        __, exp, man = FP32.unpack(result)
        assert exp == FP32.max_exp
        assert man == (1 << FP32.man_bits) - 1


@pytest.mark.parametrize("fmt", [FP32, FP64], ids=lambda f: f.name)
class TestAddNetlist:
    def test_matches_reference(self, fmt):
        unit = build_fp_add_unit(fmt, pipelined=False)
        x = random_encodings(fmt, 256, seed=10)
        y = random_encodings(fmt, 256, seed=11)
        values = unit.evaluate(unit.pack_inputs({"x": x, "y": y}))
        for index in range(256):
            got = unit.read_output(values, "result", index)
            want = ref_fp_add(fmt, x[index], y[index])
            assert got == want, (fmt.name, hex(x[index]), hex(y[index]))

    def test_pipelined_variant_matches(self, fmt):
        unit = build_fp_add_unit(fmt, pipelined=True)
        assert unit.flip_flop_count() > 0
        x = random_encodings(fmt, 64, seed=12)
        y = random_encodings(fmt, 64, seed=13)
        values = unit.evaluate(unit.pack_inputs({"x": x, "y": y}))
        for index in range(64):
            assert unit.read_output(values, "result", index) == \
                ref_fp_add(fmt, x[index], y[index])


@pytest.mark.parametrize("fmt", [FP32, FP64], ids=lambda f: f.name)
class TestMadNetlist:
    def test_matches_reference(self, fmt):
        unit = build_fp_mad_unit(fmt, pipelined=False)
        a = random_encodings(fmt, 128, seed=20)
        b = random_encodings(fmt, 128, seed=21)
        c = random_encodings(fmt, 128, seed=22)
        values = unit.evaluate(unit.pack_inputs({"a": a, "b": b, "c": c}))
        for index in range(128):
            got = unit.read_output(values, "result", index)
            want = ref_fp_mad(fmt, a[index], b[index], c[index])
            assert got == want, (fmt.name, hex(a[index]), hex(b[index]),
                                 hex(c[index]))

    def test_pipelined_variant_matches(self, fmt):
        unit = build_fp_mad_unit(fmt, pipelined=True)
        assert unit.flip_flop_count() > 0
        a = random_encodings(fmt, 32, seed=23)
        b = random_encodings(fmt, 32, seed=24)
        c = random_encodings(fmt, 32, seed=25)
        values = unit.evaluate(unit.pack_inputs({"a": a, "b": b, "c": c}))
        for index in range(32):
            assert unit.read_output(values, "result", index) == \
                ref_fp_mad(fmt, a[index], b[index], c[index])
