"""Tests for the shared bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import bitutils

NONNEG = st.integers(min_value=0, max_value=2**64 - 1)


class TestPopcountParity:
    @given(NONNEG)
    def test_popcount_matches_bin(self, value):
        assert bitutils.popcount(value) == bin(value).count("1")

    @given(NONNEG)
    def test_parity_is_popcount_lsb(self, value):
        assert bitutils.parity(value) == bitutils.popcount(value) % 2


class TestMaskAndBits:
    def test_mask(self):
        assert bitutils.mask(0) == 0
        assert bitutils.mask(8) == 0xFF
        assert bitutils.mask(32) == 0xFFFF_FFFF

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            bitutils.mask(-1)

    @given(NONNEG, st.integers(min_value=0, max_value=63))
    def test_get_set_bit(self, value, index):
        assert bitutils.get_bit(
            bitutils.set_bit(value, index, 1), index) == 1
        assert bitutils.get_bit(
            bitutils.set_bit(value, index, 0), index) == 0

    @given(NONNEG)
    def test_bits_roundtrip(self, value):
        bits = bitutils.int_to_bits(value, 64)
        assert bitutils.bits_to_int(bits) == value

    @given(NONNEG)
    def test_bit_positions(self, value):
        positions = bitutils.bit_positions(value)
        assert bitutils.bits_to_int(
            [1 if i in set(positions) else 0 for i in range(70)]) == value

    @given(NONNEG, st.sets(st.integers(min_value=0, max_value=63)))
    def test_flip_bits_involution(self, value, indices):
        flipped = bitutils.flip_bits(value, indices)
        assert bitutils.flip_bits(flipped, indices) == value

    @given(NONNEG)
    def test_iter_bits(self, value):
        assert list(bitutils.iter_bits(value, 64)) == bitutils.int_to_bits(
            value, 64)


class TestRotateAndSignExtend:
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=100))
    def test_rotate_roundtrip(self, value, amount):
        rotated = bitutils.rotate_left(value, amount, 32)
        back = bitutils.rotate_left(rotated, (32 - amount % 32) % 32, 32)
        assert back == value

    def test_rotate_known(self):
        assert bitutils.rotate_left(0b1000_0000, 1, 8) == 1

    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_sign_extend_roundtrip(self, value):
        assert bitutils.sign_extend(value & 0xFFFF_FFFF, 32) == value

    def test_sign_extend_known(self):
        assert bitutils.sign_extend(0xFF, 8) == -1
        assert bitutils.sign_extend(0x7F, 8) == 127
