"""Chaos-test driver for the network-attached campaign service.

The socket chaos tests need a coordinator and workers they can start,
SIGKILL, and replace from outside, so this module runs either role as a
process of its own::

    PYTHONPATH=src python -m tests.inject.service_driver \
        --listen /tmp/fab.sock --fabric-dir /tmp/fab --shards 3

    PYTHONPATH=src python -m tests.inject.service_driver \
        --attach /tmp/fab.sock --worker-id w0 \
        --chaos-seed 7 --drop 0.05 --dup 0.05

It reuses :mod:`tests.inject.fabric_driver`'s toy unit kind and fabric
config, so a service run here and a local fabric run there with the
same arguments are same-seed twins — the byte-identity oracle of the
chaos tests.
"""

import argparse

from repro.inject.coordinator import CoordinatorService
from repro.inject.transport import (ChaosConfig, ChaosDialer,
                                    UnixSocketListener, unix_connect)
from repro.inject.worker import ShardWorker, WorkerConfig

from tests.inject.fabric_driver import toy_config, toy_units


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    role = parser.add_mutually_exclusive_group(required=True)
    role.add_argument("--listen", metavar="SOCK")
    role.add_argument("--attach", metavar="SOCK")
    parser.add_argument("--fabric-dir")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--units", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--delay", type=float, default=0.0)
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--lease-ttl", type=float, default=2.0)
    parser.add_argument("--worker-id", default="worker-0")
    parser.add_argument("--worker-seed", type=int, default=0)
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--drop", type=float, default=0.0)
    parser.add_argument("--dup", type=float, default=0.0)
    parser.add_argument("--reorder", type=float, default=0.0)
    parser.add_argument("--delay-prob", type=float, default=0.0)
    parser.add_argument("--delay-max", type=float, default=0.02)
    parser.add_argument("--sever-every", type=int, default=None)
    parser.add_argument("--partition", default=None, metavar="START,END",
                        help="one-way partition window in seconds since "
                        "connect, e.g. 0.5,1.5")
    args = parser.parse_args(argv)
    if args.listen:
        return run_coordinator(args)
    return run_worker(args)


def run_coordinator(args):
    listener = UnixSocketListener(args.listen)
    service = CoordinatorService(
        args.fabric_dir,
        config=toy_config(shards=args.shards, lease_ttl_s=args.lease_ttl,
                          batch_size=args.batch_size,
                          max_batches=args.batches),
        listener=listener)
    service.submit(toy_units(args.units, seed=args.seed,
                             delay=args.delay))
    try:
        report = service.serve()
    finally:
        listener.close()
    print(f"SERVICE_DONE paused={report.paused} "
          f"stopped_globally={report.stopped_globally}")
    return 0


def run_worker(args):
    dial = lambda: unix_connect(args.attach, timeout=5.0)  # noqa: E731
    if args.chaos_seed is not None:
        window = None
        if args.partition:
            start, end = args.partition.split(",")
            window = (float(start), float(end))
        dial = ChaosDialer(dial, ChaosConfig(
            seed=args.chaos_seed, drop=args.drop, dup=args.dup,
            reorder=args.reorder, delay=args.delay_prob,
            delay_max_s=args.delay_max,
            partition_window_s=window,
            sever_every=args.sever_every))
    worker = ShardWorker(
        dial, worker_id=args.worker_id,
        config=WorkerConfig(seed=args.worker_seed, backoff_s=0.02,
                            backoff_max_s=0.5, request_timeout_s=1.0))
    report = worker.run()
    print(f"WORKER_DONE worker={report.worker_id} "
          f"shards={len(report.shards)} "
          f"reconnects={report.reconnect_attempts} "
          f"reason={report.reason!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
