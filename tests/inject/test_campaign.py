"""Tests for the six-unit campaign front-end over the resilient engine."""

import pytest

from repro.errors import InjectionError
from repro.inject import (EngineConfig, run_full_campaign,
                          run_unit_campaign, unit_inputs)


class TestUnitInputs:
    def test_positive_count_required(self):
        with pytest.raises(InjectionError, match="must be positive"):
            unit_inputs("fxp-add-32", 0)
        with pytest.raises(InjectionError, match="must be positive"):
            unit_inputs("fxp-add-32", -5)

    def test_unknown_unit_rejected(self):
        with pytest.raises(InjectionError, match="unknown unit"):
            unit_inputs("fp-div-128", 10)

    def test_valid_count_produces_buses(self):
        samples = unit_inputs("fxp-mad-32", 7, seed=1)
        assert set(samples) == {"a", "b", "c"}
        assert all(len(values) == 7 for values in samples.values())


class TestRunFullCampaign:
    def test_engine_path_matches_legacy_per_unit_runs(self):
        # The engine's single-batch default must reproduce the direct
        # per-unit campaigns bit for bit (seed + index per unit).
        units = ("fxp-add-32", "fxp-mad-32")
        campaigns = run_full_campaign(sample_count=25, site_count=30,
                                      seed=4, units=units)
        assert list(campaigns) == list(units)
        for index, name in enumerate(units):
            legacy = run_unit_campaign(name, 25, 30, 4 + index)
            assert campaigns[name].sample_count == legacy.sample_count
            assert [r.site for r in campaigns[name].records] == \
                [r.site for r in legacy.records]

    def test_journal_resume_skips_finished_units(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        first = run_full_campaign(sample_count=20, site_count=25, seed=1,
                                  units=("fxp-add-32",),
                                  journal_path=journal)
        again = run_full_campaign(sample_count=20, site_count=25, seed=1,
                                  units=("fxp-add-32",),
                                  journal_path=journal)
        assert [r.site for r in first["fxp-add-32"].records] == \
            [r.site for r in again["fxp-add-32"].records]

    def test_sharded_campaign_matches_single_engine(self, tmp_path):
        # shards=N is an execution strategy, not a statistical change:
        # the partitioned fabric must reproduce the single-engine run
        units = ("fxp-add-32", "fxp-mad-32")
        single = run_full_campaign(sample_count=20, site_count=25, seed=3,
                                   units=units)
        sharded = run_full_campaign(sample_count=20, site_count=25, seed=3,
                                    units=units, shards=2,
                                    fabric_dir=str(tmp_path / "fabric"))
        assert list(sharded) == list(units)
        for name in units:
            assert sharded[name].to_dict() == single[name].to_dict()

    def test_sharded_campaign_requires_a_fabric_dir(self):
        with pytest.raises(InjectionError, match="fabric_dir"):
            run_full_campaign(sample_count=10, site_count=10,
                              units=("fxp-add-32",), shards=2)

    def test_batched_config_covers_requested_units(self, tmp_path):
        config = EngineConfig(batch_size=10, max_batches=3,
                              ci_half_width=None, timeout_s=60.0)
        campaigns = run_full_campaign(site_count=25, seed=2,
                                      units=("fxp-add-32",),
                                      journal_path=str(
                                          tmp_path / "batched.jsonl"),
                                      engine_config=config)
        assert campaigns["fxp-add-32"].sample_count == 30
