"""Service tests: coordinator/worker protocol idempotence under chaos.

The protocol-level tests speak raw frames at a live
:class:`~repro.inject.coordinator.CoordinatorService` over the
in-process transport — duplicated completions, stale fencing tokens
after a steal, reordered heartbeat/progress frames — and the
campaign-level tests pin the headline guarantee: a service deployment's
merged report is byte-identical to the forking fabric's, chaos or not.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import FabricConfigError, StaleFencingToken
from repro.inject.coordinator import (CoordinatorService,
                                      run_service_campaign, unwire_unit)
from repro.inject.engine import CampaignEngine, EngineConfig
from repro.inject.fabric import run_fabric_campaign
from repro.inject.merge import fabric_journal_paths
from repro.inject.transport import (ChaosConfig, ChaosDialer,
                                    InProcessTransport)
from repro.inject.worker import ShardWorker, WorkerConfig

from tests.inject.fabric_driver import toy_config, toy_units

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _merged_bytes(fabric_dir):
    with open(os.path.join(fabric_dir, "merged_report.json"), "rb") as fh:
        return fh.read()


def _coordinator_records(fabric_dir):
    records = []
    with open(os.path.join(fabric_dir, "coordinator.jsonl")) as handle:
        for line in handle:
            records.append(json.loads(line))
    return records


def _serve_in_thread(service):
    result = {}

    def target():
        try:
            result["report"] = service.serve()
        except BaseException as exc:  # re-raised by the test
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, result


def _request(conn, message, req, timeout=10.0):
    """One raw protocol request; returns the reply echoing ``req``."""
    framed = dict(message)
    framed["req"] = req
    conn.send(framed)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        reply = conn.recv(timeout=0.05)
        if reply is None:
            continue
        if reply.get("re") == req or reply.get("type") in ("done",
                                                           "drain"):
            return reply
    raise AssertionError(f"no reply to {message}")


def _run_granted_shard(grant):
    """Execute a grant's shard exactly as a worker's engine would."""
    engine = CampaignEngine(EngineConfig(**grant["engine"]))
    units = [unwire_unit(encoded) for encoded in grant["units"]]
    return engine.run(units, grant["journal"],
                      journal_header=grant["header"])


class TestProtocolIdempotence:
    def _service(self, tmp_path, shards=2, units=4, **knobs):
        transport = InProcessTransport()
        service = CoordinatorService(
            str(tmp_path / "fab"),
            config=toy_config(shards=shards, **knobs),
            listener=transport)
        service.submit(toy_units(units))
        return service, transport

    def test_duplicated_completion_is_acknowledged_and_dropped(
            self, tmp_path):
        service, transport = self._service(tmp_path)
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        grant = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        assert grant["type"] == "grant"
        _run_granted_shard(grant)
        complete = {"type": "complete", "shard": grant["shard"],
                    "token": grant["token"], "paused": False}
        first = _request(conn, complete, "r2")
        second = _request(conn, complete, "r3")  # at-least-once replay
        assert first["type"] == "ok" and second["type"] == "ok"
        # finish the other shard so the job ends
        grant2 = _request(conn, {"type": "attach", "worker": "t0"}, "r4")
        _run_granted_shard(grant2)
        _request(conn, {"type": "complete", "shard": grant2["shard"],
                        "token": grant2["token"], "paused": False}, "r5")
        thread.join(60)
        assert "error" not in result, result.get("error")
        completions = [record for record
                       in _coordinator_records(service.fabric_dir)
                       if record["type"] == "lease_completed"
                       and record["shard"] == grant["shard"]]
        assert len(completions) == 1  # the duplicate left no record

    def test_attach_resend_reuses_the_grant(self, tmp_path):
        # a lost grant reply must not burn a fencing token: the resent
        # attach gets the *same* lease back
        service, transport = self._service(tmp_path, shards=1, units=2)
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        first = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        again = _request(conn, {"type": "attach", "worker": "t0"}, "r2")
        assert (first["shard"], first["token"]) == \
            (again["shard"], again["token"])
        _run_granted_shard(again)
        _request(conn, {"type": "complete", "shard": again["shard"],
                        "token": again["token"], "paused": False}, "r3")
        thread.join(60)
        assert "error" not in result, result.get("error")

    def test_stale_token_completion_rejected_after_steal(self, tmp_path):
        service, transport = self._service(
            tmp_path, shards=1, units=2, lease_ttl_s=0.4)
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        stale = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        assert stale["type"] == "grant" and stale["token"] == 1
        time.sleep(0.8)  # no heartbeats: the TTL lapses, lease expires
        fresh = _request(conn, {"type": "attach", "worker": "t0"}, "r2")
        assert fresh["type"] == "grant" and fresh["token"] == 2
        # the zombie claims completion under its superseded token
        reject = _request(conn, {"type": "complete",
                                 "shard": stale["shard"],
                                 "token": stale["token"],
                                 "paused": False}, "r3")
        assert reject["type"] == "reject"
        assert reject["code"] == StaleFencingToken.code
        _run_granted_shard(fresh)
        ok = _request(conn, {"type": "complete", "shard": fresh["shard"],
                             "token": fresh["token"], "paused": False},
                      "r4")
        assert ok["type"] == "ok"
        thread.join(60)
        assert "error" not in result, result.get("error")
        kinds = [record["type"]
                 for record in _coordinator_records(service.fabric_dir)]
        assert "lease_expired" in kinds and "lease_rejected" in kinds
        assert result["report"].shard_status == {"shard-000": "completed"}

    def test_reordered_and_duplicated_frames_absorb_once(self, tmp_path):
        service, transport = self._service(tmp_path, shards=1, units=1)
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        grant = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        shard, token = grant["shard"], grant["token"]
        # heartbeats arrive out of order: renew keeps the highest beat
        for beat in (3, 1, 2):
            conn.send({"type": "heartbeat", "shard": shard,
                       "token": token, "beat": beat})
        # progress arrives reordered AND duplicated; the estimator must
        # count each (unit, index) exactly once
        frames = [
            {"type": "progress", "shard": shard, "token": token,
             "unit": "u0", "index": 1, "trials": 20, "successes": 5,
             "counts": {"detected": 5, "masked": 15}},
            {"type": "progress", "shard": shard, "token": token,
             "unit": "u0", "index": 0, "trials": 20, "successes": 4,
             "counts": {"detected": 4, "masked": 16}},
        ]
        for frame in frames + [frames[0]]:  # replay the first again
            conn.send(frame)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and \
                service._estimator.trials < 40:
            time.sleep(0.02)
        assert service._estimator.trials == 40
        _run_granted_shard(grant)
        _request(conn, {"type": "complete", "shard": shard,
                        "token": token, "paused": False}, "r2")
        thread.join(60)
        assert "error" not in result, result.get("error")

    def test_conflicting_progress_is_rejected_and_bundled(self, tmp_path):
        transport = InProcessTransport()
        bundle_dir = str(tmp_path / "bundles")
        service = CoordinatorService(
            str(tmp_path / "fab"),
            config=toy_config(shards=1, bundle_dir=bundle_dir),
            listener=transport)
        service.submit(toy_units(1))
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        grant = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        shard, token = grant["shard"], grant["token"]
        base = {"type": "progress", "shard": shard, "token": token,
                "unit": "u0", "index": 0, "trials": 20,
                "counts": {"detected": 5, "masked": 15}}
        conn.send(dict(base, successes=5))
        conn.send(dict(base, successes=7))  # divergent execution
        deadline = time.monotonic() + 10.0
        reject = None
        while time.monotonic() < deadline and reject is None:
            reply = conn.recv(timeout=0.05)
            if reply is not None and reply.get("type") == "reject":
                reject = reply
        assert reject is not None
        assert reject["code"] == "coordinator.protocol"
        # the coordinator keeps serving: the shard still completes
        _run_granted_shard(grant)
        _request(conn, {"type": "complete", "shard": shard,
                        "token": token, "paused": False}, "r2")
        thread.join(60)
        assert "error" not in result, result.get("error")
        kinds = [record["type"]
                 for record in _coordinator_records(service.fabric_dir)]
        assert "protocol_conflict" in kinds
        assert os.listdir(bundle_dir)  # the evidence bundle landed

    def test_reattach_revalidates_the_fencing_token(self, tmp_path):
        service, transport = self._service(tmp_path, shards=1, units=2)
        thread, result = _serve_in_thread(service)
        conn = transport.connect()
        grant = _request(conn, {"type": "attach", "worker": "t0"}, "r1")
        conn.close()  # the connection tears mid-shard
        conn = transport.connect()
        ok = _request(conn, {"type": "reattach", "worker": "t0",
                             "shard": grant["shard"],
                             "token": grant["token"]}, "r2")
        assert ok["type"] == "ok"
        bogus = _request(conn, {"type": "reattach", "worker": "t1",
                                "shard": grant["shard"],
                                "token": 99}, "r3")
        assert bogus["type"] == "reject"
        _run_granted_shard(grant)
        _request(conn, {"type": "complete", "shard": grant["shard"],
                        "token": grant["token"], "paused": False}, "r4")
        thread.join(60)
        assert "error" not in result, result.get("error")


class TestWorkerConfig:
    def test_bad_knobs_are_rejected_as_typed_config_errors(self):
        with pytest.raises(FabricConfigError, match="backoff"):
            WorkerConfig(backoff_s=0.0)
        with pytest.raises(FabricConfigError, match="reconnect"):
            WorkerConfig(max_reconnect_attempts=0)
        with pytest.raises(FabricConfigError, match="request_timeout"):
            WorkerConfig(request_timeout_s=0.0)
        with pytest.raises(FabricConfigError, match="resends"):
            WorkerConfig(max_request_resends=0)


def _run_service_with_workers(fabric_dir, units, config, make_dial,
                              worker_count=3):
    """A service campaign with explicit workers; returns all reports."""
    transport = InProcessTransport()
    service = CoordinatorService(fabric_dir, config=config,
                                 listener=transport)
    service.submit(units)
    workers = [ShardWorker(make_dial(transport, index),
                           worker_id=f"w{index}",
                           config=WorkerConfig(seed=index,
                                               backoff_s=0.01,
                                               backoff_max_s=0.1,
                                               request_timeout_s=1.0))
               for index in range(worker_count)]
    results = [None] * worker_count
    threads = [threading.Thread(
        target=lambda i=i: results.__setitem__(i, workers[i].run()),
        daemon=True) for i in range(worker_count)]
    for thread in threads:
        thread.start()
    report = service.serve()
    transport.close()
    for thread in threads:
        thread.join(timeout=60)
    return report, workers, results


class TestServiceCampaign:
    def test_service_merge_is_byte_identical_to_forking_fabric(
            self, tmp_path):
        ref_dir = str(tmp_path / "ref")
        run_fabric_campaign(toy_units(6), ref_dir, toy_config(shards=3))
        svc_dir = str(tmp_path / "svc")
        report = run_service_campaign(toy_units(6), svc_dir,
                                      toy_config(shards=3))
        assert not report.paused
        assert set(report.shard_status.values()) == {"completed"}
        assert _merged_bytes(svc_dir) == _merged_bytes(ref_dir)

    def test_chaos_reconnect_resume_reaches_identical_counts(
            self, tmp_path):
        """Satellite guarantee: sever the worker transport repeatedly
        (plus drops and duplicates) and the reconnect-reattach-resume
        path converges on counts byte-identical to a fault-free run."""
        ref_dir = str(tmp_path / "ref")
        run_fabric_campaign(toy_units(6), ref_dir, toy_config(shards=3))
        svc_dir = str(tmp_path / "svc")
        chaos = ChaosConfig(seed=13, drop=0.05, dup=0.05,
                            sever_every=25)

        def make_dial(transport, index):
            return ChaosDialer(transport.connect, chaos)

        report, workers, results = _run_service_with_workers(
            svc_dir, toy_units(6), toy_config(shards=3), make_dial)
        assert not report.paused
        assert set(report.shard_status.values()) == {"completed"}
        assert _merged_bytes(svc_dir) == _merged_bytes(ref_dir)
        # chaos actually forced reconnects, and the journals carry the
        # durable connection forensics with their attempt counts
        assert sum(worker.reconnect_attempts for worker in workers) > 0
        attached = []
        for path in fabric_journal_paths(svc_dir):
            with open(path) as handle:
                for line in handle:
                    record = json.loads(line)
                    if record.get("type") in ("worker_attached",
                                              "worker_detached"):
                        attached.append(record)
        assert any(record["type"] == "worker_attached"
                   and "attempts" in record for record in attached)
        assert any(record["type"] == "worker_detached"
                   and "reconnects" in record for record in attached)

    def test_campaign_service_flag_runs_gate_units(self, tmp_path):
        from repro.inject.campaign import run_full_campaign
        results = run_full_campaign(
            sample_count=40, site_count=10, shards=2,
            fabric_dir=str(tmp_path / "fab"), service=True,
            units=("fxp-add-32", "fp-add-32"))
        assert set(results) == {"fxp-add-32", "fp-add-32"}
        assert all(result.sample_count > 0 for result in results.values())

    def test_worker_abandons_a_stolen_lease(self, tmp_path):
        # a worker whose lease was stolen while it was partitioned must
        # not complete; the thief's completion wins
        svc_dir = str(tmp_path / "svc")
        config = toy_config(shards=1, lease_ttl_s=0.4)
        transport = InProcessTransport()
        service = CoordinatorService(svc_dir, config=config,
                                     listener=transport)
        service.submit(toy_units(2, delay=0.2))
        thread, result = _serve_in_thread(service)
        # the victim's every frame after grant is swallowed for longer
        # than the TTL: heartbeats stop, the lease expires, and its
        # post-partition reattach must be rejected
        chaos = ChaosConfig(seed=5, partition_window_s=(0.05, 30.0),
                            partition_direction="send")
        victim = ShardWorker(
            ChaosDialer(transport.connect, chaos), worker_id="victim",
            config=WorkerConfig(seed=0, backoff_s=0.01,
                                backoff_max_s=0.05,
                                max_reconnect_attempts=2,
                                request_timeout_s=0.3))
        victim_result = {}
        victim_thread = threading.Thread(
            target=lambda: victim_result.update(
                report=victim.run()), daemon=True)
        victim_thread.start()
        time.sleep(0.8)  # let the victim's lease lapse
        thief = ShardWorker(transport.connect, worker_id="thief",
                            config=WorkerConfig(seed=1, backoff_s=0.01,
                                                backoff_max_s=0.1))
        thief_report = thief.run()
        thread.join(60)
        victim_thread.join(30)
        assert "error" not in result, result.get("error")
        assert [entry["outcome"] for entry in thief_report.shards] == \
            ["completed"]
        report = victim_result.get("report")
        if report is not None and report.shards:
            assert report.shards[0]["outcome"] in ("abandoned", "lost",
                                                   "rejected")
        # the durable truth: exactly one completion, under the thief's
        # fencing token — the zombie's was never acknowledged
        completions = [record for record
                       in _coordinator_records(svc_dir)
                       if record["type"] == "lease_completed"]
        assert [record["token"] for record in completions] == [2]


@pytest.mark.slow
class TestServiceChaosSocket:
    """The CI acceptance scenario: socket transport, chaos schedule on a
    worker, one worker SIGKILLed mid-shard — merged report byte-identical
    to a fault-free local-fabric run."""

    DRIVER = [sys.executable, "-m", "tests.inject.service_driver"]
    ARGS = ["--shards", "3", "--units", "6", "--delay", "0.05",
            "--batch-size", "10", "--batches", "6", "--lease-ttl",
            "2.0"]

    def _spawn(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.Popen(
            list(self.DRIVER) + list(extra), cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    def _wait_for_progress(self, fabric_dir, min_bytes=400,
                           deadline_s=60.0):
        deadline = time.time() + deadline_s
        while time.time() < deadline:
            try:
                sizes = [os.path.getsize(path)
                         for path in fabric_journal_paths(fabric_dir)]
            except OSError:
                sizes = []
            if sizes and max(sizes) >= min_bytes:
                return
            time.sleep(0.05)
        raise AssertionError("service made no journal progress")

    def test_socket_chaos_and_worker_sigkill_byte_identical(
            self, tmp_path):
        seed = int(os.environ.get("REPRO_STRESS_SEED", "0"))
        # the fault-free oracle: the forking fabric, same units/config
        ref_dir = str(tmp_path / "ref")
        run_fabric_campaign(
            toy_units(6, seed=seed, delay=0.05), ref_dir,
            toy_config(shards=3, lease_ttl_s=2.0, batch_size=10,
                       max_batches=6))

        svc_dir = str(tmp_path / "svc")
        sock = str(tmp_path / "fab.sock")
        coordinator = self._spawn(
            "--listen", sock, "--fabric-dir", svc_dir,
            "--seed", str(seed), *self.ARGS)
        workers = {}
        try:
            deadline = time.time() + 30.0
            while not os.path.exists(sock) and time.time() < deadline:
                time.sleep(0.05)
            # one chaos-ridden worker (drops, duplicates, and a timed
            # one-way partition), one clean worker, one victim
            workers["chaotic"] = self._spawn(
                "--attach", sock, "--worker-id", "chaotic",
                "--worker-seed", "1", "--chaos-seed", str(seed + 7),
                "--drop", "0.05", "--dup", "0.05",
                "--partition", "1.0,1.6")
            workers["clean"] = self._spawn(
                "--attach", sock, "--worker-id", "clean",
                "--worker-seed", "2")
            workers["victim"] = self._spawn(
                "--attach", sock, "--worker-id", "victim",
                "--worker-seed", "3")
            self._wait_for_progress(svc_dir)
            workers["victim"].send_signal(signal.SIGKILL)
            # a replacement appears, as fleets do
            workers["spare"] = self._spawn(
                "--attach", sock, "--worker-id", "spare",
                "--worker-seed", "4")
            output = coordinator.stdout.read()
            assert coordinator.wait(300) == 0, output
            assert "SERVICE_DONE paused=False" in output
        finally:
            for process in workers.values():
                if process.poll() is None:
                    process.kill()
            if coordinator.poll() is None:
                coordinator.kill()
            for process in list(workers.values()) + [coordinator]:
                process.wait(60)

        assert _merged_bytes(svc_dir) == _merged_bytes(ref_dir)
        # the kill left its mark: some lease expired and was re-granted
        kinds = [record["type"] for record in
                 _coordinator_records(svc_dir)]
        assert "lease_expired" in kinds
        tokens = [record["token"] for record in
                  _coordinator_records(svc_dir)
                  if record["type"] == "lease_granted"]
        assert max(tokens) >= 2
