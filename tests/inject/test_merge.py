"""Tests for the deterministic, idempotent shard-journal merge."""

import itertools
import json

import pytest

from repro.errors import MergeConflict
from repro.inject.journal import Journal
from repro.inject.merge import (merge_shard_journals, write_merged_report)


def _shard_journal(path, shard, token, units, paused=False):
    """Write one lease journal: unit_started + batches (+ unit_done)."""
    journal = Journal(str(path), header={"role": "shard", "shard": shard,
                                         "token": token, "shard_count": 2})
    for unit_id, batches, done in units:
        journal.append({"type": "unit_started", "unit": unit_id,
                        "kind": "toy", "params": {"seed": 7}})
        for index, (trials, successes) in enumerate(batches):
            journal.append({
                "type": "batch", "unit": unit_id, "index": index,
                "trials": trials, "successes": successes,
                "counts": {"detected": successes,
                           "masked": trials - successes}})
        if done:
            trials = sum(t for t, _ in batches)
            successes = sum(s for _, s in batches)
            journal.append({
                "type": "unit_done", "unit": unit_id,
                "status": "completed",
                "summary": {"status": "completed",
                            "counts": {"detected": successes,
                                       "masked": trials - successes},
                            "trials": trials, "successes": successes,
                            "batches": len(batches),
                            "stopped_early": False}})
    if paused:
        journal.append({"type": "campaign_paused", "reason": "drain"})
    journal.close()


class TestMergeBasics:
    def test_merges_disjoint_shards(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-001.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1), (4, 2)], True)])
        _shard_journal(b, "shard-001", 1, [("u1", [(4, 4)], True)])
        merged = merge_shard_journals([str(a), str(b)])
        assert set(merged.report.units) == {"u0", "u1"}
        assert merged.report.units["u0"].trials == 8
        assert merged.report.units["u0"].successes == 3
        assert merged.estimate.trials == 12
        assert merged.estimate.successes == 7
        assert not merged.report.paused

    def test_duplicate_batches_count_once(self, tmp_path):
        # work stealing re-executes; identical duplicates are one batch
        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-000.lease-002.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], False)])
        _shard_journal(b, "shard-000", 2,
                       [("u0", [(4, 1), (4, 2)], True)])
        merged = merge_shard_journals([str(a), str(b)])
        assert merged.report.units["u0"].trials == 8
        assert merged.report.units["u0"].batches == 2

    def test_unfinished_unit_reports_paused(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], False)],
                       paused=True)
        merged = merge_shard_journals([str(a)])
        assert merged.report.units["u0"].status == "paused"
        assert merged.report.paused
        assert merged.sources["shard-000"].drained

    def test_global_stop_marks_unfinished_units_stopped_early(
            self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], False)],
                       paused=True)
        merged = merge_shard_journals([str(a)], stopped_globally=True)
        unit = merged.report.units["u0"]
        assert unit.status == "completed" and unit.stopped_early
        assert not merged.report.paused


class TestMergeConflicts:
    def test_contradictory_duplicate_batch_is_refused(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-000.lease-002.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], False)])
        _shard_journal(b, "shard-000", 2, [("u0", [(4, 3)], False)])
        with pytest.raises(MergeConflict, match="refusing to pick"):
            merge_shard_journals([str(a), str(b)])

    def test_divergent_unit_params_are_refused(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-001.lease-001.jsonl"
        journal = Journal(str(a), header={"shard": "shard-000", "token": 1})
        journal.append({"type": "unit_started", "unit": "u0",
                        "kind": "toy", "params": {"seed": 1}})
        journal.close()
        journal = Journal(str(b), header={"shard": "shard-001", "token": 1})
        journal.append({"type": "unit_started", "unit": "u0",
                        "kind": "toy", "params": {"seed": 2}})
        journal.close()
        with pytest.raises(MergeConflict, match="divergent"):
            merge_shard_journals([str(a), str(b)])


class TestDeterminism:
    def test_any_permutation_merges_byte_identical(self, tmp_path):
        # the replay-stability property the chaos guarantee rests on:
        # merge is a pure function of the *set* of journals
        paths = []
        for shard in range(3):
            for token in (1, 2):
                path = tmp_path / \
                    f"shard-{shard:03d}.lease-{token:03d}.jsonl"
                _shard_journal(
                    path, f"shard-{shard:03d}", token,
                    [(f"u{shard}", [(4, shard), (4, 1)], token == 2)])
                paths.append(str(path))
        artifacts = set()
        for permutation in itertools.permutations(paths):
            merged = merge_shard_journals(list(permutation))
            out = tmp_path / "report.json"
            artifacts.add(write_merged_report(merged, str(out)))
        assert len(artifacts) == 1

    def test_merging_twice_is_idempotent(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], True)])
        first = write_merged_report(
            merge_shard_journals([str(a)]), str(tmp_path / "r1.json"))
        second = write_merged_report(
            merge_shard_journals([str(a), str(a)]),
            str(tmp_path / "r2.json"))
        assert first == second

    def test_artifact_is_canonical_json_with_newline(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], True)])
        payload = write_merged_report(
            merge_shard_journals([str(a)]), str(tmp_path / "r.json"))
        assert payload.endswith(b"\n")
        decoded = json.loads(payload)
        recanonical = json.dumps(decoded, sort_keys=True,
                                 separators=(",", ":")).encode() + b"\n"
        assert payload == recanonical
        # provenance never leaks into the artifact
        assert "sources" not in decoded and "tokens" not in payload.decode()

    def test_torn_tail_costs_only_the_tail(self, tmp_path):
        a = tmp_path / "shard-000.lease-001.jsonl"
        _shard_journal(a, "shard-000", 1, [("u0", [(4, 1)], False)])
        with open(a, "a") as handle:
            handle.write('{"type": "batch", "unit": "u0", "in')
        merged = merge_shard_journals([str(a)])
        assert merged.report.units["u0"].trials == 4
