"""Tests for the resilient campaign engine: isolation, retry, resume."""

import json
import os
import time

import pytest

from repro.errors import InjectionError
from repro.inject import (OUTCOMES, RECOVERY_CLASSES, CampaignEngine,
                          EngineConfig, WorkUnit, gate_work_unit,
                          gpu_recovery_work_unit, gpu_work_unit,
                          merged_gate_results, recovery_coverage,
                          register_unit_kind, run_full_campaign,
                          run_unit_campaign, wilson_interval)
from repro.inject.engine import BatchSpec, make_scheme


def _tally_runner(params, context, batch):
    """Deterministic batch: all trials succeed; journals invocations."""
    if params.get("tally"):
        with open(params["tally"], "a") as handle:
            handle.write(f"{params.get('tag', '?')}:{batch.index}\n")
    return {"trials": batch.size, "successes": batch.size,
            "counts": {"due": batch.size}}


def _zero_rate_runner(params, context, batch):
    """No successes — the Wilson interval tightens quickly around 0."""
    return {"trials": batch.size, "successes": 0,
            "counts": {"masked": batch.size}}


def _raise_runner(params, context, batch):
    raise RuntimeError("worker exploded")


def _hard_exit_runner(params, context, batch):
    os._exit(3)


def _hang_runner(params, context, batch):
    time.sleep(60)


def _flaky_runner(params, context, batch):
    """Fails until a flag file exists, then succeeds — a transient fault."""
    flag = params["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("tried\n")
        raise RuntimeError("transient failure")
    return {"trials": batch.size, "successes": batch.size,
            "counts": {"due": batch.size}}


for _kind, _runner in (("tally", _tally_runner),
                       ("zero-rate", _zero_rate_runner),
                       ("raise", _raise_runner),
                       ("hard-exit", _hard_exit_runner),
                       ("hang", _hang_runner),
                       ("flaky", _flaky_runner)):
    register_unit_kind(_kind, _runner, replace=True)


def quick_config(**overrides):
    defaults = dict(batch_size=4, max_batches=2, timeout_s=20.0,
                    max_retries=1, backoff_s=0.01, ci_half_width=None)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestWilsonInterval:
    def test_zero_trials_is_uninformative(self):
        estimate = wilson_interval(0, 0)
        assert (estimate.low, estimate.high) == (0.0, 1.0)

    def test_interval_brackets_rate_and_tightens(self):
        loose = wilson_interval(5, 10)
        tight = wilson_interval(500, 1000)
        for estimate in (loose, tight):
            assert estimate.low <= estimate.rate <= estimate.high
        assert tight.half_width < loose.half_width

    def test_extremes_stay_in_unit_interval(self):
        assert wilson_interval(0, 50).low == 0.0
        assert wilson_interval(50, 50).high == 1.0

    def test_bad_counts_rejected(self):
        with pytest.raises(InjectionError):
            wilson_interval(3, 2)

    def test_zero_trials_estimate_fields(self):
        # A crashed-before-data unit yields the uninformative estimate,
        # not a ZeroDivisionError.
        estimate = wilson_interval(0, 0)
        assert estimate.rate == 0.0
        assert estimate.trials == 0 and estimate.successes == 0
        assert estimate.half_width == 0.5

    def test_successes_exceeding_trials_names_both(self):
        with pytest.raises(InjectionError) as excinfo:
            wilson_interval(7, 3)
        message = str(excinfo.value)
        assert "7" in message and "3" in message
        assert "cannot exceed" in message

    def test_negative_counts_rejected_distinctly(self):
        with pytest.raises(InjectionError, match="trials must be >= 0"):
            wilson_interval(0, -1)
        with pytest.raises(InjectionError, match="successes must be >= 0"):
            wilson_interval(-1, 5)


class TestBatchSeedDeterminism:
    """Resume-equivalence rests on batch seeds being pure functions."""

    def test_seed_schedule_is_pinned(self):
        from repro.inject.engine import _BATCH_SEED_STRIDE, _batch_seed
        assert _BATCH_SEED_STRIDE == 1000003
        assert [_batch_seed({"seed": 7}, index) for index in range(4)] == \
            [7, 1000010, 2000013, 3000016]
        assert _batch_seed({}, 2) == 2000006  # missing seed defaults to 0

    def test_batch_zero_reproduces_legacy_seed(self):
        from repro.inject.engine import _batch_seed
        # batch 0 must use the unit's own seed so a one-batch campaign
        # reproduces the legacy single-shot sweep exactly
        assert _batch_seed({"seed": 42}, 0) == 42

    def test_same_batch_spec_same_results(self):
        from repro.inject.engine import run_gate_batch
        batch = BatchSpec(index=1, size=12,
                          seed=1000003 + 5)  # any fixed derived seed
        params = {"unit": "fxp-add-32", "site_count": 10}
        first = run_gate_batch(params, None, batch)
        second = run_gate_batch(params, None, batch)
        assert first["counts"] == second["counts"]
        assert first["trials"] == second["trials"]
        assert first["payload"] == second["payload"]


class TestEngineConfigValidation:
    def test_bad_knobs_rejected(self):
        for overrides in ({"batch_size": 0}, {"max_batches": 0},
                          {"max_retries": -1}, {"ci_half_width": 0.0},
                          {"ci_half_width": -0.1}, {"timeout_s": 0.0},
                          {"isolation": "thread"}, {"backoff_max_s": 0.0}):
            with pytest.raises(InjectionError):
                EngineConfig(**overrides)


class TestRetryDelay:
    """Exponential backoff must saturate, and jitter must be replayable."""

    def test_backoff_is_capped(self):
        from repro.inject.engine import _retry_delay
        config = EngineConfig(backoff_s=1.0, backoff_max_s=30.0)
        # attempt 40 would be 2**39 seconds uncapped; the ceiling (plus
        # full jitter head-room) bounds every delay to backoff_max_s
        for attempts in (1, 5, 10, 40):
            assert _retry_delay(config, seed=123, attempts=attempts) <= \
                config.backoff_max_s

    def test_backoff_grows_until_the_cap(self):
        from repro.inject.engine import _retry_delay
        config = EngineConfig(backoff_s=0.1, backoff_max_s=1000.0)
        # jitter spans [0.5x, 1x), so successive exponents never overlap
        delays = [_retry_delay(config, seed=9, attempts=n)
                  for n in range(1, 5)]
        assert delays == sorted(delays)
        assert delays[-1] > delays[0] * 4

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        from repro.inject.engine import _retry_delay
        config = EngineConfig(backoff_s=1.0, backoff_max_s=30.0)
        assert _retry_delay(config, 7, 3) == _retry_delay(config, 7, 3)
        # different seeds desynchronize their retry storms
        assert _retry_delay(config, 7, 3) != _retry_delay(config, 8, 3)

    def test_jitter_stays_within_half_to_full_range(self):
        from repro.inject.engine import _retry_delay
        config = EngineConfig(backoff_s=2.0, backoff_max_s=1000.0)
        for seed in range(20):
            delay = _retry_delay(config, seed, 2)  # base 4.0
            assert 2.0 <= delay < 4.0


class TestShardUnits:
    def test_shard_ids_and_seed_ranges_are_disjoint(self):
        from repro.inject.engine import (SHARD_SEED_STRIDE,
                                         shard_work_unit)
        unit = WorkUnit(unit_id="u0", kind="tally",
                        params={"seed": 5, "tag": "x"})
        shards = [shard_work_unit(unit, index, 4) for index in range(4)]
        assert [s.unit_id for s in shards] == \
            ["u0@s0", "u0@s1", "u0@s2", "u0@s3"]
        seeds = [s.params["seed"] for s in shards]
        assert seeds == [5 + i * SHARD_SEED_STRIDE for i in range(4)]
        # the stride out-runs any batch index the engine can produce
        from repro.inject.engine import _BATCH_SEED_STRIDE
        assert SHARD_SEED_STRIDE >= _BATCH_SEED_STRIDE * 4096
        assert unit.params == {"seed": 5, "tag": "x"}  # original untouched

    def test_out_of_range_shard_index_rejected(self):
        from repro.inject.engine import shard_work_unit
        unit = WorkUnit(unit_id="u0", kind="tally", params={})
        with pytest.raises(InjectionError):
            shard_work_unit(unit, 4, 4)
        with pytest.raises(InjectionError):
            shard_work_unit(unit, -1, 4)


class TestCrashIsolation:
    def test_raising_worker_is_recorded_not_fatal(self, tmp_path):
        units = [WorkUnit("ok", "tally", {"seed": 0}),
                 WorkUnit("bad", "raise", {"seed": 0}),
                 WorkUnit("ok2", "tally", {"seed": 1})]
        report = CampaignEngine(quick_config()).run(
            units, str(tmp_path / "journal.jsonl"))
        assert report.units["bad"].status == "crashed"
        assert report.units["bad"].counts["crash"] == 1
        assert "worker exploded" in report.units["bad"].detail
        # the campaign degraded gracefully: both healthy units finished
        assert report.completed == ["ok", "ok2"]
        assert report.failed == ["bad"]

    def test_hard_exit_worker_is_crashed(self):
        report = CampaignEngine(quick_config(max_retries=0)).run(
            [WorkUnit("dead", "hard-exit", {})])
        assert report.units["dead"].status == "crashed"
        assert "exit code 3" in report.units["dead"].detail

    def test_hanging_worker_times_out_as_hung(self):
        config = quick_config(timeout_s=0.5, max_retries=0)
        report = CampaignEngine(config).run(
            [WorkUnit("stuck", "hang", {})])
        assert report.units["stuck"].status == "hung"
        assert report.units["stuck"].counts["hang"] == 1

    def test_transient_failure_retried_with_backoff(self, tmp_path):
        flag = str(tmp_path / "flag")
        report = CampaignEngine(quick_config(max_batches=1)).run(
            [WorkUnit("flaky", "flaky", {"flag": flag})])
        result = report.units["flaky"]
        assert result.status == "completed"
        assert result.retries == 1
        assert result.counts["due"] == 4

    def test_retries_exhausted_means_crashed(self, tmp_path):
        report = CampaignEngine(quick_config(max_retries=2)).run(
            [WorkUnit("bad", "raise", {})])
        assert report.units["bad"].status == "crashed"
        assert report.units["bad"].retries == 2


class TestJournalResume:
    def test_finished_units_skipped_on_rerun(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        tally = str(tmp_path / "tally.txt")
        unit_a = WorkUnit("a", "tally", {"tally": tally, "tag": "a"})
        engine = CampaignEngine(quick_config())
        engine.run([unit_a], journal)
        first = open(tally).read()
        assert first.count("a:") == 2  # two batches ran

        # Re-invoking with the same journal completes the campaign
        # without re-running finished work units.
        unit_b = WorkUnit("b", "tally", {"tally": tally, "tag": "b"})
        report = engine.run([unit_a, unit_b], journal)
        second = open(tally).read()
        assert second.count("a:") == 2  # unit a did not re-run
        assert second.count("b:") == 2  # unit b ran fresh
        assert report.units["a"].resumed
        assert not report.units["b"].resumed
        assert report.units["a"].trials == 8

    def test_interrupted_unit_resumes_after_last_batch(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        tally = str(tmp_path / "tally.txt")
        unit = WorkUnit("u", "tally", {"tally": tally, "tag": "u"})
        config = quick_config(max_batches=3)
        # Simulate a campaign killed mid-unit: journal holds the start
        # record and the first batch, but no terminal record.
        with open(journal, "w") as handle:
            for record in (
                    {"type": "campaign", "version": 1},
                    {"type": "unit_started", "unit": "u", "kind": "tally",
                     "params": unit.params},
                    {"type": "batch", "unit": "u", "index": 0, "trials": 4,
                     "successes": 4, "counts": {"due": 4}, "attempts": 1}):
                handle.write(json.dumps(record) + "\n")
        report = CampaignEngine(config).run([unit], journal)
        result = report.units["u"]
        assert result.status == "completed"
        assert result.resumed
        assert result.batches == 3
        assert result.trials == 12
        # only the two missing batches actually executed
        assert open(tally).read() == "u:1\nu:2\n"

    def test_crashed_unit_outcome_survives_resume(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        units = [WorkUnit("ok", "tally", {}), WorkUnit("bad", "raise", {})]
        engine = CampaignEngine(quick_config(max_retries=0))
        engine.run(units, journal)
        report = engine.run(units, journal)
        assert report.units["bad"].resumed
        assert report.units["bad"].status == "crashed"
        assert report.units["bad"].counts["crash"] == 1
        assert report.completed == ["ok"]

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        unit = WorkUnit("a", "tally", {})
        engine = CampaignEngine(quick_config())
        engine.run([unit], journal)
        with open(journal, "a") as handle:
            handle.write('{"type": "batch", "unit": "a", "ind')  # torn
        report = engine.run([unit], journal)
        assert report.units["a"].resumed

    def test_param_mismatch_rejected(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        engine = CampaignEngine(quick_config())
        engine.run([WorkUnit("a", "tally", {"seed": 0})], journal)
        with pytest.raises(InjectionError):
            engine.run([WorkUnit("a", "tally", {"seed": 9})], journal)

    def test_duplicate_unit_ids_rejected(self):
        engine = CampaignEngine(quick_config())
        with pytest.raises(InjectionError):
            engine.run([WorkUnit("a", "tally", {}),
                        WorkUnit("a", "tally", {})])

    def test_statistical_config_change_rejected(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(quick_config(max_batches=3)).run(
            [WorkUnit("a", "tally", {})], journal)
        with pytest.raises(InjectionError, match="max_batches"):
            CampaignEngine(quick_config(max_batches=2)).run(
                [WorkUnit("a", "tally", {})], journal)

    def test_operational_config_change_allowed(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        CampaignEngine(quick_config(timeout_s=20.0)).run(
            [WorkUnit("a", "tally", {})], journal)
        report = CampaignEngine(quick_config(timeout_s=5.0,
                                             max_retries=0)).run(
            [WorkUnit("a", "tally", {})], journal)
        assert report.units["a"].resumed


class TestEarlyStopping:
    def test_sweep_ends_once_interval_is_tight(self):
        config = EngineConfig(batch_size=50, max_batches=10,
                              ci_half_width=0.05, min_trials=100,
                              timeout_s=20.0)
        report = CampaignEngine(config).run(
            [WorkUnit("fast", "zero-rate", {})])
        result = report.units["fast"]
        assert result.stopped_early
        assert result.batches == 2  # min_trials gate, then tight enough
        assert result.estimate.half_width <= 0.05

    def test_no_early_stop_without_bound(self):
        report = CampaignEngine(quick_config()).run(
            [WorkUnit("full", "zero-rate", {})])
        assert not report.units["full"].stopped_early
        assert report.units["full"].batches == 2


class TestGateUnits:
    def test_single_batch_matches_legacy_campaign(self, tmp_path):
        legacy = run_unit_campaign("fxp-add-32", sample_count=30,
                                   site_count=40, seed=5)
        config = EngineConfig(batch_size=30, max_batches=1,
                              ci_half_width=None, timeout_s=60.0)
        report = CampaignEngine(config).run(
            [gate_work_unit("fxp-add-32", site_count=40, seed=5)],
            str(tmp_path / "journal.jsonl"))
        merged = merged_gate_results(report)["fxp-add-32"]
        assert merged.sample_count == legacy.sample_count
        assert [r.site for r in merged.records] == \
            [r.site for r in legacy.records]
        assert merged.unmasked_site_counts == legacy.unmasked_site_counts

    def test_scheme_monitors_detection_rate(self, tmp_path):
        config = EngineConfig(batch_size=25, max_batches=2,
                              ci_half_width=None, timeout_s=60.0)
        report = CampaignEngine(config).run(
            [gate_work_unit("fxp-add-32", site_count=40, seed=5,
                            scheme="mod3")])
        result = report.units["fxp-add-32"]
        counts = result.counts
        assert result.trials == counts["due"] + counts["sdc"]
        assert result.successes == counts["due"]
        assert counts["due"] > 0  # mod3 catches most patterns

    def test_make_scheme_specs(self):
        assert make_scheme("mod7").code.check_bits == 3
        with pytest.raises(InjectionError):
            make_scheme("modseven")
        with pytest.raises(InjectionError):
            make_scheme("hamming-zop")


class TestGpuUnits:
    def test_fault_plan_sweep_over_kernel(self, tmp_path):
        config = EngineConfig(batch_size=6, max_batches=1,
                              ci_half_width=None, timeout_s=120.0)
        unit = gpu_work_unit("pathfinder", "swap-ecc", scale=0.2, seed=7)
        report = CampaignEngine(config).run(
            [unit], str(tmp_path / "journal.jsonl"))
        result = report.units["pathfinder/swap-ecc"]
        assert result.status == "completed"
        total = sum(result.counts[name] for name in OUTCOMES) \
            + result.counts["not_hit"]
        assert total == 6
        # swap-ecc leaves no silent corruption
        assert result.counts["sdc"] == 0

    def test_recovery_confirms_containment(self):
        config = EngineConfig(batch_size=6, max_batches=1,
                              ci_half_width=None, timeout_s=120.0,
                              isolation="inline")
        unit = gpu_work_unit("pathfinder", "swap-ecc", scale=0.2, seed=7,
                             recovery_attempts=2)
        report = CampaignEngine(config).run([unit])
        result = report.units["pathfinder/swap-ecc"]
        assert result.counts["recovered"] == result.counts["due"] \
            + result.counts["trap"]

    def test_step_exhaustion_binned_as_hang_not_crash(self):
        # A 10-step budget makes every trial livelock by fiat; the
        # watchdog verdict must land in "hang", never generic "crash".
        config = EngineConfig(batch_size=4, max_batches=1,
                              ci_half_width=None, timeout_s=120.0,
                              isolation="inline")
        unit = WorkUnit("tiny-budget", "gpu",
                        params={"workload": "pathfinder", "scale": 0.2,
                                "seed": 1, "max_steps": 10})
        report = CampaignEngine(config).run([unit])
        result = report.units["tiny-budget"]
        assert result.counts["hang"] == 4
        assert result.counts["crash"] == 0


def recovery_config(batch_size):
    return EngineConfig(batch_size=batch_size, max_batches=1,
                        ci_half_width=None, timeout_s=240.0,
                        isolation="inline")


class TestGpuRecoveryUnits:
    def test_secded_dp_corrects_storage_in_place(self):
        unit = gpu_recovery_work_unit("pathfinder", scale=0.2, seed=42,
                                      code="secded-dp", where="storage")
        report = CampaignEngine(recovery_config(12)).run([unit])
        result = report.units["pathfinder/secded-dp/storage"]
        assert result.status == "completed"
        assert result.counts["corrected_in_place"] > 0
        assert result.counts["cta_replayed"] == 0
        assert result.counts["kernel_replayed"] == 0
        assert result.counts["due"] == result.counts["sdc"] == 0
        payload = result.payloads[0]
        assert payload["replayed_instructions"] == 0  # rung 0 never replays
        assert payload["violations"] == 0

    def test_detect_only_escalates_same_storage_faults(self):
        unit = gpu_recovery_work_unit("pathfinder", scale=0.2, seed=42,
                                      code="parity", where="storage")
        report = CampaignEngine(recovery_config(12)).run([unit])
        result = report.units["pathfinder/parity/storage"]
        assert result.counts["corrected_in_place"] == 0
        assert result.counts["cta_replayed"] > 0
        payload = result.payloads[0]
        assert payload["replayed_instructions"] > 0
        assert payload["audits"] == payload["detections"] > 0
        assert payload["violations"] == 0

    def test_pipeline_faults_replay_even_under_secded_dp(self):
        unit = gpu_recovery_work_unit("pathfinder", scale=0.2, seed=42,
                                      code="secded-dp", where="result")
        report = CampaignEngine(recovery_config(12)).run([unit])
        result = report.units["pathfinder/secded-dp/result"]
        replays = result.counts["cta_replayed"] + \
            result.counts["kernel_replayed"]
        assert replays > 0
        assert result.counts["sdc"] == 0
        assert result.payloads[0]["violations"] == 0

    def test_persistent_fault_exhausts_ladder_to_due(self):
        unit = gpu_recovery_work_unit("pathfinder", scale=0.2, seed=7,
                                      code="parity", where="storage",
                                      persistent=True)
        report = CampaignEngine(recovery_config(6)).run([unit])
        result = report.units["pathfinder/parity/storage"]
        assert result.status == "completed"  # bounded: never hangs the unit
        assert result.counts["due"] > 0
        assert result.successes == 0 or result.counts["due"] < result.trials

    def test_recovery_coverage_fractions_sum_to_one(self):
        unit = gpu_recovery_work_unit("pathfinder", scale=0.2, seed=42,
                                      code="parity", where="result")
        report = CampaignEngine(recovery_config(12)).run([unit])
        coverage = recovery_coverage(
            report.units["pathfinder/parity/result"].counts)
        assert set(coverage) == set(RECOVERY_CLASSES)
        assert sum(coverage.values()) == pytest.approx(1.0)

    def test_empty_counts_give_zero_coverage(self):
        assert set(recovery_coverage({}).values()) == {0.0}


class TestJournalFsyncPlumbing:
    def test_engine_config_fsync_reaches_journal(self, tmp_path,
                                                 monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        config = quick_config(isolation="inline", journal_fsync=True)
        CampaignEngine(config).run([WorkUnit("a", "tally", {})],
                                   str(tmp_path / "journal.jsonl"))
        assert synced

    def test_run_full_campaign_plumbs_fsync(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        results = run_full_campaign(
            sample_count=8, site_count=6, units=("fxp-add-32",),
            journal_path=str(tmp_path / "journal.jsonl"),
            journal_fsync=True,
            engine_config=quick_config(isolation="inline", batch_size=8,
                                       max_batches=1))
        assert "fxp-add-32" in results
        assert synced


class TestInlineIsolation:
    def test_inline_mode_runs_and_catches_errors(self):
        config = quick_config(isolation="inline")
        report = CampaignEngine(config).run(
            [WorkUnit("ok", "tally", {}), WorkUnit("bad", "raise", {})])
        assert report.units["ok"].status == "completed"
        assert report.units["bad"].status == "crashed"


@pytest.mark.slow
class TestBenchmarkScale:
    def test_six_unit_campaign_with_early_stopping(self, tmp_path):
        config = EngineConfig(batch_size=100, max_batches=10,
                              ci_half_width=0.03, min_trials=200,
                              timeout_s=600.0)
        units = [gate_work_unit(name, site_count=100, seed=index,
                                scheme="mod3")
                 for index, name in enumerate(
                     ("fxp-add-32", "fxp-mad-32", "fp-add-32"))]
        report = CampaignEngine(config).run(
            units, str(tmp_path / "journal.jsonl"))
        assert not report.failed
        for result in report.units.values():
            assert result.estimate.half_width <= 0.03 or \
                result.batches == 10


class TestSalvagedRecordsSurface:
    def test_salvage_count_reaches_campaign_report(self, tmp_path):
        """A corrupt journal resumed with salvage=True reports exactly
        how many journal records the truncation cost."""
        journal = str(tmp_path / "journal.jsonl")
        unit = WorkUnit("u", "tally", {})
        with open(journal, "w") as handle:
            for record in (
                    {"type": "campaign", "version": 1},
                    {"type": "unit_started", "unit": "u", "kind": "tally",
                     "params": unit.params},
                    {"type": "batch", "unit": "u", "index": 0, "trials": 4,
                     "successes": 4, "counts": {"due": 4}, "attempts": 1}):
                handle.write(json.dumps(record) + "\n")
            handle.write("<<not json>>\n")
            handle.write(json.dumps(
                {"type": "batch", "unit": "u", "index": 1, "trials": 4,
                 "successes": 4, "counts": {"due": 4},
                 "attempts": 1}) + "\n")
        report = CampaignEngine(quick_config(
            max_batches=3, salvage=True)).run([unit], journal)
        # the garbage line and the batch after it were both dropped
        assert report.salvaged_records == 2
        assert len(report.salvage_events) == 1
        assert report.salvage_events[0]["last_good_rix"] == 2
        # the dropped batch was re-derived, not lost
        assert report.units["u"].status == "completed"
        assert report.units["u"].trials == 12

    def test_clean_run_reports_zero_salvaged(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        report = CampaignEngine(quick_config()).run(
            [WorkUnit("u", "tally", {})], journal)
        assert report.salvaged_records == 0
        assert report.salvage_events == []
