"""Tests for lease lifecycle, fencing tokens, heartbeats, and rebase."""

import json
import os
import time

import pytest

from repro.errors import FabricError, LeaseExpired, StaleFencingToken
from repro.inject.journal import Journal, JournalState
from repro.inject.lease import LeaseTable, rebase_journal
from repro.inject.supervisor import LeaseHeartbeat, read_heartbeat


class TestLeaseTable:
    def test_grant_increments_fencing_token(self):
        table = LeaseTable(ttl_s=5.0)
        assert table.token("shard-000") == 0
        first = table.grant("shard-000")
        assert first.token == 1 and first.active
        table.expire("shard-000", "holder died")
        second = table.grant("shard-000")
        assert second.token == 2
        assert table.token("shard-000") == 2

    def test_stale_token_cannot_complete(self):
        # the fencing rule: a superseded holder finishing late is refused
        table = LeaseTable(ttl_s=5.0)
        old = table.grant("shard-000")
        table.expire("shard-000", "TTL lapsed")
        new = table.grant("shard-000")
        with pytest.raises(StaleFencingToken, match="superseded"):
            table.complete("shard-000", old.token)
        table.complete("shard-000", new.token)
        assert table.completed("shard-000")

    def test_expired_lease_cannot_complete_or_renew(self):
        table = LeaseTable(ttl_s=5.0)
        lease = table.grant("shard-000")
        table.expire("shard-000", "no heartbeat")
        with pytest.raises(LeaseExpired, match="no heartbeat"):
            table.complete("shard-000", lease.token)
        with pytest.raises(LeaseExpired):
            table.renew("shard-000", lease.token, beat_count=3)

    def test_completed_shard_cannot_be_regranted_or_expired(self):
        table = LeaseTable(ttl_s=5.0)
        lease = table.grant("shard-000")
        table.complete("shard-000", lease.token)
        with pytest.raises(FabricError, match="refusing to re-grant"):
            table.grant("shard-000")
        with pytest.raises(FabricError, match="already completed"):
            table.expire("shard-000")

    def test_only_advancing_beats_reset_the_ttl(self):
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant("shard-000")
        start = lease.last_beat
        table.renew("shard-000", lease.token, beat_count=2, now=start + 0.5)
        assert lease.last_beat == start + 0.5
        # a *repeated* beat counter is a frozen holder, not liveness
        table.renew("shard-000", lease.token, beat_count=2, now=start + 9.0)
        assert lease.last_beat == start + 0.5
        assert table.expired_shards(now=start + 2.0) == ["shard-000"]

    def test_grant_over_active_lease_expires_it(self):
        table = LeaseTable(ttl_s=5.0)
        old = table.grant("shard-000")
        new = table.grant("shard-000")
        assert not old.active and old.reason == "superseded by re-grant"
        assert new.active and new.token == old.token + 1

    def test_unknown_shard_operations_fail_loudly(self):
        table = LeaseTable(ttl_s=5.0)
        with pytest.raises(FabricError, match="no lease was ever granted"):
            table.complete("shard-404", 1)
        with pytest.raises(FabricError, match="no lease was ever granted"):
            table.expire("shard-404")


class TestReplay:
    def test_replayed_active_lease_loads_expired(self):
        # a restarted coordinator never trusts liveness clocks it
        # didn't observe: in-flight leases are re-granted under token+1
        table = LeaseTable(ttl_s=5.0)
        table.apply_record({"type": "lease_granted", "shard": "shard-000",
                            "token": 3, "ttl_s": 5.0})
        lease = table.current("shard-000")
        assert not lease.active and lease.reason == "coordinator restart"
        assert table.token("shard-000") == 3
        assert table.grant("shard-000").token == 4

    def test_replayed_completion_sticks(self):
        table = LeaseTable(ttl_s=5.0)
        table.apply_record({"type": "lease_granted", "shard": "shard-000",
                            "token": 2, "ttl_s": 5.0})
        table.apply_record({"type": "lease_completed",
                            "shard": "shard-000", "token": 2})
        assert table.completed("shard-000")

    def test_replayed_pause_allows_regrant(self):
        table = LeaseTable(ttl_s=5.0)
        table.apply_record({"type": "lease_granted", "shard": "shard-000",
                            "token": 1, "ttl_s": 5.0})
        table.apply_record({"type": "lease_paused", "shard": "shard-000",
                            "token": 1})
        lease = table.current("shard-000")
        assert not lease.active and lease.reason == "paused"
        assert table.grant("shard-000").token == 2


class TestLeaseHeartbeat:
    def test_beats_advance_and_carry_the_token(self, tmp_path):
        path = str(tmp_path / "hb")
        with LeaseHeartbeat(path, token=7, interval_s=0.02):
            deadline = time.time() + 5.0
            while time.time() < deadline:
                beat = read_heartbeat(path)
                if beat is not None and beat["beat"] >= 3:
                    break
                time.sleep(0.01)
        beat = read_heartbeat(path)
        assert beat["token"] == 7
        assert beat["beat"] >= 3
        assert beat["pid"] == os.getpid()

    def test_missing_or_garbage_heartbeat_reads_none(self, tmp_path):
        assert read_heartbeat(str(tmp_path / "absent")) is None
        garbled = tmp_path / "garbled"
        garbled.write_text("not json{")
        assert read_heartbeat(str(garbled)) is None

    def test_vanished_directory_does_not_kill_the_holder(self, tmp_path):
        fabric = tmp_path / "fabric"
        fabric.mkdir()
        beat = LeaseHeartbeat(str(fabric / "hb"), token=1, interval_s=0.01)
        beat.start()
        try:
            (fabric / "hb").unlink(missing_ok=True)
            for item in fabric.iterdir():
                item.unlink()
            fabric.rmdir()
            time.sleep(0.05)  # loop keeps running through OSErrors
        finally:
            beat.stop()


class TestRebase:
    def _journal(self, path, header, records):
        journal = Journal(str(path), header=header)
        for record in records:
            journal.append(dict(record))
        journal.close()

    def test_rebase_carries_batches_first_wins(self, tmp_path):
        batch = {"type": "batch", "unit": "u0", "index": 0, "trials": 4,
                 "successes": 1, "counts": {"detected": 1, "masked": 3}}
        self._journal(tmp_path / "a.jsonl", {"shard": "s", "token": 1},
                      [{"type": "unit_started", "unit": "u0",
                        "kind": "toy", "params": {"seed": 0}}, batch,
                       {"type": "campaign_paused", "reason": "killed"}])
        self._journal(tmp_path / "b.jsonl", {"shard": "s", "token": 2},
                      [{"type": "unit_started", "unit": "u0",
                        "kind": "toy", "params": {"seed": 0}}, batch])
        dest = tmp_path / "c.jsonl"
        carried = rebase_journal(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
            str(dest), header={"shard": "s", "token": 3})
        assert carried == 2  # unit_started + batch, deduped, no pauses
        state = JournalState.load(str(dest))
        assert state.header["token"] == 3
        assert [r["index"] for r in state.batches["u0"]] == [0]
        assert state.pauses == []

    def test_rebase_survives_torn_source_tail(self, tmp_path):
        batch = {"type": "batch", "unit": "u0", "index": 0, "trials": 4,
                 "successes": 1, "counts": {"detected": 1}}
        source = tmp_path / "a.jsonl"
        self._journal(source, {"shard": "s", "token": 1},
                      [{"type": "unit_started", "unit": "u0",
                        "kind": "toy", "params": {}}, batch])
        with open(source, "a") as handle:
            handle.write('{"type": "batch", "unit": "u0", "ind')  # torn
        dest = tmp_path / "b.jsonl"
        carried = rebase_journal([str(source)], str(dest),
                                 header={"shard": "s", "token": 2})
        assert carried == 2
        state = JournalState.load(str(dest))
        assert state.corrupt_lines == 0  # fresh CRC/rix chain

    def test_rebase_with_no_sources_writes_header_only(self, tmp_path):
        dest = tmp_path / "fresh.jsonl"
        carried = rebase_journal([str(tmp_path / "ghost.jsonl")],
                                 str(dest), header={"shard": "s",
                                                    "token": 1})
        assert carried == 0
        with open(dest) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["shard"] == "s"
