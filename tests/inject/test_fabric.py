"""Fabric tests: leased shards, work stealing, chaos, global early-stop."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import FabricConfigError, FabricError
from repro.inject.engine import EngineConfig
from repro.inject.fabric import (CampaignFabric, FabricConfig,
                                 run_fabric_campaign)
from repro.inject.merge import fabric_journal_paths

from tests.inject.fabric_driver import toy_config, toy_units

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _merged_bytes(fabric_dir):
    with open(os.path.join(fabric_dir, "merged_report.json"), "rb") as fh:
        return fh.read()


def _coordinator_records(fabric_dir):
    records = []
    with open(os.path.join(fabric_dir, "coordinator.jsonl")) as handle:
        for line in handle:
            records.append(json.loads(line))
    return records


def _run_in_thread(fabric):
    """Run a fabric off the main thread; returns (thread, result dict)."""
    result = {}

    def target():
        try:
            result["report"] = fabric.run()
        except BaseException as exc:  # re-raised by the test
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, result


def _first_shard_process(fabric, deadline_s=30.0):
    """Wait until some shard process is running and return (shard, proc)."""
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        for shard, process in sorted(fabric.processes.items()):
            if process.pid is not None and process.is_alive():
                return shard, process
        time.sleep(0.01)
    raise AssertionError("no shard process appeared")


class TestFabricBasics:
    def test_partitioned_campaign_completes(self, tmp_path):
        fabric_dir = str(tmp_path / "fab")
        report = run_fabric_campaign(toy_units(4), fabric_dir,
                                     toy_config(shards=2))
        assert not report.paused and not report.stopped_globally
        assert set(report.shard_status.values()) == {"completed"}
        assert {unit.status for unit in report.report.units.values()} == \
            {"completed"}
        assert report.report.units["u0"].trials == 120  # 6 batches of 20
        kinds = [record["type"]
                 for record in _coordinator_records(fabric_dir)]
        assert kinds[-1] == "fabric_done"
        assert os.path.exists(os.path.join(fabric_dir,
                                           "merged_report.json"))

    def test_replicated_mode_pools_disjoint_seed_ranges(self, tmp_path):
        report = run_fabric_campaign(
            toy_units(1), str(tmp_path / "fab"),
            toy_config(shards=2, mode="replicate"))
        assert set(report.report.units) == {"u0@s0", "u0@s1"}
        assert report.estimate.trials == 240  # both replicas pooled

    def test_rerunning_a_finished_fabric_is_idempotent(self, tmp_path):
        fabric_dir = str(tmp_path / "fab")
        run_fabric_campaign(toy_units(4), fabric_dir, toy_config(shards=2))
        first = _merged_bytes(fabric_dir)
        report = run_fabric_campaign(toy_units(4), fabric_dir,
                                     toy_config(shards=2))
        assert _merged_bytes(fabric_dir) == first
        assert set(report.shard_status.values()) == {"completed"}

    def test_twin_fabrics_are_byte_identical(self, tmp_path):
        for name in ("a", "b"):
            run_fabric_campaign(toy_units(4), str(tmp_path / name),
                                toy_config(shards=2))
        assert _merged_bytes(str(tmp_path / "a")) == \
            _merged_bytes(str(tmp_path / "b"))

    def test_changed_plan_is_refused(self, tmp_path):
        fabric_dir = str(tmp_path / "fab")
        run_fabric_campaign(toy_units(4), fabric_dir, toy_config(shards=2))
        with pytest.raises(FabricError, match="planned with shards"):
            run_fabric_campaign(toy_units(6), fabric_dir,
                                toy_config(shards=2))

    def test_duplicate_unit_ids_are_rejected(self, tmp_path):
        units = toy_units(2) + toy_units(1)
        with pytest.raises(FabricError, match="duplicate unit ids"):
            CampaignFabric(units, str(tmp_path / "fab"),
                           toy_config(shards=2))

    def test_bad_config_knobs_are_rejected(self):
        with pytest.raises(FabricError, match="shards"):
            FabricConfig(shards=0)
        with pytest.raises(FabricError, match="heartbeat_interval_s"):
            FabricConfig(lease_ttl_s=1.0, heartbeat_interval_s=2.0)
        with pytest.raises(FabricError, match="mode"):
            FabricConfig(mode="scatter")
        with pytest.raises(FabricError, match="global_ci_half_width"):
            FabricConfig(global_ci_half_width=-0.1)

    def test_config_errors_are_typed_and_non_transient(self):
        # misconfiguration is its own error class — callers can tell a
        # bad knob (fix the config) from a runtime fabric failure
        # (inspect the journals) without parsing messages
        assert issubclass(FabricConfigError, FabricError)
        with pytest.raises(FabricConfigError) as excinfo:
            FabricConfig(shards=0)
        assert excinfo.value.code == "inject.fabric_config"
        assert excinfo.value.severity == "config"
        assert excinfo.value.recoverable is False

    def test_nonpositive_ttl_with_stealing_names_the_self_steal(self):
        with pytest.raises(FabricConfigError, match="self-steal"):
            FabricConfig(lease_ttl_s=0.0, steal=True)
        # without stealing the TTL is still rejected, but the message
        # does not warn about steals that cannot happen
        with pytest.raises(FabricConfigError) as excinfo:
            FabricConfig(lease_ttl_s=-1.0, steal=False)
        assert "self-steal" not in str(excinfo.value)

    def test_ttl_heartbeat_safety_factor_boundary(self):
        # 4x the heartbeat is the floor: exactly 4x is accepted, a
        # hair under is refused
        FabricConfig(lease_ttl_s=0.4, heartbeat_interval_s=0.1)
        with pytest.raises(FabricConfigError, match="at least"):
            FabricConfig(lease_ttl_s=0.39, heartbeat_interval_s=0.1)


class TestChaos:
    def test_shard_sigkill_mid_lease_is_count_identical(self, tmp_path):
        """The headline guarantee: SIGKILL one of 4 shards mid-lease and
        the stolen, rebased, merged campaign is byte-identical to an
        undisturbed same-seed run."""
        units = toy_units(8, delay=0.05)
        config = toy_config(shards=4, lease_ttl_s=1.5, batch_size=10,
                            max_batches=4)
        undisturbed_dir = str(tmp_path / "undisturbed")
        run_fabric_campaign(toy_units(8, delay=0.05), undisturbed_dir,
                            toy_config(shards=4, lease_ttl_s=1.5,
                                       batch_size=10, max_batches=4))

        chaos_dir = str(tmp_path / "chaos")
        fabric = CampaignFabric(units, chaos_dir, config)
        thread, result = _run_in_thread(fabric)
        victim, process = _first_shard_process(fabric)
        time.sleep(0.3)  # let it journal a batch or two first
        os.kill(process.pid, signal.SIGKILL)
        thread.join(120)
        assert "error" not in result, result.get("error")
        report = result["report"]
        assert set(report.shard_status.values()) == {"completed"}
        # the victim's lease really was stolen: a second grant exists
        assert os.path.exists(
            os.path.join(chaos_dir, f"{victim}.lease-002.jsonl"))
        expiries = [record for record
                    in _coordinator_records(chaos_dir)
                    if record["type"] == "lease_expired"]
        assert any(record["shard"] == victim for record in expiries)
        assert _merged_bytes(chaos_dir) == _merged_bytes(undisturbed_dir)

    def test_lost_lease_with_steal_disabled_fails_the_fabric(
            self, tmp_path):
        fabric = CampaignFabric(
            toy_units(4, delay=0.1), str(tmp_path / "fab"),
            toy_config(shards=2, lease_ttl_s=1.0, steal=False,
                       max_batches=4))
        thread, result = _run_in_thread(fabric)
        __, process = _first_shard_process(fabric)
        os.kill(process.pid, signal.SIGKILL)
        thread.join(60)
        assert isinstance(result.get("error"), FabricError)
        assert "steal" in str(result["error"])

    def test_global_early_stop_drains_every_shard(self, tmp_path):
        fabric_dir = str(tmp_path / "fab")
        report = run_fabric_campaign(
            toy_units(4, delay=0.05), fabric_dir,
            toy_config(shards=4, batch_size=40, max_batches=200,
                       global_ci_half_width=0.04,
                       global_min_trials=200))
        assert report.stopped_globally and not report.paused
        assert {unit.status for unit in report.report.units.values()} == \
            {"completed"}
        assert all(unit.stopped_early
                   for unit in report.report.units.values())
        # the drain broadcast reached *every* shard: each journal chain
        # ends in a campaign_paused record
        drained_shards = set()
        for path in fabric_journal_paths(fabric_dir):
            with open(path) as handle:
                for line in handle:
                    if json.loads(line).get("type") == "campaign_paused":
                        drained_shards.add(
                            os.path.basename(path).split(".")[0])
        assert drained_shards == set(report.shard_status)
        kinds = [record["type"]
                 for record in _coordinator_records(fabric_dir)]
        assert "global_stop" in kinds

    def test_programmatic_drain_pauses_and_resume_finishes(self, tmp_path):
        fabric_dir = str(tmp_path / "fab")
        units = toy_units(8, delay=0.1)
        config = toy_config(shards=2, batch_size=10, max_batches=6)
        fabric = CampaignFabric(units, fabric_dir, config)
        thread, result = _run_in_thread(fabric)
        _first_shard_process(fabric)
        fabric.request_drain("test interruption")
        thread.join(60)
        assert "error" not in result, result.get("error")
        assert result["report"].paused
        # resuming against the same dir finishes the remaining work —
        # but only after the drain broadcast is lifted
        os.remove(os.path.join(fabric_dir, "drain"))
        resumed = run_fabric_campaign(units, fabric_dir, config)
        assert not resumed.paused
        assert set(resumed.shard_status.values()) == {"completed"}
        twin_dir = str(tmp_path / "twin")
        run_fabric_campaign(toy_units(8, delay=0.1), twin_dir, config)
        assert _merged_bytes(fabric_dir) == _merged_bytes(twin_dir)


@pytest.mark.slow
class TestCoordinatorCrash:
    """The full acceptance scenario: shard *and* coordinator SIGKILL."""

    def _driver(self, fabric_dir, seed):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.Popen(
            [sys.executable, "-m", "tests.inject.fabric_driver",
             "--fabric-dir", fabric_dir, "--shards", "4",
             "--units", "8", "--seed", str(seed), "--delay", "0.05",
             "--batch-size", "10", "--batches", "6",
             "--lease-ttl", "2.0"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)

    def _wait_for_progress(self, fabric_dir, min_bytes=400,
                           deadline_s=60.0):
        """Block until some lease journal holds durable batch records."""
        deadline = time.time() + deadline_s
        while time.time() < deadline:
            sizes = [os.path.getsize(path)
                     for path in fabric_journal_paths(fabric_dir)]
            if sizes and max(sizes) >= min_bytes:
                return
            time.sleep(0.05)
        raise AssertionError("fabric made no journal progress")

    def _shard_pid(self, fabric_dir, deadline_s=60.0):
        deadline = time.time() + deadline_s
        while time.time() < deadline:
            for name in sorted(os.listdir(fabric_dir)):
                if not name.endswith(".heartbeat"):
                    continue
                try:
                    with open(os.path.join(fabric_dir, name)) as handle:
                        return json.load(handle)["pid"]
                except (OSError, ValueError, KeyError):
                    continue
            time.sleep(0.05)
        raise AssertionError("no shard heartbeat appeared")

    def test_sigkilled_shard_and_coordinator_resume_byte_identical(
            self, tmp_path):
        seed = int(os.environ.get("REPRO_STRESS_SEED", "0"))
        undisturbed_dir = str(tmp_path / "undisturbed")
        twin = self._driver(undisturbed_dir, seed)
        assert twin.wait(300) == 0, twin.stdout.read()

        chaos_dir = str(tmp_path / "chaos")
        coordinator = self._driver(chaos_dir, seed)
        try:
            self._wait_for_progress(chaos_dir)
            os.kill(self._shard_pid(chaos_dir), signal.SIGKILL)
            time.sleep(0.5)  # let the kill land mid-lease
            coordinator.kill()
            coordinator.wait(60)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait(60)

        resumed = self._driver(chaos_dir, seed)
        output = resumed.stdout.read()
        assert resumed.wait(300) == 0, output
        assert "FABRIC_DONE paused=False" in output
        assert _merged_bytes(chaos_dir) == _merged_bytes(undisturbed_dir)
        # the coordinator journal proves the crash story: grants under
        # higher fencing tokens after the restart
        tokens = {}
        for record in _coordinator_records(chaos_dir):
            if record["type"] == "lease_granted":
                tokens[record["shard"]] = max(
                    tokens.get(record["shard"], 0), record["token"])
        assert max(tokens.values()) >= 2
