"""Tests for the hardened campaign supervisor: budgets, quarantine, drains."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import InjectionError
from repro.inject import (CampaignEngine, CampaignSupervisor, EngineConfig,
                          ResourceBudget, SupervisorConfig, WorkUnit,
                          register_unit_kind)
from repro.inject.journal import JournalState
from repro.inject.supervisor import coerce_supervisor

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _ok_runner(params, context, batch):
    return {"trials": batch.size, "successes": 0,
            "counts": {"masked": batch.size}}


def _slow_runner(params, context, batch):
    time.sleep(params.get("delay", 0.25))
    return {"trials": batch.size, "successes": 1,
            "counts": {"due": 1, "masked": batch.size - 1}}


def _poison_runner(params, context, batch):
    raise RuntimeError("poison pill strikes again")


def _memory_hog_runner(params, context, batch):
    hoard = bytearray(64 * 1024 * 1024 * 1024)  # far beyond any budget
    return {"trials": len(hoard), "successes": 0, "counts": {}}


def _cpu_spin_runner(params, context, batch):
    while True:
        pass


def _freeze_runner(params, context, batch):
    os.kill(os.getpid(), signal.SIGSTOP)  # heartbeats stop with the process
    return {"trials": batch.size, "successes": 0, "counts": {}}


def _third_try_runner(params, context, batch):
    """Fails twice (tracked by flag files), then succeeds."""
    root = params["dir"]
    tries = len(os.listdir(root))
    if tries < 2:
        open(os.path.join(root, f"try{tries}"), "w").close()
        raise RuntimeError(f"transient failure {tries}")
    return {"trials": batch.size, "successes": 0,
            "counts": {"masked": batch.size}}


for _kind, _runner in (("sup-ok", _ok_runner), ("sup-slow", _slow_runner),
                       ("sup-poison", _poison_runner),
                       ("sup-hog", _memory_hog_runner),
                       ("sup-spin", _cpu_spin_runner),
                       ("sup-freeze", _freeze_runner),
                       ("sup-third-try", _third_try_runner)):
    register_unit_kind(_kind, _runner, replace=True)


def quick_config(**overrides):
    defaults = dict(batch_size=4, max_batches=2, timeout_s=30.0,
                    max_retries=1, backoff_s=0.01, ci_half_width=None)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def supervisor(**overrides):
    return CampaignSupervisor(SupervisorConfig(**overrides))


class TestConfigValidation:
    def test_bad_supervisor_knobs_rejected(self):
        for overrides in ({"quarantine_after": 0},
                          {"drain_deadline_s": 0.0}):
            with pytest.raises(InjectionError):
                SupervisorConfig(**overrides)

    def test_bad_budget_knobs_rejected(self):
        for overrides in ({"max_rss_mb": 0}, {"max_cpu_s": -1.0},
                          {"heartbeat_interval_s": 0.0},
                          {"heartbeat_timeout_s": 0.01,
                           "heartbeat_interval_s": 0.05}):
            with pytest.raises(InjectionError):
                ResourceBudget(**overrides)

    def test_coerce_supervisor_forms(self):
        assert coerce_supervisor(False) is None
        built = coerce_supervisor(None)
        assert isinstance(built, CampaignSupervisor)
        config = SupervisorConfig(quarantine_after=2)
        assert coerce_supervisor(config).config is config
        existing = CampaignSupervisor()
        assert coerce_supervisor(existing) is existing
        with pytest.raises(InjectionError):
            coerce_supervisor("yes please")


def _vmsize_mb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) // 1024
    except OSError:
        pass
    return 0


class TestResourceGovernance:
    def test_memory_hog_binned_resource_exhausted(self):
        # RLIMIT_AS caps *virtual* address space and a forked worker
        # inherits this process's mappings, so the budget must clear the
        # test runner's own footprint (which grows with whatever ran
        # earlier in the suite) — a cap below it kills the worker at
        # bootstrap, binning "hung" instead of exercising the hog
        sup = supervisor(budget=ResourceBudget(
            max_rss_mb=_vmsize_mb() + 512), quarantine_after=None)
        report = sup.run([WorkUnit("hog", "sup-hog", {})], None,
                         quick_config(max_retries=0))
        result = report.units["hog"]
        assert result.status == "resource_exhausted"
        assert result.counts["resource_exhausted"] == 1
        assert result.counts["crash"] == 0
        assert "MemoryError" in result.detail

    def test_cpu_spinner_binned_resource_exhausted(self):
        sup = supervisor(budget=ResourceBudget(max_cpu_s=1),
                         quarantine_after=None)
        report = sup.run([WorkUnit("spin", "sup-spin", {})], None,
                         quick_config(max_retries=0, timeout_s=60.0))
        result = report.units["spin"]
        assert result.status == "resource_exhausted"
        assert result.counts["resource_exhausted"] == 1
        assert "CPU budget" in result.detail or "SIGXCPU" in result.detail

    def test_stopped_heartbeat_binned_resource_exhausted(self):
        sup = supervisor(budget=ResourceBudget(heartbeat_timeout_s=0.5),
                         quarantine_after=None)
        report = sup.run([WorkUnit("frozen", "sup-freeze", {})], None,
                         quick_config(max_retries=0, timeout_s=60.0))
        result = report.units["frozen"]
        assert result.status == "resource_exhausted"
        assert "heartbeat" in result.detail

    def test_healthy_worker_unaffected_by_budget(self):
        sup = supervisor(budget=ResourceBudget(
            max_rss_mb=16384, max_cpu_s=120, heartbeat_timeout_s=10.0))
        report = sup.run([WorkUnit("fine", "sup-ok", {})], None,
                         quick_config())
        assert report.units["fine"].status == "completed"
        assert report.units["fine"].trials == 8


class TestQuarantine:
    def test_poison_unit_quarantined_siblings_complete(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        units = [WorkUnit("ok1", "sup-ok", {}),
                 WorkUnit("poison", "sup-poison", {}),
                 WorkUnit("ok2", "sup-ok", {})]
        sup = supervisor(quarantine_after=3)
        report = sup.run(units, journal, quick_config())
        assert report.units["poison"].status == "quarantined"
        assert report.quarantined == ["poison"]
        assert report.completed == ["ok1", "ok2"]
        # the dead-letter record carries the captured tracebacks,
        # final one included
        failures = report.units["poison"].failures
        assert len(failures) == 3
        assert "poison pill strikes again" in failures[-1]["detail"]
        assert "RuntimeError" in failures[-1]["traceback"]
        records = [json.loads(line) for line in open(journal)]
        dead_letters = [r for r in records
                        if r["type"] == "unit_quarantined"]
        assert len(dead_letters) == 1
        assert dead_letters[0]["unit"] == "poison"
        assert "RuntimeError" in dead_letters[0]["failures"][-1]["traceback"]

    def test_quarantined_unit_stays_dead_on_resume(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        units = [WorkUnit("poison", "sup-poison", {}),
                 WorkUnit("ok", "sup-ok", {})]
        sup = supervisor(quarantine_after=2)
        sup.run(units, journal, quick_config())
        report = sup.run(units, journal, quick_config())
        assert report.units["poison"].status == "quarantined"
        assert report.units["poison"].resumed
        assert "RuntimeError" in \
            report.units["poison"].failures[-1]["traceback"]

    def test_success_resets_failure_streak(self, tmp_path):
        flags = tmp_path / "flags"
        flags.mkdir()
        sup = supervisor(quarantine_after=3)
        report = sup.run(
            [WorkUnit("flaky", "sup-third-try", {"dir": str(flags)})],
            None, quick_config(max_retries=2, max_batches=1))
        result = report.units["flaky"]
        assert result.status == "completed"
        assert result.retries == 2
        assert len(result.failures) == 2  # both kept for forensics

    def test_unsupervised_engine_still_crashes_not_quarantines(self):
        report = CampaignEngine(quick_config()).run(
            [WorkUnit("poison", "sup-poison", {})])
        assert report.units["poison"].status == "crashed"
        assert report.quarantined == []


class TestSignalSafeDrain:
    def test_request_drain_pauses_between_units(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        sup = supervisor()
        units = [WorkUnit("u0", "sup-ok", {}), WorkUnit("u1", "sup-ok", {})]
        sup.request_drain("test says stop")
        report = sup.run(units, journal, quick_config())
        assert report.paused
        assert report.drain_reason == "test says stop"
        assert report.pending == ["u0", "u1"]
        state = JournalState.load(journal)
        assert len(state.pauses) == 1
        assert state.pauses[0]["pending"] == ["u0", "u1"]

    def test_drain_deadline_kills_in_flight_batch(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        sup = supervisor(drain_deadline_s=0.3)
        unit = WorkUnit("slow", "sup-slow", {"delay": 30.0})
        timer = threading.Timer(0.4, sup.request_drain, ("deadline test",))
        timer.start()
        started = time.monotonic()
        report = sup.run([unit], journal, quick_config(timeout_s=120.0))
        elapsed = time.monotonic() - started
        assert report.paused
        assert report.units["slow"].status == "paused"
        assert elapsed < 10.0  # did not wait out the 30s batch
        # the killed batch left no journal record: resume re-derives it
        assert JournalState.load(journal).batches.get("slow") is None

    def test_sigterm_drains_and_resume_matches_uninterrupted(self, tmp_path):
        """Acceptance: SIGTERM mid-unit + resume == uninterrupted counts."""
        config = quick_config(batch_size=5, max_batches=3, timeout_s=60.0)
        units = lambda: [WorkUnit(f"u{i}", "sup-slow",
                                  {"seed": i, "delay": 0.2})
                         for i in range(3)]
        baseline = CampaignEngine(config).run(
            units(), str(tmp_path / "baseline.jsonl"))
        assert not baseline.paused

        journal = str(tmp_path / "interrupted.jsonl")
        sup = supervisor(drain_deadline_s=10.0)
        timer = threading.Timer(
            0.5, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        interrupted = sup.run(units(), journal, config)
        assert interrupted.paused
        assert interrupted.drain_reason == "signal SIGTERM"
        assert len(JournalState.load(journal).pauses) == 1

        resumed = CampaignSupervisor().run(units(), journal, config)
        assert not resumed.paused
        assert resumed.total_counts() == baseline.total_counts()

    def test_supervisor_restores_previous_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        sup = supervisor()
        with sup:
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before


_DRIVER = """\
import json, sys, time
sys.path.insert(0, {src!r})
from repro.inject.engine import (CampaignEngine, EngineConfig, WorkUnit,
                                 register_unit_kind)
from repro.inject.supervisor import CampaignSupervisor, SupervisorConfig


def slow_runner(params, context, batch):
    time.sleep(0.2)
    return {{"trials": batch.size, "successes": 1,
             "counts": {{"due": 1, "masked": batch.size - 1}}}}


register_unit_kind("sig-slow", slow_runner, replace=True)

journal = sys.argv[1]
units = [WorkUnit(f"u{{i}}", "sig-slow", {{"seed": i}}) for i in range(3)]
config = EngineConfig(batch_size=5, max_batches=4, ci_half_width=None,
                      timeout_s=60.0)
supervisor = CampaignSupervisor(SupervisorConfig(drain_deadline_s=15.0))
print("STARTED", flush=True)
report = supervisor.run(units, journal, config)
print("PAUSED" if report.paused else "DONE",
      json.dumps(report.total_counts(), sort_keys=True), flush=True)
"""


@pytest.mark.slow
class TestSignalRobustnessEndToEnd:
    """A real process SIGTERMed mid-unit, then resumed (the CI job)."""

    def _run_driver(self, script, journal, kill_after=None):
        process = subprocess.Popen(
            [sys.executable, script, journal],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        assert process.stdout.readline().strip() == "STARTED"
        if kill_after is not None:
            time.sleep(kill_after)
            process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=120)
        assert process.returncode == 0, err
        verdict, __, counts = out.strip().partition(" ")
        return verdict, json.loads(counts)

    def test_sigterm_mid_unit_then_clean_resume(self, tmp_path):
        script = str(tmp_path / "driver.py")
        with open(script, "w") as handle:
            handle.write(_DRIVER.format(src=SRC))

        baseline_verdict, baseline = self._run_driver(
            script, str(tmp_path / "baseline.jsonl"))
        assert baseline_verdict == "DONE"

        journal = str(tmp_path / "interrupted.jsonl")
        verdict, partial = self._run_driver(script, journal,
                                            kill_after=0.7)
        assert verdict == "PAUSED"
        state = JournalState.load(journal)
        assert len(state.pauses) == 1
        assert sum(partial.values()) < sum(baseline.values())

        verdict, resumed = self._run_driver(script, journal)
        assert verdict == "DONE"
        assert resumed == baseline
