"""Chaos-test driver: run one toy campaign on the distributed fabric.

The coordinator-crash tests need a coordinator they can SIGKILL from
outside, so this module is runnable as a process of its own::

    PYTHONPATH=src python -m tests.inject.fabric_driver \
        --fabric-dir /tmp/fab --shards 4

It registers a deterministic toy unit kind, runs (or resumes) the
fabric, and prints one ``FABRIC_DONE`` line on success.  Everything
about the campaign is a pure function of the CLI arguments, so two
drivers pointed at different fabric dirs are same-seed twins.
"""

import argparse
import random
import time

from repro.inject.engine import (EngineConfig, WorkUnit,
                                 register_unit_kind)
from repro.inject.fabric import FabricConfig, run_fabric_campaign


def toy_runner(params, context, batch):
    """Deterministic Bernoulli batch, optionally slowed for chaos tests."""
    delay = params.get("delay", 0.0)
    if delay:
        time.sleep(delay)
    rng = random.Random(batch.seed)
    rate = params.get("rate", 0.3)
    successes = sum(rng.random() < rate for _ in range(batch.size))
    return {"trials": batch.size, "successes": successes,
            "counts": {"detected": successes,
                       "masked": batch.size - successes}}


register_unit_kind("fabric-toy", toy_runner, replace=True)


def toy_units(count, seed=0, delay=0.0):
    return [WorkUnit(unit_id=f"u{index}", kind="fabric-toy",
                     params={"seed": seed + index * 17, "delay": delay})
            for index in range(count)]


def toy_config(shards=4, lease_ttl_s=2.0, batch_size=20, max_batches=6,
               **fabric_knobs):
    return FabricConfig(
        shards=shards, lease_ttl_s=lease_ttl_s,
        heartbeat_interval_s=0.1, poll_interval_s=0.02,
        install_signal_handlers=False,
        engine=EngineConfig(batch_size=batch_size,
                            max_batches=max_batches, ci_half_width=None,
                            timeout_s=None, backoff_s=0.01),
        **fabric_knobs)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fabric-dir", required=True)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--units", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--delay", type=float, default=0.0)
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--lease-ttl", type=float, default=2.0)
    args = parser.parse_args(argv)
    report = run_fabric_campaign(
        toy_units(args.units, seed=args.seed, delay=args.delay),
        args.fabric_dir,
        toy_config(shards=args.shards, lease_ttl_s=args.lease_ttl,
                   batch_size=args.batch_size, max_batches=args.batches))
    print(f"FABRIC_DONE paused={report.paused} "
          f"stopped_globally={report.stopped_globally}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
