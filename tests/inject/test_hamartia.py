"""Tests for the fault injector and campaign statistics."""

import pytest

from repro.errors import InjectionError
from repro.gates import Netlist, build_add_unit
from repro.inject import (CampaignResult, FaultInjector, InjectionRecord,
                          classify_severity, merge_results,
                          run_unit_campaign, severity_distribution)
from repro.inject.hamartia import SEVERITY_CLASSES


def tiny_xor_unit():
    netlist = Netlist("tiny")
    a = netlist.input_bus("a", 4)
    b = netlist.input_bus("b", 4)
    out = [netlist.xor(x, y) for x, y in zip(a, b)]
    netlist.set_output("out", out)
    return netlist


class TestClassifySeverity:
    def test_classes(self):
        assert classify_severity(0b1) == "1"
        assert classify_severity(0b11) == "2-3"
        assert classify_severity(0b111) == "2-3"
        assert classify_severity(0b1111) == ">=4"
        assert classify_severity(0xFFFF_FFFF) == ">=4"

    def test_masked_rejected(self):
        with pytest.raises(InjectionError):
            classify_severity(0)


class TestFaultInjector:
    def test_xor_unit_every_fault_is_single_bit(self):
        # Each XOR gate feeds exactly one output bit, so every unmasked
        # error is a single-bit error.
        unit = tiny_xor_unit()
        injector = FaultInjector(unit)
        result = injector.run({"a": [3, 5, 9], "b": [1, 1, 1]})
        assert result.sample_count == 3
        assert result.masked_input_fraction == 0.0
        for record in result.records:
            assert record.pattern.bit_count() == 1
        dist = severity_distribution(result)
        assert dist["1"].mean == 1.0
        assert dist["2-3"].mean == 0.0

    def test_golden_values_recorded(self):
        unit = tiny_xor_unit()
        result = FaultInjector(unit).run({"a": [3], "b": [5]})
        assert all(record.golden == 3 ^ 5 for record in result.records)

    def test_site_subsampling(self):
        unit = build_add_unit(32)
        injector = FaultInjector(unit)
        result = injector.run({"a": [1, 2], "b": [3, 4]}, site_count=50)
        assert result.sites_evaluated == 50

    def test_ambiguous_output_rejected(self):
        netlist = Netlist()
        a = netlist.input_bus("a", 1)
        netlist.set_output("x", a)
        netlist.set_output("y", a)
        with pytest.raises(InjectionError):
            FaultInjector(netlist)

    def test_unknown_output_rejected(self):
        with pytest.raises(InjectionError):
            FaultInjector(tiny_xor_unit(), output="nope")

    def test_deterministic_given_seed(self):
        unit = tiny_xor_unit()
        first = FaultInjector(unit).run({"a": [3, 7], "b": [2, 2]}, seed=5)
        second = FaultInjector(unit).run({"a": [3, 7], "b": [2, 2]}, seed=5)
        assert [r.site for r in first.records] == \
            [r.site for r in second.records]

    def test_add_unit_faults_propagate_multibit(self):
        # A carry-chain fault in an adder can corrupt several output bits.
        result = run_unit_campaign("fxp-add-32", sample_count=50,
                                   site_count=120, seed=3)
        dist = severity_distribution(result)
        assert dist["1"].mean > 0.5  # single-bit dominates (paper Fig. 10)
        assert dist["1"].mean < 1.0  # but carry faults fan out
        total = sum(dist[name].mean for name in SEVERITY_CLASSES)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_class_counts_consistent_with_unmasked(self):
        result = run_unit_campaign("fxp-add-32", sample_count=20,
                                   site_count=60, seed=4)
        for counts, total in zip(result.class_counts,
                                 result.unmasked_site_counts):
            assert sum(counts.values()) == total


def empty_result():
    return CampaignResult(unit_name="empty", output_bits=4, sample_count=0,
                          sites_evaluated=0, chosen=[],
                          unmasked_site_counts=[], class_counts=[])


def fully_masked_result():
    return CampaignResult(
        unit_name="masked", output_bits=4, sample_count=3,
        sites_evaluated=10, chosen=[None, None, None],
        unmasked_site_counts=[0, 0, 0],
        class_counts=[dict.fromkeys(SEVERITY_CLASSES, 0)
                      for _ in range(3)])


class TestCampaignResultEdges:
    def test_empty_campaign_has_no_records_and_zero_fraction(self):
        result = empty_result()
        assert result.records == []
        assert result.masked_input_fraction == 0.0
        distribution = severity_distribution(result)
        assert all(distribution[name].mean == 0.0
                   for name in SEVERITY_CLASSES)

    def test_fully_masked_campaign(self):
        result = fully_masked_result()
        assert result.records == []
        assert result.masked_input_fraction == 1.0

    def test_dict_round_trip(self):
        record = InjectionRecord(site=7, pattern=0b101, golden=9)
        result = CampaignResult(
            unit_name="rt", output_bits=4, sample_count=2,
            sites_evaluated=5, chosen=[record, None],
            unmasked_site_counts=[1, 0],
            class_counts=[{"1": 0, "2-3": 1, ">=4": 0},
                          dict.fromkeys(SEVERITY_CLASSES, 0)])
        restored = CampaignResult.from_dict(result.to_dict())
        assert restored == result

    def test_merge_concatenates_batches(self):
        record = InjectionRecord(site=1, pattern=0b1, golden=2)
        unmasked = CampaignResult(
            unit_name="m", output_bits=4, sample_count=1,
            sites_evaluated=5, chosen=[record],
            unmasked_site_counts=[1],
            class_counts=[{"1": 1, "2-3": 0, ">=4": 0}])
        masked = CampaignResult(
            unit_name="m", output_bits=4, sample_count=2,
            sites_evaluated=3, chosen=[None, None],
            unmasked_site_counts=[0, 0],
            class_counts=[dict.fromkeys(SEVERITY_CLASSES, 0)
                          for _ in range(2)])
        merged = merge_results([unmasked, masked])
        assert merged.sample_count == 3
        assert merged.sites_evaluated == 5  # largest single-batch sweep
        assert merged.chosen == [record, None, None]
        assert merged.masked_input_fraction == pytest.approx(2 / 3)

    def test_merge_rejects_mixed_units_and_empty(self):
        with pytest.raises(InjectionError):
            merge_results([])
        with pytest.raises(InjectionError):
            merge_results([empty_result(), fully_masked_result()])
