"""Tests for operand traces and synthetic operand streams."""

import pytest

from repro.errors import InjectionError
from repro.inject import OPERAND_KINDS, OperandTrace, synthetic_operands


class TestSyntheticOperands:
    @pytest.mark.parametrize("kind", OPERAND_KINDS)
    def test_shapes(self, kind):
        tuples = synthetic_operands(kind, 50, seed=1)
        assert len(tuples) == 50
        arity = 3 if kind.endswith("mad") else 2
        assert all(len(t) == arity for t in tuples)

    def test_width_bounds(self):
        for a, b in synthetic_operands("int_add", 200, seed=2):
            assert 0 <= a < 2**32 and 0 <= b < 2**32
        for a, b, c in synthetic_operands("int_mad", 200, seed=3):
            assert 0 <= c < 2**64
        for a, b, c in synthetic_operands("fp64_mad", 100, seed=4):
            assert 0 <= a < 2**64

    def test_deterministic(self):
        assert synthetic_operands("fp32_add", 20, seed=7) == \
            synthetic_operands("fp32_add", 20, seed=7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InjectionError):
            synthetic_operands("complex_fma", 5)


class TestOperandTrace:
    def test_add_and_sample(self):
        trace = OperandTrace()
        trace.add("int_add", (1, 2))
        trace.add("int_add", (3, 4))
        samples = trace.sample("int_add", 10, seed=0)
        assert len(samples) == 10
        assert set(samples) <= {(1, 2), (3, 4)}

    def test_sample_falls_back_to_synthetic(self):
        trace = OperandTrace()
        samples = trace.sample("fp32_add", 5, seed=0)
        assert len(samples) == 5

    def test_sample_without_fallback_raises(self):
        with pytest.raises(InjectionError):
            OperandTrace().sample("fp32_add", 5, fallback=False)

    def test_merge_and_len(self):
        first = OperandTrace()
        first.add("int_add", (1, 1))
        second = OperandTrace()
        second.add("int_add", (2, 2))
        second.add("fp32_add", (3, 3))
        first.merge(second)
        assert len(first) == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(InjectionError):
            OperandTrace().add("nope", (1,))
