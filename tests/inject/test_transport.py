"""Transport tests: frames, endpoints, and the seeded chaos schedule."""

import threading

import pytest

from repro.errors import FrameError, InvalidArgument, TransportClosed
from repro.inject.transport import (FRAME_MAGIC, MAX_FRAME_BYTES,
                                    ChaosConfig, ChaosConnection,
                                    ChaosDialer, FrameDecoder,
                                    InProcessTransport, UnixSocketListener,
                                    encode_frame, unix_connect)


class TestFrames:
    def test_round_trip(self):
        message = {"type": "grant", "shard": "shard-000", "token": 3,
                   "units": [{"unit_id": "u0", "params": {"seed": 7}}]}
        decoder = FrameDecoder()
        decoded = decoder.feed(encode_frame(message))
        assert decoded == [message]

    def test_streamed_one_byte_at_a_time(self):
        messages = [{"n": index} for index in range(5)]
        blob = b"".join(encode_frame(message) for message in messages)
        decoder = FrameDecoder()
        out = []
        for offset in range(len(blob)):
            out.extend(decoder.feed(blob[offset:offset + 1]))
        assert out == messages

    def test_crc_corruption_is_rejected_and_poisons(self):
        frame = bytearray(encode_frame({"type": "heartbeat", "beat": 9}))
        frame[-1] ^= 0xFF  # flip a payload bit; CRC no longer matches
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="CRC"):
            decoder.feed(bytes(frame))
        # the stream is out of sync for good: even a clean frame after
        # the corruption is refused
        with pytest.raises(FrameError):
            decoder.feed(encode_frame({"ok": True}))

    def test_bad_magic_is_rejected(self):
        frame = encode_frame({"x": 1})
        mangled = b"XXXX" + frame[len(FRAME_MAGIC):]
        with pytest.raises(FrameError, match="magic"):
            FrameDecoder().feed(mangled)

    def test_non_object_payload_is_rejected_at_encode(self):
        with pytest.raises(FrameError):
            encode_frame(["not", "a", "dict"])

    def test_oversized_frame_is_rejected_at_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})


class TestInProcessTransport:
    def test_connect_accept_round_trip(self):
        transport = InProcessTransport()
        client = transport.connect()
        server = transport.accept(timeout=1.0)
        client.send({"type": "attach", "worker": "w0"})
        assert server.recv(timeout=1.0) == {"type": "attach",
                                            "worker": "w0"}
        server.send({"type": "grant", "token": 1})
        assert client.recv(timeout=1.0) == {"type": "grant", "token": 1}

    def test_recv_timeout_returns_none(self):
        transport = InProcessTransport()
        client = transport.connect()
        assert client.recv(timeout=0.01) is None
        assert client.recv(timeout=0) is None

    def test_accept_timeout_returns_none(self):
        assert InProcessTransport().accept(timeout=0) is None

    def test_peer_close_raises_transport_closed(self):
        transport = InProcessTransport()
        client = transport.connect()
        server = transport.accept(timeout=1.0)
        client.close()
        with pytest.raises(TransportClosed):
            server.recv(timeout=1.0)
        with pytest.raises(TransportClosed):
            client.send({"late": True})


class TestUnixSocketTransport:
    def test_round_trip_over_socket(self, tmp_path):
        path = str(tmp_path / "t.sock")
        listener = UnixSocketListener(path)
        client = unix_connect(path, timeout=2.0)
        server = listener.accept(timeout=2.0)
        client.send({"type": "attach", "worker": "w0"})
        assert server.recv(timeout=2.0) == {"type": "attach",
                                            "worker": "w0"}
        server.send({"type": "ok"})
        assert client.recv(timeout=2.0) == {"type": "ok"}
        listener.close()

    def test_nonblocking_polls_return_none(self, tmp_path):
        # the coordinator's poll loop uses timeout=0 everywhere; on a
        # socket that degrades to non-blocking mode, where an empty
        # buffer raises BlockingIOError — which must read as "nothing
        # yet", never as a dead connection
        path = str(tmp_path / "t.sock")
        listener = UnixSocketListener(path)
        assert listener.accept(timeout=0) is None
        client = unix_connect(path, timeout=2.0)
        server = listener.accept(timeout=2.0)
        assert server.recv(timeout=0) is None
        client.send({"n": 1})
        deadline_polls = 200
        message = None
        for _ in range(deadline_polls):
            message = server.recv(timeout=0.02)
            if message is not None:
                break
        assert message == {"n": 1}
        listener.close()

    def test_peer_close_raises_transport_closed(self, tmp_path):
        path = str(tmp_path / "t.sock")
        listener = UnixSocketListener(path)
        client = unix_connect(path, timeout=2.0)
        server = listener.accept(timeout=2.0)
        client.close()
        with pytest.raises(TransportClosed):
            server.recv(timeout=2.0)
        listener.close()


def _pair():
    transport = InProcessTransport()
    client = transport.connect()
    server = transport.accept(timeout=1.0)
    return client, server


def _deliveries(config, label, count=40):
    """Send ``count`` numbered messages through chaos; return arrivals."""
    client, server = _pair()
    chaotic = ChaosConnection(client, config, label=label)
    for index in range(count):
        try:
            chaotic.send({"n": index})
        except TransportClosed:
            break
    chaotic.close()
    arrived = []
    while True:
        try:
            message = server.recv(timeout=0)
        except TransportClosed:
            break
        if message is None:
            break
        arrived.append(message["n"])
    return arrived


class TestChaosSchedule:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        config = ChaosConfig(seed=11, drop=0.3, dup=0.3, reorder=0.2)
        first = _deliveries(config, "conn0")
        second = _deliveries(config, "conn0")
        assert first == second
        assert first != list(range(40))  # chaos actually did something

    def test_different_seeds_diverge(self):
        a = _deliveries(ChaosConfig(seed=1, drop=0.3, dup=0.3), "conn0")
        b = _deliveries(ChaosConfig(seed=2, drop=0.3, dup=0.3), "conn0")
        assert a != b

    def test_zero_chaos_is_the_identity(self):
        assert _deliveries(ChaosConfig(seed=5), "conn0") == \
            list(range(40))

    def test_duplicates_and_drops_show_up(self):
        arrived = _deliveries(ChaosConfig(seed=3, drop=0.25, dup=0.25),
                              "conn0")
        assert len(set(arrived)) < 40          # some messages dropped
        assert len(arrived) > len(set(arrived))  # some duplicated

    def test_index_partition_drops_a_span(self):
        config = ChaosConfig(seed=0, partition=(10, 20))
        arrived = _deliveries(config, "conn0")
        assert arrived == [n for n in range(40) if not 10 <= n < 20]

    def test_sever_forces_a_reconnect(self):
        client, server = _pair()
        chaotic = ChaosConnection(client, ChaosConfig(seed=0,
                                                      sever_every=3),
                                  label="conn0")
        chaotic.send({"n": 0})
        chaotic.send({"n": 1})
        chaotic.send({"n": 2})
        with pytest.raises(TransportClosed):
            chaotic.send({"n": 3})
        assert chaotic.closed

    def test_dialer_labels_connections_distinctly(self):
        # the same seed must not replay the same fault schedule on a
        # reconnect: the dialer advances the connection label instead
        transport = InProcessTransport()
        config = ChaosConfig(seed=9, drop=0.5)
        dialer = ChaosDialer(transport.connect, config)
        first, second = dialer(), dialer()
        assert first._label != second._label

    def test_bad_probabilities_are_rejected(self):
        with pytest.raises(InvalidArgument):
            ChaosConfig(drop=1.5)
        with pytest.raises(InvalidArgument):
            ChaosConfig(sever_every=0)
        with pytest.raises(InvalidArgument):
            ChaosConfig(partition_direction="sideways")


class TestChaosRecvSide:
    def test_recv_chaos_drops_deterministically(self):
        config = ChaosConfig(seed=4, drop=0.3,
                             partition_direction="recv")
        runs = []
        for _ in range(2):
            client, server = _pair()
            chaotic = ChaosConnection(server, config, label="conn0")
            for index in range(30):
                client.send({"n": index})
            got = []
            while True:
                message = chaotic.recv(timeout=0)
                if message is None:
                    break
                got.append(message["n"])
            runs.append(got)
        assert runs[0] == runs[1]
        assert len(runs[0]) < 30


class TestThreadedUse:
    def test_concurrent_senders_do_not_tear_frames(self, tmp_path):
        path = str(tmp_path / "t.sock")
        listener = UnixSocketListener(path)
        client = unix_connect(path, timeout=2.0)
        server = listener.accept(timeout=2.0)

        def blast(tag):
            for index in range(50):
                client.send({"tag": tag, "n": index})

        threads = [threading.Thread(target=blast, args=(tag,))
                   for tag in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        got = []
        for _ in range(150):
            message = server.recv(timeout=2.0)
            assert message is not None
            got.append((message["tag"], message["n"]))
        assert len(got) == 150
        for tag in ("a", "b", "c"):
            ordered = [n for t, n in got if t == tag]
            assert ordered == list(range(50))  # per-sender FIFO held
        listener.close()
