"""Tests for the append-only campaign journal and its replay."""

import json
import os

import pytest

from repro.errors import InjectionError
from repro.inject.journal import Journal, JournalState, NullJournal


def write_journal(path, *records):
    with Journal(str(path)) as journal:
        for record in records:
            journal.append(record)


class TestJournalWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(str(path)) as journal:
            journal.unit_started("u", "gate", {"seed": 1})
            journal.batch("u", 0, trials=10, successes=4,
                          counts={"due": 4, "sdc": 6}, attempts=1)
            journal.unit_done("u", "completed", {"trials": 10})
        state = JournalState.load(str(path))
        assert state.started["u"]["params"] == {"seed": 1}
        assert state.batches["u"][0]["successes"] == 4
        assert state.finished["u"]["status"] == "completed"
        assert state.corrupt_lines == 0

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        Journal(str(path)).close()
        Journal(str(path)).close()  # reopening must not duplicate
        lines = [json.loads(line) for line in open(path)]
        assert [line["type"] for line in lines] == ["campaign"]

    def test_record_needs_type(self, tmp_path):
        with Journal(str(tmp_path / "journal.jsonl")) as journal:
            with pytest.raises(InjectionError):
                journal.append({"unit": "u"})

    def test_null_journal_writes_nothing(self, tmp_path):
        journal = NullJournal()
        journal.unit_started("u", "gate", {})
        journal.close()
        assert journal.path is None

    def test_fsync_called_per_append(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        with Journal(str(tmp_path / "journal.jsonl"), fsync=True) as journal:
            header_syncs = len(synced)
            journal.unit_started("u", "gate", {})
            journal.batch("u", 0, trials=1, successes=1, counts={},
                          attempts=1)
        assert header_syncs == 1  # the campaign header synced too
        assert len(synced) == 3

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: pytest.fail("fsync without opting in"))
        with Journal(str(tmp_path / "journal.jsonl")) as journal:
            journal.unit_started("u", "gate", {})


class TestKillDurability:
    def test_kill_during_append_resumes_from_torn_line(self, tmp_path):
        # A kill -9 mid-append leaves every fsynced record intact plus
        # one torn final line; replay must resume after the last
        # complete batch, losing at most the in-flight record.
        path = tmp_path / "journal.jsonl"
        with Journal(str(path), fsync=True) as journal:
            journal.unit_started("u", "gate", {"seed": 1})
            journal.batch("u", 0, trials=4, successes=2, counts={"due": 2},
                          attempts=1)
            journal.batch("u", 1, trials=4, successes=1, counts={"due": 1},
                          attempts=1)
        complete = path.read_bytes()
        torn = json.dumps({"type": "batch", "unit": "u", "index": 2,
                           "trials": 4, "successes": 3,
                           "counts": {"due": 3}, "attempts": 1})
        path.write_bytes(complete + torn[:len(torn) // 2].encode())

        state = JournalState.load(str(path))
        assert state.corrupt_lines == 1
        assert state.next_batch_index("u") == 2  # batch 2 was in flight
        assert sum(batch["trials"] for batch in state.batches["u"]) == 8
        assert "u" not in state.finished


class TestJournalReplay:
    def test_missing_file_is_fresh_state(self, tmp_path):
        state = JournalState.load(str(tmp_path / "nope.jsonl"))
        assert not state.started and not state.finished
        assert state.next_batch_index("anything") == 0

    def test_torn_final_line_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {}})
        with open(path, "a") as handle:
            handle.write('{"type": "batch", "uni')
        state = JournalState.load(str(path))
        assert "u" in state.started
        assert state.corrupt_lines == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "unit_started", "unit": "u",
                                     "kind": "gate", "params": {}}) + "\n")
        with pytest.raises(InjectionError):
            JournalState.load(str(path))

    def test_duplicate_batch_index_keeps_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(
            path,
            {"type": "batch", "unit": "u", "index": 0, "trials": 5,
             "successes": 5, "counts": {}, "attempts": 1},
            {"type": "batch", "unit": "u", "index": 0, "trials": 9,
             "successes": 0, "counts": {}, "attempts": 1})
        state = JournalState.load(str(path))
        assert len(state.batches["u"]) == 1
        assert state.batches["u"][0]["trials"] == 5

    def test_next_batch_index_after_gap_free_prefix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(
            path,
            {"type": "batch", "unit": "u", "index": 0, "trials": 1,
             "successes": 0, "counts": {}, "attempts": 1},
            {"type": "batch", "unit": "u", "index": 1, "trials": 1,
             "successes": 0, "counts": {}, "attempts": 1})
        assert JournalState.load(str(path)).next_batch_index("u") == 2

    def test_param_check(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {"seed": 3}})
        state = JournalState.load(str(path))
        state.check_params("u", {"seed": 3})  # fine
        state.check_params("unseen", {"seed": 4})  # unknown unit: fine
        with pytest.raises(InjectionError):
            state.check_params("u", {"seed": 4})

    def test_param_check_tolerates_tuples(self, tmp_path):
        # params journal as JSON, so tuples come back as lists; the
        # check must compare post-round-trip forms.
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {"units": ["a"]}})
        JournalState.load(str(path)).check_params("u", {"units": ("a",)})
