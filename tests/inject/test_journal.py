"""Tests for the append-only campaign journal and its replay."""

import json
import os

import pytest

from repro.errors import InjectionError
from repro.inject.journal import Journal, JournalState, NullJournal


def write_journal(path, *records):
    with Journal(str(path)) as journal:
        for record in records:
            journal.append(record)


class TestJournalWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(str(path)) as journal:
            journal.unit_started("u", "gate", {"seed": 1})
            journal.batch("u", 0, trials=10, successes=4,
                          counts={"due": 4, "sdc": 6}, attempts=1)
            journal.unit_done("u", "completed", {"trials": 10})
        state = JournalState.load(str(path))
        assert state.started["u"]["params"] == {"seed": 1}
        assert state.batches["u"][0]["successes"] == 4
        assert state.finished["u"]["status"] == "completed"
        assert state.corrupt_lines == 0

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        Journal(str(path)).close()
        Journal(str(path)).close()  # reopening must not duplicate
        lines = [json.loads(line) for line in open(path)]
        assert [line["type"] for line in lines] == ["campaign"]

    def test_record_needs_type(self, tmp_path):
        with Journal(str(tmp_path / "journal.jsonl")) as journal:
            with pytest.raises(InjectionError):
                journal.append({"unit": "u"})

    def test_null_journal_writes_nothing(self, tmp_path):
        journal = NullJournal()
        journal.unit_started("u", "gate", {})
        journal.close()
        assert journal.path is None

    def test_fsync_called_per_append(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        with Journal(str(tmp_path / "journal.jsonl"), fsync=True) as journal:
            header_syncs = len(synced)
            journal.unit_started("u", "gate", {})
            journal.batch("u", 0, trials=1, successes=1, counts={},
                          attempts=1)
        assert header_syncs == 1  # the campaign header synced too
        assert len(synced) == 3

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: pytest.fail("fsync without opting in"))
        with Journal(str(tmp_path / "journal.jsonl")) as journal:
            journal.unit_started("u", "gate", {})


class TestKillDurability:
    def test_kill_during_append_resumes_from_torn_line(self, tmp_path):
        # A kill -9 mid-append leaves every fsynced record intact plus
        # one torn final line; replay must resume after the last
        # complete batch, losing at most the in-flight record.
        path = tmp_path / "journal.jsonl"
        with Journal(str(path), fsync=True) as journal:
            journal.unit_started("u", "gate", {"seed": 1})
            journal.batch("u", 0, trials=4, successes=2, counts={"due": 2},
                          attempts=1)
            journal.batch("u", 1, trials=4, successes=1, counts={"due": 1},
                          attempts=1)
        complete = path.read_bytes()
        torn = json.dumps({"type": "batch", "unit": "u", "index": 2,
                           "trials": 4, "successes": 3,
                           "counts": {"due": 3}, "attempts": 1})
        path.write_bytes(complete + torn[:len(torn) // 2].encode())

        state = JournalState.load(str(path))
        assert state.corrupt_lines == 1
        assert state.next_batch_index("u") == 2  # batch 2 was in flight
        assert sum(batch["trials"] for batch in state.batches["u"]) == 8
        assert "u" not in state.finished


class TestJournalReplay:
    def test_missing_file_is_fresh_state(self, tmp_path):
        state = JournalState.load(str(tmp_path / "nope.jsonl"))
        assert not state.started and not state.finished
        assert state.next_batch_index("anything") == 0

    def test_torn_final_line_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {}})
        with open(path, "a") as handle:
            handle.write('{"type": "batch", "uni')
        state = JournalState.load(str(path))
        assert "u" in state.started
        assert state.corrupt_lines == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "unit_started", "unit": "u",
                                     "kind": "gate", "params": {}}) + "\n")
        with pytest.raises(InjectionError):
            JournalState.load(str(path))

    def test_duplicate_batch_index_keeps_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(
            path,
            {"type": "batch", "unit": "u", "index": 0, "trials": 5,
             "successes": 5, "counts": {}, "attempts": 1},
            {"type": "batch", "unit": "u", "index": 0, "trials": 9,
             "successes": 0, "counts": {}, "attempts": 1})
        state = JournalState.load(str(path))
        assert len(state.batches["u"]) == 1
        assert state.batches["u"][0]["trials"] == 5

    def test_next_batch_index_after_gap_free_prefix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(
            path,
            {"type": "batch", "unit": "u", "index": 0, "trials": 1,
             "successes": 0, "counts": {}, "attempts": 1},
            {"type": "batch", "unit": "u", "index": 1, "trials": 1,
             "successes": 0, "counts": {}, "attempts": 1})
        assert JournalState.load(str(path)).next_batch_index("u") == 2

    def test_param_check(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {"seed": 3}})
        state = JournalState.load(str(path))
        state.check_params("u", {"seed": 3})  # fine
        state.check_params("unseen", {"seed": 4})  # unknown unit: fine
        with pytest.raises(InjectionError):
            state.check_params("u", {"seed": 4})

    def test_param_check_tolerates_tuples(self, tmp_path):
        # params journal as JSON, so tuples come back as lists; the
        # check must compare post-round-trip forms.
        path = tmp_path / "journal.jsonl"
        write_journal(path, {"type": "unit_started", "unit": "u",
                             "kind": "gate", "params": {"units": ["a"]}})
        JournalState.load(str(path)).check_params("u", {"units": ("a",)})

    def test_quarantine_and_pause_records_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(str(path)) as journal:
            journal.unit_quarantined(
                "poison", {"trials": 0},
                [{"outcome": "error", "detail": "RuntimeError: boom",
                  "traceback": "Traceback..."}])
            journal.campaign_paused("signal SIGTERM", "u1", ["u2", "u3"])
        state = JournalState.load(str(path))
        assert state.finished["poison"]["status"] == "quarantined"
        assert state.quarantined["poison"]["failures"][0]["detail"] == \
            "RuntimeError: boom"
        assert state.pauses == [state.pauses[0]]
        assert state.pauses[0]["in_flight"] == "u1"
        assert state.pauses[0]["pending"] == ["u2", "u3"]


def _sample_journal(path, batches=4):
    with Journal(str(path)) as journal:
        journal.unit_started("u", "gate", {"seed": 1})
        for index in range(batches):
            journal.batch("u", index, trials=10, successes=index,
                          counts={"due": index, "sdc": 10 - index},
                          attempts=1)


def _flip_line(path, line_number, old, new):
    """Alter one journal line in place (still valid JSON, wrong CRC)."""
    lines = path.read_bytes().split(b"\n")
    target = lines[line_number - 1]
    assert old in target, f"line {line_number} lacks {old!r}"
    lines[line_number - 1] = target.replace(old, new, 1)
    path.write_bytes(b"\n".join(lines))


class TestTamperEvidence:
    def test_records_carry_crc_and_running_index(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        records = [json.loads(line) for line in open(path)]
        assert [record["rix"] for record in records] == \
            list(range(len(records)))
        assert all(isinstance(record["crc"], int) for record in records)
        assert records[0]["type"] == "campaign"

    def test_flipped_byte_detected_with_location(self, tmp_path):
        """Acceptance: one flipped byte raises, naming the file and line."""
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 4, b'"successes": 1', b'"successes": 6')
        with pytest.raises(InjectionError) as excinfo:
            JournalState.load(str(path))
        message = str(excinfo.value)
        assert f"{path}:4" in message
        assert "CRC32" in message
        assert "salvage=True" in message

    def test_flipped_byte_on_final_line_tolerated_as_torn_tail(
            self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 6, b'"successes": 3', b'"successes": 8')
        state = JournalState.load(str(path))
        assert state.corrupt_lines == 1
        assert state.next_batch_index("u") == 3  # the bad record dropped

    def test_salvage_resumes_from_last_good_record(self, tmp_path):
        """Acceptance: salvage=True keeps the prefix before the bad byte."""
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 4, b'"successes": 1', b'"successes": 6')
        state = JournalState.load(str(path), salvage=True)
        assert state.salvaged_line == 4
        assert state.corrupt_lines == 1
        # only batch 0 (line 3) survives; everything at and after the
        # flipped line is re-derived from its deterministic seed later
        assert state.next_batch_index("u") == 1
        assert "u" in state.started

    def test_salvage_writer_truncates_file_at_bad_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 4, b'"successes": 1', b'"successes": 6')
        with Journal(str(path), salvage=True) as journal:
            journal.batch("u", 1, trials=10, successes=1,
                          counts={"due": 1, "sdc": 9}, attempts=1)
        state = JournalState.load(str(path))  # strict load passes again
        assert state.corrupt_lines == 0
        records = [json.loads(line) for line in open(path)]
        assert [record["rix"] for record in records] == \
            list(range(len(records)))

    def test_dropped_record_detected_by_index_gap(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        lines = path.read_bytes().split(b"\n")
        del lines[2]  # excise batch 0: later rix values now jump
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(InjectionError) as excinfo:
            JournalState.load(str(path))
        assert "dropped or spliced" in str(excinfo.value)

    def test_legacy_records_without_crc_still_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as handle:
            handle.write('{"type": "campaign", "version": 1}\n')
            handle.write('{"type": "unit_started", "unit": "u", '
                         '"kind": "gate", "params": {}}\n')
        state = JournalState.load(str(path))
        assert "u" in state.started
        assert state.corrupt_lines == 0


class TestWriterValidation:
    def test_version_mismatch_refused_on_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as handle:
            handle.write('{"type": "campaign", "version": 99}\n')
        with pytest.raises(InjectionError) as excinfo:
            Journal(str(path))
        message = str(excinfo.value)
        assert "99" in message and "refusing to append" in message

    def test_non_campaign_file_refused_on_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as handle:
            handle.write('{"type": "batch", "unit": "u", "index": 0, '
                         '"trials": 1, "successes": 0, "counts": {}, '
                         '"attempts": 1}\n')
        with pytest.raises(InjectionError) as excinfo:
            Journal(str(path))
        assert "not a campaign journal" in str(excinfo.value)

    def test_corrupt_journal_refused_on_append_without_salvage(
            self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 4, b'"successes": 1', b'"successes": 6')
        with pytest.raises(InjectionError):
            Journal(str(path))

    def test_torn_tail_truncated_before_append(self, tmp_path):
        # Appending after a torn final line must not merge the new
        # record into the garbage: the writer truncates the tail first.
        path = tmp_path / "journal.jsonl"
        _sample_journal(path, batches=2)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "batch", "uni')
        with Journal(str(path)) as journal:
            journal.batch("u", 2, trials=10, successes=5,
                          counts={"due": 5, "sdc": 5}, attempts=1)
        state = JournalState.load(str(path))
        assert state.corrupt_lines == 0
        assert state.next_batch_index("u") == 3

    def test_missing_final_newline_repaired_before_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path, batches=1)
        content = path.read_bytes()
        path.write_bytes(content.rstrip(b"\n"))  # e.g. partial flush
        with Journal(str(path)) as journal:
            journal.batch("u", 1, trials=10, successes=2,
                          counts={"due": 2, "sdc": 8}, attempts=1)
        state = JournalState.load(str(path))
        assert state.corrupt_lines == 0
        assert state.next_batch_index("u") == 2


class TestSalvageEvent:
    """salvage=True truncation is a *typed, journaled* event (not just a
    silent repair): the writer appends a ``journal_salvaged`` record
    naming what was lost, and replays absorb it for campaign reports."""

    def _corrupted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        _flip_line(path, 4, b'"successes": 1', b'"successes": 6')
        return path

    def test_salvage_writer_records_the_loss(self, tmp_path):
        path = self._corrupted(tmp_path)
        with Journal(str(path), salvage=True) as journal:
            # lines 4..6 were cut; the last surviving record was rix 2
            assert journal.salvage_event == {
                "dropped_records": 3, "last_good_rix": 2,
                "corrupt_line": 4}
        records = [json.loads(line) for line in open(path)]
        event = [record for record in records
                 if record["type"] == "journal_salvaged"]
        assert len(event) == 1
        assert event[0]["dropped_records"] == 3
        assert event[0]["last_good_rix"] == 2

    def test_replay_absorbs_salvage_events(self, tmp_path):
        path = self._corrupted(tmp_path)
        with Journal(str(path), salvage=True):
            pass
        state = JournalState.load(str(path))
        assert len(state.salvage_events) == 1
        assert state.salvage_events[0]["dropped_records"] == 3

    def test_clean_journal_has_no_salvage_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _sample_journal(path)
        with Journal(str(path), salvage=True) as journal:
            assert journal.salvage_event is None
        state = JournalState.load(str(path))
        assert state.salvage_events == []
