"""Tests for the certify and mbu-sweep campaign work-unit kinds."""

import pytest

from repro.certify import tampered_secded_dp
from repro.errors import InjectionError
from repro.inject import (CampaignEngine, EngineConfig, certify_work_unit,
                          detection_coverage, mbu_sweep_work_unit)
from repro.inject.engine import BatchSpec, run_mbu_sweep_batch


def inline_engine(batch_size=1, max_batches=1):
    return CampaignEngine(EngineConfig(
        batch_size=batch_size, max_batches=max_batches, ci_half_width=None,
        timeout_s=None, isolation="inline"))


class TestCertifyUnit:
    def test_registered_scheme_certifies_through_the_engine(self):
        report = inline_engine().run([certify_work_unit("parity")])
        unit = report.units["certify/parity/fast"]
        assert unit.status == "completed"
        assert unit.trials > 1000
        assert unit.counts["sdc"] == 0
        assert unit.counts["masked"] == unit.trials
        payload = unit.payloads[0]
        assert payload["kind"] == "swapcodes-guarantee-certificate"
        assert payload["passed"] is True

    def test_tampered_scheme_fails_loudly_in_payload(self):
        unit = certify_work_unit(
            "secded-dp-tampered", mode="fast",
            scheme_instance=tampered_secded_dp("zero-column"))
        report = inline_engine().run([unit])
        terminal = report.units["certify/secded-dp-tampered/fast"]
        assert terminal.counts["sdc"] > 0
        payload = terminal.payloads[0]
        assert payload["passed"] is False
        assert "detects-all-single-pipeline" in payload["violated"]
        counterexample = payload["claims"]["detects-all-single-pipeline"][
            "counterexample"]
        assert counterexample["weight"] == 1

    def test_monitored_proportion_is_claim_pass_rate(self):
        report = inline_engine().run([certify_work_unit("mod7")])
        unit = report.units["certify/mod7/fast"]
        assert unit.successes == unit.trials


class TestMbuSweepUnit:
    def test_unit_runs_and_classifies(self):
        unit = mbu_sweep_work_unit("pathfinder", 2, scale=0.12, seed=4)
        report = inline_engine(batch_size=6).run([unit])
        terminal = report.units["pathfinder/secded-dp/m2"]
        assert terminal.status == "completed"
        assert terminal.payloads[0]["multiplicity"] == 2
        visible = sum(detection_coverage(terminal.counts).values())
        assert visible == pytest.approx(1.0) or visible == 0.0

    def test_burst_pattern_and_lane_spread_accepted(self):
        unit = mbu_sweep_work_unit("pathfinder", 3, scale=0.12, seed=4,
                                   pattern="burst", lane_spread=2,
                                   where="result")
        report = inline_engine(batch_size=4).run([unit])
        terminal = report.units["pathfinder/secded-dp/m3"]
        assert terminal.status == "completed"
        assert terminal.payloads[0]["pattern"] == "burst"
        assert terminal.payloads[0]["lane_spread"] == 2

    def test_bad_multiplicity_rejected(self):
        with pytest.raises(InjectionError):
            run_mbu_sweep_batch({"workload": "pathfinder",
                                 "multiplicity": 0},
                                None, BatchSpec(0, 1, 0))
        with pytest.raises(InjectionError):
            run_mbu_sweep_batch({"workload": "pathfinder",
                                 "multiplicity": 40},
                                None, BatchSpec(0, 1, 0))

    def test_bad_pattern_and_lane_spread_rejected(self):
        with pytest.raises(InjectionError):
            run_mbu_sweep_batch({"workload": "pathfinder",
                                 "multiplicity": 1, "pattern": "spiral"},
                                None, BatchSpec(0, 1, 0))
        with pytest.raises(InjectionError):
            run_mbu_sweep_batch({"workload": "pathfinder", "scale": 0.12,
                                 "multiplicity": 1, "lane_spread": 0},
                                None, BatchSpec(0, 1, 0))

    def test_seed_determinism(self):
        unit = mbu_sweep_work_unit("pathfinder", 2, scale=0.12, seed=9)
        first = inline_engine(batch_size=5).run([unit])
        second = inline_engine(batch_size=5).run([unit])
        first_unit = first.units["pathfinder/secded-dp/m2"]
        second_unit = second.units["pathfinder/secded-dp/m2"]
        assert first_unit.counts == second_unit.counts
