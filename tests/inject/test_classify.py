"""Tests for detection classification and SDC-risk math (Figure 11)."""

import pytest

from repro.ecc import (DetectOnlySwap, NaiveSecDedSwap, ParityCode,
                       ResidueCode, SecDedDpSwap, SecDpSwap, TedCode)
from repro.errors import InjectionError
from repro.inject import (detection_outcomes, record_is_detected,
                          run_unit_campaign, sdc_risk, sdc_risk_sweep,
                          split_into_registers)


class TestSplitIntoRegisters:
    def test_32_bit_output_single_register(self):
        words = split_into_registers(pattern=0b101, golden=7, output_bits=32)
        assert words == [(7, 0b101)]

    def test_64_bit_output_two_registers(self):
        golden = (0xAAAA_BBBB << 32) | 0x1111_2222
        pattern = (0x1 << 32) | 0x8000_0000
        words = split_into_registers(pattern, golden, output_bits=64)
        assert words == [(0x1111_2222, 0x8000_0000), (0xAAAA_BBBB, 0x1)]


class TestRecordIsDetected:
    ted = DetectOnlySwap(TedCode())

    def test_single_bit_always_detected_by_ted(self):
        assert record_is_detected(self.ted, pattern=1, golden=12345,
                                  output_bits=32)

    def test_triple_bit_detected_by_ted(self):
        assert record_is_detected(self.ted, pattern=0b10101, golden=999,
                                  output_bits=32)

    def test_parity_misses_double_bit(self):
        parity = DetectOnlySwap(ParityCode())
        assert not record_is_detected(parity, pattern=0b11, golden=4,
                                      output_bits=32)

    def test_residue_misses_modulus_aliased_pattern(self):
        # Flipping bits so the value changes by a multiple of 3 escapes
        # mod-3: golden 0b01 -> bad 0b100 (1 -> 4, delta 3).
        mod3 = DetectOnlySwap(ResidueCode(3))
        assert not record_is_detected(mod3, pattern=0b101, golden=1,
                                      output_bits=32)

    def test_64_bit_detected_if_either_register_dues(self):
        # Error pattern touching only the high register, detectable there.
        assert record_is_detected(self.ted, pattern=1 << 32,
                                  golden=0, output_bits=64)

    def test_secded_dp_flags_single_bit_as_due(self):
        scheme = SecDedDpSwap()
        assert record_is_detected(scheme, pattern=1 << 7, golden=42,
                                  output_bits=32)

    def test_naive_secded_counts_detected_when_corrected_right(self):
        # NaiveSecDedSwap miscorrects shadow errors but original-side
        # single-bit data errors decode as "corrected"... to the wrong
        # value (the ECC came from the clean shadow, so correction restores
        # the golden data).  That counts as repaired, not SDC.
        scheme = NaiveSecDedSwap()
        assert record_is_detected(scheme, pattern=1, golden=42,
                                  output_bits=32)

    def test_masked_record_rejected(self):
        with pytest.raises(InjectionError):
            record_is_detected(self.ted, pattern=0, golden=0, output_bits=32)


class TestDetectionOutcomesBatching:
    """The batched campaign classifier must equal per-record scalar calls."""

    @pytest.mark.parametrize("scheme", [
        DetectOnlySwap(ParityCode()),
        DetectOnlySwap(ResidueCode(3)),
        DetectOnlySwap(TedCode()),
        SecDedDpSwap(),
        SecDedDpSwap(check_correction="strict"),
        SecDpSwap(),
        NaiveSecDedSwap(),
    ], ids=lambda scheme: scheme.name)
    def test_matches_record_is_detected(self, scheme):
        result = run_unit_campaign("fp-mad-64", sample_count=120,
                                   site_count=60, seed=11)
        assert result.records, "campaign produced no unmasked records"
        batched = detection_outcomes(scheme, result)
        scalar = [record_is_detected(scheme, record.pattern, record.golden,
                                     result.output_bits)
                  for record in result.records]
        assert list(batched) == scalar

    def test_empty_campaign_yields_empty_outcomes(self):
        from repro.inject import FaultInjector
        from tests.inject.test_hamartia import tiny_xor_unit

        result = FaultInjector(tiny_xor_unit()).run({"a": [], "b": []})
        outcomes = detection_outcomes(DetectOnlySwap(ParityCode()), result)
        assert outcomes.shape == (0,)


class TestSdcRisk:
    def test_risk_ordering_matches_code_strength(self):
        result = run_unit_campaign("fxp-add-32", sample_count=300,
                                   site_count=150, seed=7)
        schemes = [
            DetectOnlySwap(ParityCode()),
            DetectOnlySwap(ResidueCode(3)),
            DetectOnlySwap(ResidueCode(127)),
            DetectOnlySwap(TedCode()),
        ]
        risks = sdc_risk_sweep(result, schemes)
        parity = risks["swap-parity-32"].mean
        mod3 = risks["swap-mod3"].mean
        mod127 = risks["swap-mod127"].mean
        assert parity >= mod3 >= mod127
        assert mod3 < 0.05  # paper: even Mod-3 stays under 5%
        assert risks["swap-ted-39-32"].mean < 0.02

    def test_risk_is_zero_for_exhaustive_detection(self):
        # On the XOR-only toy unit from the injector tests every fault is
        # single-bit, which any residue catches.
        from tests.inject.test_hamartia import tiny_xor_unit
        from repro.inject import FaultInjector

        result = FaultInjector(tiny_xor_unit()).run(
            {"a": [3, 5], "b": [6, 2]})
        # Patterns are 4-bit wide; treat as one register.
        risk = sdc_risk(result, DetectOnlySwap(ResidueCode(7, data_bits=32)))
        assert risk.mean == 0.0
