"""Tests for the recovery-coverage study and its JSON artifact."""

import json

import pytest

from repro.inject import RECOVERY_CLASSES
from repro.experiments import (RECOVERY_MATRIX, render_recovery_coverage,
                               run_recovery_coverage_study,
                               write_recovery_artifact)


@pytest.fixture(scope="module")
def study():
    return run_recovery_coverage_study(trials_per_unit=16, seed=3)


class TestRecoveryCoverageStudy:
    def test_sweeps_whole_matrix(self, study):
        assert set(study.units) == {
            f"pathfinder/{code}/{where}" for code, where in RECOVERY_MATRIX}
        assert all(unit.status == "completed"
                   for unit in study.units.values())

    def test_secded_dp_corrects_storage_without_replay(self, study):
        # The headline claim: retained correction means zero replays.
        coverage = study.coverage["pathfinder/secded-dp/storage"]
        assert coverage["corrected_in_place"] > 0
        assert coverage["cta_replayed"] == coverage["kernel_replayed"] == 0
        telemetry = study.telemetry["pathfinder/secded-dp/storage"]
        assert telemetry["replayed_instructions"] == 0

    def test_detect_only_pays_replay_for_storage(self, study):
        coverage = study.coverage["pathfinder/parity/storage"]
        assert coverage["corrected_in_place"] == 0
        assert coverage["cta_replayed"] + coverage["kernel_replayed"] > 0

    def test_pipeline_errors_escalate_to_replay(self, study):
        for code in ("secded-dp", "parity"):
            coverage = study.coverage[f"pathfinder/{code}/result"]
            assert coverage["cta_replayed"] + coverage["kernel_replayed"] > 0
            assert coverage["sdc"] == 0.0

    def test_zero_containment_divergence(self, study):
        assert study.total_violations == 0
        for telemetry in study.telemetry.values():
            assert telemetry["audits"] == telemetry["detections"]

    def test_render_has_one_row_per_unit(self, study):
        text = render_recovery_coverage(study)
        lines = text.splitlines()
        assert len(lines) == 1 + len(RECOVERY_MATRIX)
        assert all(name in lines[0] for name in RECOVERY_CLASSES)

    def test_journal_makes_study_resumable(self, tmp_path):
        journal = str(tmp_path / "recovery.jsonl")
        first = run_recovery_coverage_study(trials_per_unit=8, seed=5,
                                            journal_path=journal)
        second = run_recovery_coverage_study(trials_per_unit=8, seed=5,
                                             journal_path=journal)
        assert all(unit.resumed for unit in second.units.values())
        assert second.coverage == first.coverage


class TestRecoveryArtifact:
    def test_artifact_schema_round_trips(self, study, tmp_path):
        path = str(tmp_path / "recovery.json")
        artifact = write_recovery_artifact(study, path)
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk == artifact
        assert on_disk["version"] == 1
        assert on_disk["classes"] == list(RECOVERY_CLASSES)
        unit = on_disk["units"]["pathfinder/secded-dp/storage"]
        for key in ("status", "trials", "counts", "coverage",
                    "replayed_instructions", "total_instructions",
                    "detections", "audits", "violations"):
            assert key in unit
        assert unit["violations"] == 0

    def test_zero_counts_omitted_from_artifact(self, study, tmp_path):
        artifact = write_recovery_artifact(
            study, str(tmp_path / "recovery.json"))
        for unit in artifact["units"].values():
            assert 0 not in unit["counts"].values()
