"""Tests for the experiment harnesses (tiny-scale shape checks)."""

import pytest

from repro.experiments import (TABLE_I, TABLE_II, figure11_schemes,
                               render_figure10, render_figure11,
                               render_figure14, render_mix_table,
                               render_slowdown_table, run_injection_study,
                               run_performance_study, run_power_study,
                               run_scheme, table_iii, table_iv_rows)
from repro.gpu.power import PowerModel
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def tiny_perf():
    return run_performance_study(workloads=("gaussian", "btree"),
                                 scale=0.25, seed=0)


@pytest.fixture(scope="module")
def tiny_injection():
    return run_injection_study(sample_count=80, site_count=50,
                               units=("fxp-add-32",))


class TestInjectionHarness:
    def test_severity_sums_to_one(self, tiny_injection):
        for dist in tiny_injection.severity.values():
            total = sum(estimate.mean for estimate in dist.values())
            assert total == pytest.approx(1.0)

    def test_all_codes_present(self, tiny_injection):
        risks = tiny_injection.sdc_risk["fxp-add-32"]
        assert set(figure11_schemes()) == set(risks)

    def test_renderers_produce_text(self, tiny_injection):
        assert "fxp-add-32" in render_figure10(tiny_injection)
        assert "MEAN" in render_figure11(tiny_injection)


class TestPerformanceHarness:
    def test_everything_verified(self, tiny_perf):
        assert tiny_perf.all_verified()

    def test_slowdowns_positive_and_ordered(self, tiny_perf):
        assert tiny_perf.mean_slowdown("swdup") > \
            tiny_perf.mean_slowdown("pre-mad")

    def test_mix_fractions_cover_bloat(self, tiny_perf):
        fractions = tiny_perf.mix_fractions("btree", "swdup")
        total = sum(fractions.values())
        assert total == pytest.approx(
            1.0 + tiny_perf.bloat("btree", "swdup"), abs=1e-9)

    def test_renderers(self, tiny_perf):
        assert "MEAN" in render_slowdown_table(tiny_perf)
        assert "btree/swdup" in render_mix_table(tiny_perf)

    def test_rejected_scheme_recorded(self):
        instance = get_workload("snap").build(scale=0.12)
        run = run_scheme(instance, "interthread")
        assert run.rejected


class TestPowerHarness:
    def test_power_study(self):
        study = run_power_study(scale=0.12)
        text = render_figure14(study)
        assert "power" in text
        for workload in study.grid:
            for scheme in ("swdup", "swap-ecc"):
                assert study.grid[workload][scheme].power.watts > 0

    def test_power_model_monotone_in_activity(self):
        from repro.gpu.device import LaunchResult
        from repro.gpu import ResilienceState
        from repro.gpu.timing import Occupancy

        def result(issued):
            return LaunchResult(
                kernel_name="k", cycles=1000, seconds=1e-6,
                occupancy=Occupancy(1, 1, 1, "ctas"), issued=issued,
                issued_by_pipe={"alu": issued}, memory_transactions=0,
                resilience=ResilienceState())

        model = PowerModel()
        assert model.estimate(result(2000)).watts > \
            model.estimate(result(100)).watts


class TestStaticTables:
    def test_table_i_shape(self):
        assert len(TABLE_I) == 5
        for row in TABLE_I.values():
            assert set(row) == {"granularity", "sphere", "sw_changes",
                                "hw_changes", "transparent",
                                "performance_hit", "major_issue"}

    def test_table_ii_mentions_compiler_and_isa(self):
        structures = " ".join(row["structure"] for row in TABLE_II)
        assert "Compiler" in structures
        assert "ISA" in structures

    def test_table_iii_modulus_independent_value(self):
        for modulus in (3, 7, 15, 127):
            rows = table_iii(modulus)
            for row in rows:
                signal = int(row["signal"], 2)
                want = (row["cin"] - row["cout"]) % modulus
                assert signal % modulus == want

    def test_table_iv_complete(self):
        rows = table_iv_rows()
        sections = {row.section for row in rows}
        assert sections == {"original", "swap-ecc", "swap-predict"}
