"""Tests for the MBU-degradation study and its JSON artifact."""

import json

import pytest

from repro.inject import DETECTION_CLASSES
from repro.experiments import (MBU_MATRIX, render_mbu_degradation,
                               run_mbu_degradation_study, write_mbu_artifact)

SMALL_MATRIX = (("secded-dp", 1), ("secded-dp", 2),
                ("parity", 1), ("parity", 4))


@pytest.fixture(scope="module")
def study():
    return run_mbu_degradation_study(matrix=SMALL_MATRIX, scale=0.12,
                                     trials_per_unit=14, seed=2)


class TestMbuDegradationStudy:
    def test_sweeps_whole_matrix(self, study):
        assert set(study.units) == {
            f"pathfinder/{code}/m{multiplicity}"
            for code, multiplicity in SMALL_MATRIX}
        assert all(unit.status == "completed"
                   for unit in study.units.values())

    def test_default_matrix_spans_multiplicities_one_to_four(self):
        multiplicities = {m for _, m in MBU_MATRIX}
        assert multiplicities == {1, 2, 3, 4}
        codes = {code for code, _ in MBU_MATRIX}
        assert "secded-dp" in codes and "parity" in codes

    def test_coverage_fractions_are_normalised(self, study):
        for fractions in study.coverage.values():
            assert set(fractions) == set(DETECTION_CLASSES)
            total = sum(fractions.values())
            assert total == pytest.approx(1.0) or total == 0.0

    def test_secded_dp_covers_singles_completely(self, study):
        # multiplicity 1 is inside the certified guarantee: no escapes
        assert study.coverage["pathfinder/secded-dp/m1"]["sdc"] == 0.0

    def test_coverage_curve_is_keyed_by_multiplicity(self, study):
        curve = study.coverage_by_multiplicity("secded-dp")
        assert set(curve) == {1, 2}
        assert curve[1] == 1.0

    def test_render_has_one_row_per_unit(self, study):
        text = render_mbu_degradation(study)
        lines = text.splitlines()
        assert len(lines) == 1 + len(SMALL_MATRIX)
        assert all(name in lines[0] for name in DETECTION_CLASSES)

    def test_artifact_round_trips(self, study, tmp_path):
        path = str(tmp_path / "mbu.json")
        artifact = write_mbu_artifact(study, path)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == artifact
        assert loaded["version"] == 1
        assert loaded["classes"] == list(DETECTION_CLASSES)
        for unit_id, entry in loaded["units"].items():
            assert entry["multiplicity"] == int(unit_id.rsplit("m", 1)[1])
            assert entry["status"] == "completed"

    def test_journal_makes_study_resumable(self, tmp_path):
        journal = str(tmp_path / "mbu.jsonl")
        first = run_mbu_degradation_study(matrix=SMALL_MATRIX[:2],
                                          scale=0.12, trials_per_unit=6,
                                          seed=5, journal_path=journal)
        second = run_mbu_degradation_study(matrix=SMALL_MATRIX[:2],
                                           scale=0.12, trials_per_unit=6,
                                           seed=5, journal_path=journal)
        for unit_id in first.units:
            assert first.units[unit_id].counts == \
                second.units[unit_id].counts
