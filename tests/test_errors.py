"""Tests for the typed diagnostic registry: stable, unique, enforced."""

import ast
import os
import pickle
import re

import pytest

from repro.errors import (CONTEXT_FIELD_TYPES, SEVERITIES, FabricError,
                          InjectionError, LeaseExpired, MergeConflict,
                          ReproError, StaleFencingToken,
                          error_code_registry)

#: dot-namespaced: at least two lowercase segments
CODE_SHAPE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


class TestRegistry:
    def test_every_code_is_dot_namespaced(self):
        for code in error_code_registry():
            assert CODE_SHAPE.match(code), code

    def test_no_duplicate_codes(self):
        registry = error_code_registry()
        classes = list(registry.values())
        assert len({cls.code for cls in classes}) == len(classes)

    def test_registry_covers_fabric_diagnostics(self):
        registry = error_code_registry()
        assert registry["inject.lease_expired"] is LeaseExpired
        assert registry["inject.stale_fencing_token"] is StaleFencingToken
        assert registry["journal.merge_conflict"] is MergeConflict
        assert registry["inject.fabric"] is FabricError

    def test_instances_carry_their_code(self):
        assert StaleFencingToken("zombie").code == \
            "inject.stale_fencing_token"
        assert LeaseExpired("late").code == "inject.lease_expired"
        assert MergeConflict("fork").code == "journal.merge_conflict"

    def test_fabric_errors_are_injection_errors(self):
        # callers catching the subsystem error must see fabric failures
        assert issubclass(FabricError, InjectionError)
        assert issubclass(LeaseExpired, FabricError)
        assert issubclass(StaleFencingToken, FabricError)
        assert issubclass(MergeConflict, InjectionError)

    def test_registry_returns_a_copy(self):
        registry = error_code_registry()
        registry["bogus.code"] = RuntimeError
        assert "bogus.code" not in error_code_registry()


class TestEnforcement:
    def test_subclass_without_code_is_rejected(self):
        with pytest.raises(TypeError, match="must declare"):
            type("Anon", (ReproError,), {})

    def test_duplicate_code_is_rejected(self):
        with pytest.raises(TypeError, match="duplicate"):
            type("Imposter", (ReproError,),
                 {"code": "inject.lease_expired"})

    def test_malformed_code_is_rejected(self):
        for bad in ("flat", "Upper.case", "trailing.", ".leading",
                    "spa ce.code"):
            with pytest.raises(TypeError, match="dot-namespaced"):
                type("Bad", (ReproError,), {"code": bad})

    def test_subclass_without_severity_is_rejected(self):
        with pytest.raises(TypeError, match="severity"):
            type("NoSev", (ReproError,), {"code": "test.no_severity"})

    def test_bad_severity_is_rejected(self):
        with pytest.raises(TypeError, match="is not one of"):
            type("BadSev", (ReproError,),
                 {"code": "test.bad_severity", "severity": "apocalyptic",
                  "recoverable": False})

    def test_subclass_without_recoverable_is_rejected(self):
        with pytest.raises(TypeError, match="recoverable"):
            type("NoRec", (ReproError,),
                 {"code": "test.no_recoverable", "severity": "fatal"})


class TestSeverityContract:
    def test_every_registered_class_declares_severity(self):
        # __init_subclass__ enforces this going forward; this pins the
        # current registry so a refactor cannot regress it.
        for code, klass in error_code_registry().items():
            assert klass.__dict__.get("severity") in SEVERITIES or \
                klass is ReproError, code
            assert isinstance(klass.__dict__.get("recoverable"),
                              bool) or klass is ReproError, code

    def test_fatal_errors_are_not_recoverable(self):
        # "fatal" means stop trusting the run: a recoverable fatal
        # error is a triage contradiction.
        for code, klass in error_code_registry().items():
            if klass.severity == "fatal":
                assert not klass.recoverable, code

    def test_transient_errors_are_recoverable(self):
        for code, klass in error_code_registry().items():
            if klass.severity == "transient":
                assert klass.recoverable, code


def _instance_of(klass):
    """Build an instance of any registry class, constructor-agnostic."""
    return ReproError.from_record({
        "code": klass.code, "message": "boom",
        "context": {"unit": "u7", "token": 3,
                    "plan": {"bit": 4, "lanes": [0, 1]}}})


class TestPickleFidelity:
    def test_every_registry_class_round_trips(self):
        for code, klass in error_code_registry().items():
            original = _instance_of(klass)
            clone = pickle.loads(pickle.dumps(original))
            assert type(clone) is type(original), code
            assert clone.code == code
            assert str(clone) == str(original)
            assert clone.context == original.context
            assert clone.severity == original.severity
            assert clone.recoverable == original.recoverable

    def test_pickle_preserves_constructor_free_subclasses(self):
        # __reduce__ must not call subclass __init__ (subclasses may
        # grow extra constructor args); it rebuilds via Exception.
        error = MergeConflict("fork", context={"path": "/tmp/x"})
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, MergeConflict)
        assert clone.context == {"path": "/tmp/x"}


class TestRecordRoundTrip:
    def test_every_registry_class_round_trips(self):
        for code, klass in error_code_registry().items():
            original = _instance_of(klass)
            record = original.to_record()
            assert record["code"] == code
            assert record["severity"] in SEVERITIES
            assert isinstance(record["recoverable"], bool)
            clone = ReproError.from_record(record)
            assert type(clone) is klass, code
            assert clone.to_record() == record, code

    @pytest.mark.parametrize("field,value", sorted(
        {"unit": "alu", "shard": "s0", "token": 9, "seed": 123,
         "batch": 2, "trial": 17, "cta": 1, "address": 640,
         "rix": 40, "scheme": "secded-dp", "workload": "saxpy",
         "kind": "gpu-recovery", "claim": "pipeline-detect",
         "path": "/var/journal"}.items()))
    def test_typed_fields_round_trip(self, field, value):
        error = ReproError("x", context={field: value})
        assert ReproError.from_record(error.to_record()).context \
            == {field: value}

    def test_typed_fields_accept_none(self):
        for field in CONTEXT_FIELD_TYPES:
            error = ReproError("x", context={field: None})
            assert error.context == {field: None}

    def test_typed_fields_reject_wrong_types(self):
        with pytest.raises(TypeError, match="must be int"):
            ReproError("x", context={"token": "seven"})
        with pytest.raises(TypeError, match="must be str"):
            ReproError("x", context={"unit": 7})
        with pytest.raises(TypeError, match="got bool"):
            ReproError("x", context={"seed": True})

    def test_nested_context_normalizes_tuples(self):
        error = ReproError("x", context={"plan": {"lanes": (0, 1, 2)}})
        assert error.context == {"plan": {"lanes": [0, 1, 2]}}
        record = error.to_record()
        assert ReproError.from_record(record).to_record() == record

    def test_context_depth_is_bounded(self):
        nested = {"a": {"b": {"c": {"d": {"e": 1}}}}}
        with pytest.raises(TypeError, match="nests deeper"):
            ReproError("x", context={"plan": nested})

    def test_non_json_context_rejected(self):
        with pytest.raises(TypeError, match="non-JSON"):
            ReproError("x", context={"plan": object()})

    def test_unknown_code_survives_round_trip(self):
        # A record from a newer engine: class falls back to ReproError
        # but the diagnostic identity is preserved.
        record = {"code": "future.unseen", "severity": "fatal",
                  "recoverable": False, "message": "novel",
                  "context": {}}
        clone = ReproError.from_record(record)
        assert type(clone) is ReproError
        assert clone.code == "future.unseen"
        assert ReproError.from_record(clone.to_record()).code == \
            "future.unseen"


SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro")

#: exception classes legitimately raised without a registry code:
#: builtin contract errors (TypeError at class-definition time in
#: errors.py), internal control-flow signals that never escape their
#: module, and SystemExit in CLIs.
_UNREGISTERED_ALLOWED = {
    "TypeError",           # registry/context contract enforcement
    "KernelHalt",          # warp-level control flow, caught by simulator
    "_Stale",              # replay-internal schema signal
    "SystemExit",
    "NotImplementedError",  # abstract interface methods (transport)
}


def _raised_class_names(path):
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    names = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        # `raise err` / `raise self.helper(...)` re-raise values built
        # at a registered construction site; only direct class names
        # are statically checkable.
        if isinstance(target, ast.Name) and target.id[:1].isupper():
            names.append((target.id, node.lineno))
    return names


class TestRaiseSiteCompleteness:
    def test_every_raise_site_uses_a_registered_code(self):
        registered = {klass.__name__
                      for klass in error_code_registry().values()}
        offenders = []
        for dirpath, _, filenames in os.walk(SRC_ROOT):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                for name, lineno in _raised_class_names(path):
                    if name in registered or \
                            name in _UNREGISTERED_ALLOWED:
                        continue
                    offenders.append(
                        f"{os.path.relpath(path, SRC_ROOT)}:{lineno} "
                        f"raises unregistered {name}")
        assert not offenders, "\n".join(offenders)
