"""Tests for the typed diagnostic registry: stable, unique, enforced."""

import re

import pytest

from repro.errors import (FabricError, InjectionError, LeaseExpired,
                          MergeConflict, ReproError, StaleFencingToken,
                          error_code_registry)

#: dot-namespaced: at least two lowercase segments
CODE_SHAPE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


class TestRegistry:
    def test_every_code_is_dot_namespaced(self):
        for code in error_code_registry():
            assert CODE_SHAPE.match(code), code

    def test_no_duplicate_codes(self):
        registry = error_code_registry()
        classes = list(registry.values())
        assert len({cls.code for cls in classes}) == len(classes)

    def test_registry_covers_fabric_diagnostics(self):
        registry = error_code_registry()
        assert registry["inject.lease_expired"] is LeaseExpired
        assert registry["inject.stale_fencing_token"] is StaleFencingToken
        assert registry["journal.merge_conflict"] is MergeConflict
        assert registry["inject.fabric"] is FabricError

    def test_instances_carry_their_code(self):
        assert StaleFencingToken("zombie").code == \
            "inject.stale_fencing_token"
        assert LeaseExpired("late").code == "inject.lease_expired"
        assert MergeConflict("fork").code == "journal.merge_conflict"

    def test_fabric_errors_are_injection_errors(self):
        # callers catching the subsystem error must see fabric failures
        assert issubclass(FabricError, InjectionError)
        assert issubclass(LeaseExpired, FabricError)
        assert issubclass(StaleFencingToken, FabricError)
        assert issubclass(MergeConflict, InjectionError)

    def test_registry_returns_a_copy(self):
        registry = error_code_registry()
        registry["bogus.code"] = RuntimeError
        assert "bogus.code" not in error_code_registry()


class TestEnforcement:
    def test_subclass_without_code_is_rejected(self):
        with pytest.raises(TypeError, match="must declare"):
            type("Anon", (ReproError,), {})

    def test_duplicate_code_is_rejected(self):
        with pytest.raises(TypeError, match="duplicate"):
            type("Imposter", (ReproError,),
                 {"code": "inject.lease_expired"})

    def test_malformed_code_is_rejected(self):
        for bad in ("flat", "Upper.case", "trailing.", ".leading",
                    "spa ce.code"):
            with pytest.raises(TypeError, match="dot-namespaced"):
                type("Bad", (ReproError,), {"code": bad})
