"""Tests for the workload suite: structure, verification, scheme matrix."""

import numpy as np
import pytest

from repro.compiler import compile_for_scheme, resilience_mode
from repro.ecc import SecDedDpSwap
from repro.errors import CompilationError, WorkloadError
from repro.gpu import ResilienceState, run_functional
from repro.workloads import (ALL_ORDER, MICRO_ORDER, RODINIA_ORDER,
                             WORKLOADS, get_workload)

SMALL = 0.25


class TestRegistry:
    def test_all_fifteen_registered(self):
        assert set(ALL_ORDER) | set(MICRO_ORDER) == set(WORKLOADS)
        assert len(ALL_ORDER) == 15
        assert len(RODINIA_ORDER) == 13
        assert not set(ALL_ORDER) & set(MICRO_ORDER)

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("doom")

    def test_paper_names_present(self):
        labels = {WORKLOADS[name].paper_name for name in ALL_ORDER}
        assert {"lavaMD", "b+tree", "srad_v2", "SNAP"} <= labels


@pytest.mark.parametrize("name", ALL_ORDER + MICRO_ORDER)
class TestEachWorkload:
    def test_builds_and_verifies(self, name):
        instance = get_workload(name).build(scale=SMALL, seed=11)
        memory = instance.fresh_memory()
        run_functional(instance.kernel, instance.launch, memory)
        assert instance.verify(memory), name

    def test_fresh_memory_is_independent(self, name):
        instance = get_workload(name).build(scale=SMALL, seed=11)
        first = instance.fresh_memory()
        second = instance.fresh_memory()
        first.words[:] = 0
        assert not np.array_equal(first.words, second.words) or \
            second.words.sum() == 0

    def test_unverified_fresh_image_fails(self, name):
        # Before running, the output region is empty: verify must fail
        # (guards against vacuous verifiers).
        instance = get_workload(name).build(scale=SMALL, seed=11)
        assert not instance.verify(instance.fresh_memory())

    def test_deterministic_given_seed(self, name):
        first = get_workload(name).build(scale=SMALL, seed=3)
        second = get_workload(name).build(scale=SMALL, seed=3)
        assert np.array_equal(first.memory.words, second.memory.words)

    def test_swap_ecc_compiles_and_verifies(self, name):
        instance = get_workload(name).build(scale=SMALL, seed=11)
        compiled = compile_for_scheme(instance.kernel, instance.launch,
                                      "swap-ecc")
        memory = instance.fresh_memory()
        state = ResilienceState(mode="swap", scheme=SecDedDpSwap())
        run_functional(compiled.kernel,
                       compiled.adjust_launch(instance.launch), memory,
                       state)
        assert instance.verify(memory)
        assert not state.detected


class TestInterthreadApplicability:
    def test_rodinia_accepts(self):
        for name in RODINIA_ORDER:
            instance = get_workload(name).build(scale=SMALL, seed=1)
            compiled = compile_for_scheme(instance.kernel, instance.launch,
                                          "interthread")
            assert compiled.thread_multiplier == 2

    @pytest.mark.parametrize("name", ["snap", "matmul"])
    def test_paper_failures_reproduce(self, name):
        instance = get_workload(name).build(scale=SMALL, seed=1)
        with pytest.raises(CompilationError):
            compile_for_scheme(instance.kernel, instance.launch,
                               "interthread")


class TestWorkloadCharacter:
    def test_lavamd_is_fp64_heavy(self):
        instance = get_workload("lavamd").build(scale=SMALL)
        ops = [i.op for i in instance.kernel.instructions]
        fp64 = sum(1 for op in ops if op.startswith("D"))
        assert fp64 >= 10

    def test_btree_is_integer_only(self):
        instance = get_workload("btree").build(scale=SMALL)
        assert not any(i.op.startswith(("F", "D"))
                       for i in instance.kernel.instructions)

    def test_snap_uses_shuffles(self):
        instance = get_workload("snap").build(scale=SMALL)
        assert any(i.op == "SHFL" for i in instance.kernel.instructions)

    def test_matmul_uses_full_ctas(self):
        instance = get_workload("matmul").build(scale=SMALL)
        assert instance.launch.threads_per_cta == 1024

    def test_scale_grows_problem(self):
        small = get_workload("btree").build(scale=0.25)
        large = get_workload("btree").build(scale=1.0)
        assert large.launch.grid_ctas > small.launch.grid_ctas
