"""Tests for certification-as-a-service.

The contract under test: cache hits are byte-identical and sweep
nothing; incremental recertification re-sweeps exactly the claims a
delta touched (asserted by counting enumerated strikes) and stitches
the rest forward with provenance; degradation serves prior
certificates *marked* while strict mode refuses them; and the
single-flight lock means two racing processes share one sweep.

The ``@slow`` classes add the chaos-CI scenarios: a SIGKILLed service
resumes its sweep from the journal, hand-corrupted entries quarantine
and fall through to fresh sweeps, and the socket path survives a
chaos-wrapped dialer.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.certify.service import CertificateService
from repro.certify.store import CertificateStore, scheme_cache_identity
from repro.ecc import DetectOnlySwap, ResidueCode, SecDedDpSwap
from repro.errors import CertificationError, StaleCertificate
from repro.inject.transport import InProcessTransport, unix_connect

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DRIVER = [sys.executable, "-m", "tests.certify.cert_service_driver"]


def make_service(tmp_path, **kwargs):
    store = CertificateStore(str(tmp_path / "cache"))
    return CertificateService(store, **kwargs)


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sweep_journal_records(store, key):
    path = os.path.join(store.sweeps_dir, key, "journal.jsonl")
    records = []
    with open(path) as handle:
        for line in handle:
            if line.strip():
                records.append(json.loads(line))
    return records


class TestHitPath:
    def test_miss_then_hit_is_byte_identical(self, tmp_path):
        service = make_service(tmp_path)
        first = service.lookup("parity")
        assert first.cache == "miss"
        second = service.lookup("parity")
        assert second.cache == "hit"
        assert canonical(second.payload) == canonical(first.payload)

    def test_hit_runs_no_sweep(self, tmp_path):
        service = make_service(tmp_path)
        service.lookup("parity")
        sweeps_before = service.counters["sweeps"]
        service.lookup("parity")
        assert service.counters["sweeps"] == sweeps_before

    def test_unknown_scheme_is_typed(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(CertificationError):
            service.lookup("nonesuch")

    def test_distinct_seeds_get_distinct_entries(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        first = CertificateService(store, seed=0).lookup("mod7")
        second = CertificateService(store, seed=1).lookup("mod7")
        assert first.cache == second.cache == "miss"
        assert first.key != second.key


class TestIncrementalRecertification:
    def registry(self, policy):
        return {"secded-dp":
                lambda: SecDedDpSwap(check_correction=policy)}

    def test_policy_delta_resweeps_only_the_policy_claim(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        baseline = CertificateService(
            store, registry=self.registry("accept")).lookup("secded-dp")
        assert baseline.cache == "miss"
        full_strikes = baseline.payload["certificate"]["strikes_swept"]

        served = CertificateService(
            store, registry=self.registry("strict")).lookup("secded-dp")
        assert served.cache == "incremental"
        provenance = served.payload["provenance"]
        assert provenance["recertified"] == \
            ["corrects-all-single-storage"]
        assert provenance["parent_key"] == baseline.key
        # the partial sweep enumerated only the touched claim's strike
        # tiers — a small fraction of the full space
        partial_strikes = served.payload["certificate"]["strikes_swept"]
        assert 0 < partial_strikes < full_strikes / 10
        # every untouched claim came forward with provenance
        carried = provenance["carried_forward"]
        assert set(carried) == \
            set(baseline.payload["certificate"]["claims"]) \
            - {"corrects-all-single-storage"}
        assert all(value == baseline.key for value in carried.values())

    def test_stitched_certificate_is_complete_and_cached(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        CertificateService(
            store, registry=self.registry("accept")).lookup("secded-dp")
        strict_service = CertificateService(
            store, registry=self.registry("strict"))
        stitched = strict_service.lookup("secded-dp")
        assert set(stitched.payload["certificate"]["claims"]) == \
            set(stitched.payload["claim_versions"])
        assert stitched.payload["certificate"]["passed"] is True
        # the stitched entry is now a first-class cache hit
        again = strict_service.lookup("secded-dp")
        assert again.cache == "hit"
        assert canonical(again.payload) == canonical(stitched.payload)

    def test_carried_claims_keep_their_prior_verdicts(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        baseline = CertificateService(
            store, registry=self.registry("accept")).lookup("secded-dp")
        served = CertificateService(
            store, registry=self.registry("strict")).lookup("secded-dp")
        for name in served.payload["provenance"]["carried_forward"]:
            assert served.payload["certificate"]["claims"][name] == \
                baseline.payload["certificate"]["claims"][name]

    def test_modulus_delta_is_a_full_resweep(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        CertificateService(store, registry={
            "res": lambda: DetectOnlySwap(ResidueCode(7))}).lookup("res")
        served = CertificateService(store, registry={
            "res": lambda: DetectOnlySwap(ResidueCode(15))}).lookup("res")
        # every claim depends on the code identity, so nothing carries
        assert served.cache == "miss"
        assert served.payload["provenance"]["parent_key"] is None


class TestGracefulDegradation:
    def test_stale_served_marked_while_sweep_in_flight(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        prior = CertificateService(store, registry={
            "secded-dp": lambda: SecDedDpSwap()}).lookup("secded-dp")
        service = CertificateService(store, registry={
            "secded-dp":
            lambda: SecDedDpSwap(check_correction="strict")})
        scheme = SecDedDpSwap(check_correction="strict")
        _, _, _, new_key = scheme_cache_identity(scheme, "fast", 0)
        holder = store.lock(new_key)
        assert holder.acquire(blocking=False)
        try:
            served = service.lookup("secded-dp")
        finally:
            holder.release()
        assert served.cache == "stale"
        assert served.key == prior.key
        assert served.staleness["reason"] == "sweep_in_flight"
        assert served.staleness["superseded_by_key"] == new_key
        assert served.staleness["age_s"] >= 0.0
        assert service.counters["stale_served"] == 1

    def test_strict_turns_staleness_into_typed_refusal(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        CertificateService(store, registry={
            "secded-dp": lambda: SecDedDpSwap()}).lookup("secded-dp")
        service = CertificateService(store, strict=True, registry={
            "secded-dp":
            lambda: SecDedDpSwap(check_correction="strict")})
        scheme = SecDedDpSwap(check_correction="strict")
        _, _, _, new_key = scheme_cache_identity(scheme, "fast", 0)
        holder = store.lock(new_key)
        assert holder.acquire(blocking=False)
        try:
            with pytest.raises(StaleCertificate) as info:
                service.lookup("secded-dp")
        finally:
            holder.release()
        assert info.value.context["staleness"]["superseded_by_key"] \
            == new_key
        assert service.counters["refusals"] == 1

    def test_no_prior_waits_out_the_lock_then_hits(self, tmp_path):
        service = make_service(tmp_path, lock_timeout_s=20.0)
        scheme = service._registry["parity"]()
        _, _, _, key = scheme_cache_identity(scheme, "fast", 0)
        holder = service.store.lock(key)
        assert holder.acquire(blocking=False)

        def sweep_and_release():
            # simulate the in-flight owner finishing its sweep
            time.sleep(0.2)
            owner = CertificateService(service.store)
            # the owner holds the fcntl lock already (this thread's
            # handle), so publish directly and release
            served = owner._certify_under_lock(
                "parity", scheme, key,
                *scheme_cache_identity(scheme, "fast", 0)[:3])
            assert served.cache == "miss"
            holder.release()

        thread = threading.Thread(target=sweep_and_release)
        thread.start()
        served = service.lookup("parity")
        thread.join(timeout=30.0)
        assert served.cache == "hit"

    def test_corrupt_entry_falls_through_to_fresh_sweep(self, tmp_path):
        service = make_service(tmp_path)
        first = service.lookup("parity")
        path = service.store.entry_path(first.key)
        with open(path, "w") as handle:
            handle.write('{"kind": "swapcodes-cert-entry", "torn')
        served = service.lookup("parity")
        assert served.cache == "miss"
        assert service.store.counters["quarantined"] >= 1
        records = service.store.dead_letter_records()
        assert any(record["error"]["code"] == "certify.store_corrupt"
                   for record in records)
        assert canonical(served.payload["certificate"]) == \
            canonical(first.payload["certificate"])


def _race_lookup(cache_dir, queue):
    store = CertificateStore(cache_dir)
    service = CertificateService(store)
    served = service.lookup("parity")
    queue.put((served.cache, served.key, canonical(served.payload)))


class TestSingleFlight:
    def test_two_processes_share_exactly_one_sweep(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        racers = [context.Process(target=_race_lookup,
                                  args=(cache_dir, queue))
                  for _ in range(2)]
        for racer in racers:
            racer.start()
        results = [queue.get(timeout=120) for _ in racers]
        for racer in racers:
            racer.join(timeout=30)
            assert racer.exitcode == 0
        # both served the same key, byte-identically
        assert len({key for _, key, _ in results}) == 1
        assert len({payload for _, _, payload in results}) == 1
        # and the shared sweep journal shows exactly one sweep start
        store = CertificateStore(cache_dir)
        key = results[0][1]
        records = sweep_journal_records(store, key)
        starts = [record for record in records
                  if record.get("type") == "unit_started"]
        assert len(starts) == 1


class TestTransportLoop:
    def run_service(self, service, listener):
        stop = threading.Event()
        thread = threading.Thread(target=service.serve,
                                  args=(listener, stop), daemon=True)
        thread.start()
        return stop, thread

    def test_in_process_transport_round_trip(self, tmp_path):
        service = make_service(tmp_path)
        transport = InProcessTransport()
        stop, thread = self.run_service(service, transport)
        try:
            connection = transport.connect()
            connection.send({"kind": "certify", "scheme": "parity"})
            response = connection.recv(timeout=60.0)
            assert response["kind"] == "certificate"
            assert response["cache"] == "miss"
            assert response["payload"]["certificate"]["passed"] is True
            connection.send({"kind": "stats"})
            stats = connection.recv(timeout=10.0)
            assert stats["counters"]["misses"] == 1
            connection.send({"kind": "shutdown"})
            assert connection.recv(timeout=10.0)["kind"] == "bye"
        finally:
            stop.set()
            thread.join(timeout=10.0)

    def test_strict_refusal_travels_as_typed_record(self, tmp_path):
        store = CertificateStore(str(tmp_path / "cache"))
        CertificateService(store, registry={
            "secded-dp": lambda: SecDedDpSwap()}).lookup("secded-dp")
        service = CertificateService(store, registry={
            "secded-dp":
            lambda: SecDedDpSwap(check_correction="strict")})
        scheme = SecDedDpSwap(check_correction="strict")
        _, _, _, new_key = scheme_cache_identity(scheme, "fast", 0)
        holder = store.lock(new_key)
        assert holder.acquire(blocking=False)
        try:
            response = service.handle({"kind": "certify",
                                       "scheme": "secded-dp",
                                       "strict": True})
        finally:
            holder.release()
        assert response["kind"] == "refusal"
        assert response["error"]["code"] == "certify.stale_certificate"

    def test_unknown_scheme_travels_as_error(self, tmp_path):
        service = make_service(tmp_path)
        response = service.handle({"kind": "certify",
                                   "scheme": "nonesuch"})
        assert response["kind"] == "error"
        assert response["error"]["code"] == "certify.misconfigured"


def _spawn_driver(*extra, env=None):
    env = dict(os.environ if env is None else env)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(DRIVER + list(extra), cwd=REPO_ROOT,
                            env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


def _wait_for_line(process, token, deadline_s=60.0):
    deadline = time.time() + deadline_s
    lines = []
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if token in line:
            return line
    raise AssertionError(
        f"driver never printed {token!r}; got: {''.join(lines)}")


@pytest.mark.slow
class TestServiceChaos:
    """The cert-service-chaos CI scenarios (3-seed matrix)."""

    def seed(self):
        return int(os.environ.get("REPRO_STRESS_SEED", "0"))

    def test_sigkill_mid_sweep_resumes_to_complete_cert(self, tmp_path):
        cache = str(tmp_path / "cache")
        sock = str(tmp_path / "certd.sock")
        hold = str(tmp_path / "hold")
        with open(hold, "w") as handle:
            handle.write("hold\n")
        victim = _spawn_driver("--listen", sock, "--cache-dir", cache,
                               "--seed", str(self.seed()),
                               "--hold-file", hold)
        client = None
        try:
            _wait_for_line(victim, "SERVICE_READY")
            client = _spawn_driver("--client", sock,
                                   "--scheme", "secded-dp",
                                   "--timeout", "120")
            _wait_for_line(victim, "SWEEP_STARTED")
            victim.send_signal(signal.SIGKILL)
            victim.wait(30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(30)
        os.unlink(hold)

        # the store survived the kill with zero torn entries
        audit = CertificateStore(cache).verify_all()
        assert audit["quarantined"] == []

        # a restarted service completes the sweep and serves a full,
        # verified certificate for the same key
        replacement = _spawn_driver("--listen", sock, "--cache-dir",
                                    cache, "--seed", str(self.seed()))
        try:
            _wait_for_line(replacement, "SERVICE_READY")
            if client is not None:
                client_output = client.stdout.read()
                assert client.wait(300) == 0, client_output
                assert "CLIENT_OK" in client_output
                assert "passed=True" in client_output
            connection = unix_connect(sock, timeout=10.0)
            connection.send({"kind": "certify", "scheme": "secded-dp"})
            response = connection.recv(timeout=120.0)
            connection.send({"kind": "shutdown"})
            connection.recv(timeout=10.0)
            connection.close()
        finally:
            if replacement.poll() is None:
                replacement.kill()
            replacement.wait(60)
        assert response["kind"] == "certificate"
        assert response["payload"]["certificate"]["passed"] is True
        assert set(response["payload"]["certificate"]["claims"]) == \
            set(response["payload"]["claim_versions"])
        final_audit = CertificateStore(cache).verify_all()
        assert final_audit["quarantined"] == []
        assert len(final_audit["ok"]) >= 1

    def test_hand_corrupted_entry_quarantines_and_resweeps(
            self, tmp_path):
        cache = str(tmp_path / "cache")
        store = CertificateStore(cache)
        service = CertificateService(store, seed=self.seed())
        first = service.lookup("mod7")
        # hand-corrupt the cached entry on disk (one byte in the
        # payload body, envelope left intact)
        path = store.entry_path(first.key)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw.replace('"passed": true',
                                     '"passed": false'))
        served = CertificateService(store,
                                    seed=self.seed()).lookup("mod7")
        assert served.cache == "miss"
        assert served.payload["certificate"]["passed"] is True
        records = store.dead_letter_records()
        assert any(record["error"]["code"] == "certify.store_corrupt"
                   for record in records)
        audit = store.verify_all()
        assert audit["quarantined"] == []
        assert first.key in audit["ok"]

    def test_chaos_dialer_client_still_gets_certified(self, tmp_path):
        cache = str(tmp_path / "cache")
        sock = str(tmp_path / "certd.sock")
        server = _spawn_driver("--listen", sock, "--cache-dir", cache,
                               "--seed", str(self.seed()))
        try:
            _wait_for_line(server, "SERVICE_READY")
            shas = []
            for index in range(2):
                client = _spawn_driver(
                    "--client", sock, "--scheme", "parity",
                    "--chaos-seed", str(self.seed() + 11 + index),
                    "--drop", "0.15", "--dup", "0.15",
                    "--reorder", "0.1", "--timeout", "120")
                output = client.stdout.read()
                assert client.wait(300) == 0, output
                assert "CLIENT_OK" in output
                shas.append(output.split("sha=")[1].split()[0])
            # chaos or not, both clients saw the same payload bytes
            assert shas[0] == shas[1]
            connection = unix_connect(sock, timeout=10.0)
            connection.send({"kind": "shutdown"})
            connection.recv(timeout=10.0)
            connection.close()
        finally:
            if server.poll() is None:
                server.kill()
            server.wait(60)
        audit = CertificateStore(cache).verify_all()
        assert audit["quarantined"] == []
