"""Acceptance tests for the guarantee certifier.

Two directions: every *registered* scheme must earn a clean fast-mode
certificate (the paper's claim matrix holds), and deliberately broken
schemes — tampered parity columns, the naive no-DP strawman — must earn
FAILED certificates carrying weight-minimal counterexamples (the
certifier actually checks something).
"""

import json

import pytest

from repro.certify import (CERTIFICATE_SCHEMA_VERSION, Certifier, Strike,
                           certification_registry, certify_all,
                           certify_scheme, claim_matrix,
                           make_certified_scheme, tampered_secded_dp,
                           write_certificate)
from repro.ecc import NaiveSecDedSwap, SecDedDpSwap
from repro.errors import CertificationError, InvalidArgument


@pytest.fixture(scope="module")
def fast_certificates():
    return certify_all(mode="fast", seed=0)


class TestRegisteredSchemesPass:
    def test_every_registered_scheme_certifies(self, fast_certificates):
        assert set(fast_certificates) == set(certification_registry())
        for name, certificate in fast_certificates.items():
            assert certificate.passed, (name, certificate.violated)

    def test_sweep_is_nontrivial(self, fast_certificates):
        for name, certificate in fast_certificates.items():
            assert certificate.strikes_swept > 1000, name
            assert certificate.tiers.get("exhaustive", 0) > 0, name
            for claim_name, report in certificate.claims.items():
                assert report.swept > 0, (name, claim_name)

    def test_claim_matrix_matches_scheme_family(self, fast_certificates):
        assert "corrects-all-single-storage" in \
            fast_certificates["secded-dp"].claims
        assert "ded-on-doubles" in fast_certificates["secded-dp"].claims
        assert "detects-all-single-storage" in \
            fast_certificates["parity"].claims
        assert "residue-arithmetic-coverage" in \
            fast_certificates["mod7"].claims
        assert "ded-on-doubles" not in fast_certificates["sec-dp"].claims
        for certificate in fast_certificates.values():
            assert "never-miscorrects-pipeline" in certificate.claims
            assert "batched-read-equivalence" in certificate.claims

    def test_full_mode_adds_adversarial_tiers(self):
        certificate = certify_scheme("secded-dp", mode="full", seed=1)
        assert certificate.passed
        assert certificate.tiers.get("burst", 0) > 0
        assert certificate.tiers.get("random", 0) > 0

    def test_certification_is_seed_deterministic(self):
        first = certify_scheme("mod7", mode="full", seed=9)
        second = certify_scheme("mod7", mode="full", seed=9)
        assert first.to_dict() == second.to_dict()


class TestBrokenSchemesFail:
    def test_zero_column_tamper_breaks_single_error_detection(self):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("zero-column"))
        assert not certificate.passed
        assert "detects-all-single-pipeline" in certificate.violated
        counterexample = \
            certificate.claims["detects-all-single-pipeline"].counterexample
        assert counterexample["weight"] == 1
        # the zeroed column is data bit 11: the minimal strike names it
        assert counterexample["strike"]["data_error"] == "0x800"

    def test_duplicate_column_tamper_breaks_storage_correction(self):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("duplicate-column"))
        assert not certificate.passed
        assert "corrects-all-single-storage" in certificate.violated
        counterexample = \
            certificate.claims["corrects-all-single-storage"].counterexample
        assert counterexample["weight"] == 1

    def test_naive_strawman_actively_miscorrects(self):
        certificate = Certifier(mode="fast").certify(NaiveSecDedSwap(),
                                                     name="naive-secded")
        assert "never-miscorrects-pipeline" in certificate.violated
        counterexample = \
            certificate.claims["never-miscorrects-pipeline"].counterexample
        assert counterexample["status"] == "corrected"
        assert counterexample["returned_data"] != \
            counterexample["golden_data"]

    def test_counterexamples_are_minimal_after_shrinking(self):
        certificate = Certifier(mode="full").certify(
            tampered_secded_dp("zero-column"))
        report = certificate.claims["detects-all-single-pipeline"]
        assert report.counterexample["weight"] == 1

    def test_tamper_factory_validates_inputs(self):
        with pytest.raises(CertificationError):
            tampered_secded_dp("missing-row")
        with pytest.raises(CertificationError):
            tampered_secded_dp(position=77)


class TestCertificateArtifact:
    def test_write_certificate_round_trips(self, tmp_path):
        certificate = certify_scheme("parity", mode="fast")
        path = write_certificate(certificate, str(tmp_path))
        assert path.endswith("CERTIFICATE_parity.json")
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["version"] == CERTIFICATE_SCHEMA_VERSION
        assert loaded["kind"] == "swapcodes-guarantee-certificate"
        assert loaded["scheme"] == "parity"
        assert loaded["passed"] is True
        assert loaded["violated"] == []
        assert set(loaded["claims"]) == set(certificate.claims)
        for report in loaded["claims"].values():
            assert report["verdict"] == "certified"
            assert report["counterexample"] is None

    def test_failed_certificate_serializes_counterexample(self, tmp_path):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("zero-column"))
        path = write_certificate(certificate, str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["passed"] is False
        report = loaded["claims"]["detects-all-single-pipeline"]
        assert report["verdict"] == "violated"
        assert report["counterexample"]["strike"]["placement"] in (
            "pipeline-original", "pipeline-shadow-value")

    def test_write_certificate_rejects_unwritable_path(self):
        certificate = certify_scheme("parity", mode="fast")
        with pytest.raises(CertificationError):
            write_certificate(certificate, "/proc/no-such-dir")


class TestRegistryAndConfig:
    def test_registry_spans_every_figure11_family(self):
        registry = certification_registry()
        for name in ("parity", "mod3", "mod255", "ted", "secded-dp",
                     "secded-dp-strict", "sec-dp"):
            assert name in registry
        assert "naive" not in " ".join(registry)

    def test_unknown_scheme_raises(self):
        with pytest.raises(CertificationError):
            make_certified_scheme("hamming-mystery")

    def test_bad_certifier_config_raises(self):
        with pytest.raises(CertificationError):
            Certifier(mode="extreme")
        with pytest.raises(CertificationError):
            Certifier(random_base_words=-1)

    def test_claim_matrix_strict_policy_scopes_storage_claim(self):
        strict = claim_matrix(SecDedDpSwap(check_correction="strict"))
        accept = claim_matrix(SecDedDpSwap())
        strike_on_check = Strike("storage", check_error=0b1)
        assert accept["corrects-all-single-storage"].covers(strike_on_check)
        assert not strict["corrects-all-single-storage"].covers(
            strike_on_check)


class TestArtifactDirValidation:
    def test_empty_out_dir_rejected(self):
        certificate = certify_scheme("parity", mode="fast")
        with pytest.raises(InvalidArgument):
            write_certificate(certificate, "")

    def test_non_string_out_dir_rejected(self):
        certificate = certify_scheme("parity", mode="fast")
        with pytest.raises(InvalidArgument):
            write_certificate(certificate, None)

    def test_out_dir_existing_as_file_rejected(self, tmp_path):
        victim = tmp_path / "artifact"
        victim.write_text("a file, not a directory")
        certificate = certify_scheme("parity", mode="fast")
        with pytest.raises(InvalidArgument) as info:
            write_certificate(certificate, str(victim))
        assert info.value.context["path"] == str(victim)


class TestAtomicCertificateWrite:
    def test_write_leaves_no_staging_files(self, tmp_path):
        certificate = certify_scheme("parity", mode="fast")
        write_certificate(certificate, str(tmp_path))
        assert sorted(path.name for path in tmp_path.iterdir()) == \
            ["CERTIFICATE_parity.json"]

    def test_overwrite_is_old_or_new_never_torn(self, tmp_path):
        # rewrite the artifact while re-reading it: every read parses
        certificate = certify_scheme("parity", mode="fast")
        path = write_certificate(certificate, str(tmp_path))
        for _ in range(40):
            write_certificate(certificate, str(tmp_path))
            with open(path, encoding="utf-8") as handle:
                loaded = json.load(handle)
            assert loaded["scheme"] == "parity"

    def test_kill_during_write_never_leaves_torn_artifact(self, tmp_path):
        """SIGKILL a writer loop mid-``write_certificate``; the artifact
        under the final name must always be absent or fully valid."""
        import os
        import signal
        import subprocess
        import sys
        import time

        out_dir = str(tmp_path / "artifacts")
        script = (
            "from repro.certify import certify_scheme, write_certificate\n"
            "import sys\n"
            "certificate = certify_scheme('parity', mode='fast')\n"
            "print('WRITING', flush=True)\n"
            "while True:\n"
            f"    write_certificate(certificate, {out_dir!r})\n")
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        for attempt in range(3):
            victim = subprocess.Popen(
                [sys.executable, "-c", script], cwd=repo_root, env=env,
                stdout=subprocess.PIPE, text=True)
            assert "WRITING" in victim.stdout.readline()
            time.sleep(0.05 + attempt * 0.03)
            victim.send_signal(signal.SIGKILL)
            victim.wait(30)
            final = os.path.join(out_dir, "CERTIFICATE_parity.json")
            if os.path.exists(final):
                with open(final, encoding="utf-8") as handle:
                    loaded = json.load(handle)
                assert loaded["scheme"] == "parity"
                assert loaded["passed"] is True


class TestPartialCertification:
    def test_only_restricts_the_claim_set(self):
        certificate = certify_scheme(
            "secded-dp", only=["corrects-all-single-storage"])
        assert set(certificate.claims) == {"corrects-all-single-storage"}
        assert certificate.passed

    def test_partial_sweep_enumerates_fewer_strikes(self):
        full = certify_scheme("secded-dp")
        partial = certify_scheme(
            "secded-dp", only=["corrects-all-single-storage"])
        assert 0 < partial.strikes_swept < full.strikes_swept / 10
        # the storage-only claim needs no pipeline placements at all
        report = partial.claims["corrects-all-single-storage"]
        assert report.swept == partial.strikes_swept

    def test_partial_verdict_matches_full_sweep_verdict(self):
        full = certify_scheme("secded-dp")
        partial = certify_scheme(
            "secded-dp", only=["ded-on-doubles"])
        assert partial.claims["ded-on-doubles"].swept == \
            full.claims["ded-on-doubles"].swept
        assert partial.claims["ded-on-doubles"].verdict == \
            full.claims["ded-on-doubles"].verdict

    def test_unknown_claim_rejected(self):
        with pytest.raises(CertificationError):
            certify_scheme("secded-dp", only=["no-such-claim"])

    def test_full_certificate_unchanged_by_partial_support(self):
        # the only=None path must stay byte-identical to the seed
        # behavior: a partial feature cannot perturb full sweeps
        first = certify_scheme("mod7", seed=3)
        second = certify_scheme("mod7", seed=3, only=None)
        assert first.to_dict() == second.to_dict()
