"""Acceptance tests for the guarantee certifier.

Two directions: every *registered* scheme must earn a clean fast-mode
certificate (the paper's claim matrix holds), and deliberately broken
schemes — tampered parity columns, the naive no-DP strawman — must earn
FAILED certificates carrying weight-minimal counterexamples (the
certifier actually checks something).
"""

import json

import pytest

from repro.certify import (CERTIFICATE_SCHEMA_VERSION, Certifier, Strike,
                           certification_registry, certify_all,
                           certify_scheme, claim_matrix,
                           make_certified_scheme, tampered_secded_dp,
                           write_certificate)
from repro.ecc import NaiveSecDedSwap, SecDedDpSwap
from repro.errors import CertificationError


@pytest.fixture(scope="module")
def fast_certificates():
    return certify_all(mode="fast", seed=0)


class TestRegisteredSchemesPass:
    def test_every_registered_scheme_certifies(self, fast_certificates):
        assert set(fast_certificates) == set(certification_registry())
        for name, certificate in fast_certificates.items():
            assert certificate.passed, (name, certificate.violated)

    def test_sweep_is_nontrivial(self, fast_certificates):
        for name, certificate in fast_certificates.items():
            assert certificate.strikes_swept > 1000, name
            assert certificate.tiers.get("exhaustive", 0) > 0, name
            for claim_name, report in certificate.claims.items():
                assert report.swept > 0, (name, claim_name)

    def test_claim_matrix_matches_scheme_family(self, fast_certificates):
        assert "corrects-all-single-storage" in \
            fast_certificates["secded-dp"].claims
        assert "ded-on-doubles" in fast_certificates["secded-dp"].claims
        assert "detects-all-single-storage" in \
            fast_certificates["parity"].claims
        assert "residue-arithmetic-coverage" in \
            fast_certificates["mod7"].claims
        assert "ded-on-doubles" not in fast_certificates["sec-dp"].claims
        for certificate in fast_certificates.values():
            assert "never-miscorrects-pipeline" in certificate.claims
            assert "batched-read-equivalence" in certificate.claims

    def test_full_mode_adds_adversarial_tiers(self):
        certificate = certify_scheme("secded-dp", mode="full", seed=1)
        assert certificate.passed
        assert certificate.tiers.get("burst", 0) > 0
        assert certificate.tiers.get("random", 0) > 0

    def test_certification_is_seed_deterministic(self):
        first = certify_scheme("mod7", mode="full", seed=9)
        second = certify_scheme("mod7", mode="full", seed=9)
        assert first.to_dict() == second.to_dict()


class TestBrokenSchemesFail:
    def test_zero_column_tamper_breaks_single_error_detection(self):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("zero-column"))
        assert not certificate.passed
        assert "detects-all-single-pipeline" in certificate.violated
        counterexample = \
            certificate.claims["detects-all-single-pipeline"].counterexample
        assert counterexample["weight"] == 1
        # the zeroed column is data bit 11: the minimal strike names it
        assert counterexample["strike"]["data_error"] == "0x800"

    def test_duplicate_column_tamper_breaks_storage_correction(self):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("duplicate-column"))
        assert not certificate.passed
        assert "corrects-all-single-storage" in certificate.violated
        counterexample = \
            certificate.claims["corrects-all-single-storage"].counterexample
        assert counterexample["weight"] == 1

    def test_naive_strawman_actively_miscorrects(self):
        certificate = Certifier(mode="fast").certify(NaiveSecDedSwap(),
                                                     name="naive-secded")
        assert "never-miscorrects-pipeline" in certificate.violated
        counterexample = \
            certificate.claims["never-miscorrects-pipeline"].counterexample
        assert counterexample["status"] == "corrected"
        assert counterexample["returned_data"] != \
            counterexample["golden_data"]

    def test_counterexamples_are_minimal_after_shrinking(self):
        certificate = Certifier(mode="full").certify(
            tampered_secded_dp("zero-column"))
        report = certificate.claims["detects-all-single-pipeline"]
        assert report.counterexample["weight"] == 1

    def test_tamper_factory_validates_inputs(self):
        with pytest.raises(CertificationError):
            tampered_secded_dp("missing-row")
        with pytest.raises(CertificationError):
            tampered_secded_dp(position=77)


class TestCertificateArtifact:
    def test_write_certificate_round_trips(self, tmp_path):
        certificate = certify_scheme("parity", mode="fast")
        path = write_certificate(certificate, str(tmp_path))
        assert path.endswith("CERTIFICATE_parity.json")
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["version"] == CERTIFICATE_SCHEMA_VERSION
        assert loaded["kind"] == "swapcodes-guarantee-certificate"
        assert loaded["scheme"] == "parity"
        assert loaded["passed"] is True
        assert loaded["violated"] == []
        assert set(loaded["claims"]) == set(certificate.claims)
        for report in loaded["claims"].values():
            assert report["verdict"] == "certified"
            assert report["counterexample"] is None

    def test_failed_certificate_serializes_counterexample(self, tmp_path):
        certificate = Certifier(mode="fast").certify(
            tampered_secded_dp("zero-column"))
        path = write_certificate(certificate, str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["passed"] is False
        report = loaded["claims"]["detects-all-single-pipeline"]
        assert report["verdict"] == "violated"
        assert report["counterexample"]["strike"]["placement"] in (
            "pipeline-original", "pipeline-shadow-value")

    def test_write_certificate_rejects_unwritable_path(self):
        certificate = certify_scheme("parity", mode="fast")
        with pytest.raises(CertificationError):
            write_certificate(certificate, "/proc/no-such-dir")


class TestRegistryAndConfig:
    def test_registry_spans_every_figure11_family(self):
        registry = certification_registry()
        for name in ("parity", "mod3", "mod255", "ted", "secded-dp",
                     "secded-dp-strict", "sec-dp"):
            assert name in registry
        assert "naive" not in " ".join(registry)

    def test_unknown_scheme_raises(self):
        with pytest.raises(CertificationError):
            make_certified_scheme("hamming-mystery")

    def test_bad_certifier_config_raises(self):
        with pytest.raises(CertificationError):
            Certifier(mode="extreme")
        with pytest.raises(CertificationError):
            Certifier(random_base_words=-1)

    def test_claim_matrix_strict_policy_scopes_storage_claim(self):
        strict = claim_matrix(SecDedDpSwap(check_correction="strict"))
        accept = claim_matrix(SecDedDpSwap())
        strike_on_check = Strike("storage", check_error=0b1)
        assert accept["corrects-all-single-storage"].covers(strike_on_check)
        assert not strict["corrects-all-single-storage"].covers(
            strike_on_check)
