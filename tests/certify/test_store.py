"""Tests for the tamper-evident, crash-safe certificate store.

Three properties carry the store's contract: a verified entry round-
trips byte-identically; a corrupt or torn entry is *never served* —
it is quarantined to the dead-letter directory with a typed record and
the read degrades to a miss; and concurrent readers racing an
``os.replace`` publish see the old payload or the new one, never a
torn hybrid.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.certify.claims import claim_matrix, claim_versions
from repro.certify.store import (CACHE_SCHEMA_VERSION, CertificateStore,
                                 build_cache_payload, certificate_key,
                                 fault_model_fingerprint,
                                 scheme_cache_identity, scheme_fingerprint,
                                 stitch_certificate, touched_claims)
from repro.ecc import DetectOnlySwap, ParityCode, SecDedDpSwap
from repro.errors import InvalidArgument

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def make_store(tmp_path, name="cache"):
    return CertificateStore(str(tmp_path / name))


def a_key(tag="ab"):
    return tag * 32


class TestKeyDerivation:
    def test_same_scheme_same_key(self):
        first = scheme_cache_identity(SecDedDpSwap(), "fast", 0)
        second = scheme_cache_identity(SecDedDpSwap(), "fast", 0)
        assert first == second

    def test_policy_changes_fingerprint_and_key(self):
        accept = scheme_cache_identity(SecDedDpSwap(), "fast", 0)
        strict = scheme_cache_identity(
            SecDedDpSwap(check_correction="strict"), "fast", 0)
        assert accept[0]["policy"] == "accept"
        assert strict[0]["policy"] == "strict"
        assert accept[3] != strict[3]

    def test_mode_and_seed_change_key(self):
        scheme = DetectOnlySwap(ParityCode())
        fp = scheme_fingerprint(scheme)
        versions = claim_versions(claim_matrix(scheme))
        keys = {certificate_key(fp, versions,
                                fault_model_fingerprint(mode, seed))
                for mode in ("fast", "full") for seed in (0, 1)}
        assert len(keys) == 4

    def test_h_matrix_hash_distinguishes_codes(self):
        parity = scheme_fingerprint(DetectOnlySwap(ParityCode()))
        secded = scheme_fingerprint(SecDedDpSwap())
        assert parity["h_matrix"] != secded["h_matrix"]

    def test_claim_version_bump_changes_key(self):
        scheme = SecDedDpSwap()
        fp = scheme_fingerprint(scheme)
        versions = claim_versions(claim_matrix(scheme))
        fault = fault_model_fingerprint("fast", 0)
        bumped = dict(versions)
        bumped["ded-on-doubles"] += 1
        assert certificate_key(fp, versions, fault) != \
            certificate_key(fp, bumped, fault)


class TestValidation:
    def test_empty_cache_dir_rejected(self):
        with pytest.raises(InvalidArgument):
            CertificateStore("")

    def test_non_string_cache_dir_rejected(self):
        with pytest.raises(InvalidArgument):
            CertificateStore(None)

    def test_cache_dir_existing_as_file_rejected(self, tmp_path):
        victim = tmp_path / "occupied"
        victim.write_text("not a directory")
        with pytest.raises(InvalidArgument) as info:
            CertificateStore(str(victim))
        assert info.value.context["path"] == str(victim)


class TestEnvelopeRoundTrip:
    def test_put_get_round_trips_exactly(self, tmp_path):
        store = make_store(tmp_path)
        payload = {"version": CACHE_SCHEMA_VERSION, "scheme": "parity",
                   "certificate": {"passed": True, "claims": {}}}
        store.put(a_key(), payload)
        assert store.get(a_key()) == payload

    def test_get_is_byte_stable_across_reads(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1, "nested": {"deep": [1, 2, 3]}})
        first = json.dumps(store.get(a_key()), sort_keys=True)
        second = json.dumps(store.get(a_key()), sort_keys=True)
        assert first == second

    def test_missing_entry_is_a_clean_miss(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get(a_key()) is None
        assert store.counters["quarantined"] == 0

    def test_envelope_records_both_digests(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        with open(store.entry_path(a_key())) as handle:
            envelope = json.load(handle)
        assert envelope["kind"] == "swapcodes-cert-entry"
        assert len(envelope["sha256"]) == 64
        assert isinstance(envelope["crc32"], int)


class TestQuarantine:
    def corrupt(self, store, key, mutilate):
        path = store.entry_path(key)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(mutilate(raw))

    @pytest.mark.parametrize("mutilate", [
        lambda raw: raw[:len(raw) // 2],              # torn tail
        lambda raw: raw.replace('"n": 1', '"n": 2'),  # payload flip
        lambda raw: "not json at all",                # total garbage
        lambda raw: '{"kind": "wrong-kind"}',         # wrong envelope
    ], ids=["torn", "bitflip", "garbage", "wrong-kind"])
    def test_corrupt_entry_never_served(self, tmp_path, mutilate):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        self.corrupt(store, a_key(), mutilate)
        assert store.get(a_key()) is None
        assert store.counters["quarantined"] == 1
        # the corrupt bytes left the serving path entirely
        assert not os.path.exists(store.entry_path(a_key()))

    def test_quarantine_writes_typed_dead_letter_record(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        self.corrupt(store, a_key(), lambda raw: raw[:40])
        store.get(a_key())
        records = store.dead_letter_records()
        assert len(records) == 1
        assert records[0]["key"] == a_key()
        assert records[0]["error"]["code"] == "certify.store_corrupt"
        quarantined = [name for name
                       in os.listdir(store.dead_letter_dir)
                       if name.endswith(".quarantined")]
        assert len(quarantined) == 1

    def test_key_mismatch_is_tampering(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key("cd"), {"n": 1})
        os.replace(store.entry_path(a_key("cd")),
                   store.entry_path(a_key("ef")))
        assert store.get(a_key("ef")) is None
        assert store.counters["quarantined"] == 1

    def test_quarantine_clears_the_sweep_journal(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        journal = store.sweep_journal(a_key())
        with open(journal, "w") as handle:
            handle.write("stale sweep state\n")
        self.corrupt(store, a_key(), lambda raw: raw[:40])
        store.get(a_key())
        assert not os.path.exists(journal)

    def test_corrupt_latest_pointer_degrades_to_none(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        store.set_latest("parity", a_key())
        with open(store.latest_path("parity"), "w") as handle:
            handle.write("}{")
        assert store.latest("parity") is None

    def test_verify_all_partitions_good_from_bad(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key("ab"), {"n": 1})
        store.put(a_key("cd"), {"n": 2})
        self.corrupt(store, a_key("cd"), lambda raw: raw[:30])
        audit = store.verify_all()
        assert audit["ok"] == [a_key("ab")]
        assert audit["quarantined"] == [a_key("cd")]


class TestLatestPointer:
    def test_latest_round_trips(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        store.set_latest("parity", a_key())
        key, created_at, payload = store.latest("parity")
        assert key == a_key()
        assert payload == {"n": 1}
        assert created_at <= time.time()

    def test_latest_with_quarantined_entry_is_none(self, tmp_path):
        store = make_store(tmp_path)
        store.put(a_key(), {"n": 1})
        store.set_latest("parity", a_key())
        with open(store.entry_path(a_key()), "w") as handle:
            handle.write("torn")
        assert store.latest("parity") is None


class TestTornReads:
    def test_reader_racing_replace_sees_old_or_new(self, tmp_path):
        """A reader concurrent with ``put`` gets a verified payload —
        one of the two versions in flight — never a torn hybrid."""
        store = make_store(tmp_path)
        old = {"generation": 0, "filler": "a" * 4096}
        new = {"generation": 1, "filler": "b" * 4096}
        store.put(a_key(), old)
        stop = threading.Event()
        seen = []
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    payload = store.get(a_key())
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                    return
                if payload is not None:
                    seen.append(payload["generation"])

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(200):
            store.put(a_key(), new)
            store.put(a_key(), old)
        stop.set()
        thread.join(timeout=30.0)
        assert not failures
        assert store.counters["quarantined"] == 0
        assert set(seen) <= {0, 1}
        assert seen  # the reader actually observed payloads

    def test_kill_during_put_never_leaves_torn_entry(self, tmp_path):
        """SIGKILL a process mid-``put`` churn at arbitrary points;
        every surviving entry must still verify."""
        cache = str(tmp_path / "cache")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        for attempt in range(3):
            victim = subprocess.Popen(
                [sys.executable, "-m",
                 "tests.certify.cert_service_driver",
                 "--churn", cache, "--key-count", "4"],
                cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
                text=True)
            assert "CHURNING" in victim.stdout.readline()
            time.sleep(0.1 + attempt * 0.07)
            victim.send_signal(signal.SIGKILL)
            victim.wait(30)
            audit = CertificateStore(cache).verify_all()
            assert audit["quarantined"] == [], audit
            assert len(audit["ok"]) >= 1


class TestTouchedClaims:
    def scheme_identity(self, scheme):
        fp = scheme_fingerprint(scheme)
        claims = claim_matrix(scheme)
        versions = claim_versions(claims)
        fault = fault_model_fingerprint("fast", 0)
        return fp, claims, versions, fault

    def prior_payload(self, scheme, claims_reports=None):
        fp, claims, versions, fault = self.scheme_identity(scheme)
        key = certificate_key(fp, versions, fault)
        certificate = {"claims": claims_reports if claims_reports
                       is not None else {name: {"verdict": "held"}
                                         for name in claims},
                       "strikes_swept": 100}
        return build_cache_payload(key, "scheme", certificate, fp,
                                   versions, fault)

    def test_identical_scheme_touches_nothing(self):
        prior = self.prior_payload(SecDedDpSwap())
        fp, claims, versions, fault = self.scheme_identity(
            SecDedDpSwap())
        assert touched_claims(prior, fp, versions, fault, claims) \
            == set()

    def test_policy_delta_touches_only_the_policy_claim(self):
        prior = self.prior_payload(SecDedDpSwap())
        strict = SecDedDpSwap(check_correction="strict")
        fp, claims, versions, fault = self.scheme_identity(strict)
        assert touched_claims(prior, fp, versions, fault, claims) \
            == {"corrects-all-single-storage"}

    def test_fault_model_delta_forces_full_resweep(self):
        prior = self.prior_payload(SecDedDpSwap())
        fp, claims, versions, _ = self.scheme_identity(SecDedDpSwap())
        other_fault = fault_model_fingerprint("full", 0)
        assert touched_claims(prior, fp, versions, other_fault,
                              claims) is None

    def test_missing_prior_claim_is_touched(self):
        reports = {name: {"verdict": "held"} for name
                   in claim_matrix(SecDedDpSwap())}
        del reports["ded-on-doubles"]
        prior = self.prior_payload(SecDedDpSwap(), reports)
        fp, claims, versions, fault = self.scheme_identity(
            SecDedDpSwap())
        assert touched_claims(prior, fp, versions, fault, claims) \
            == {"ded-on-doubles"}

    def test_stitch_carries_untouched_claims_with_provenance(self):
        prior = self.prior_payload(SecDedDpSwap())
        partial = {"strikes_swept": 7,
                   "claims": {"corrects-all-single-storage":
                              {"verdict": "held", "swept": 7}}}
        certificate, provenance = stitch_certificate(
            partial, prior, {"corrects-all-single-storage"},
            prior["key"])
        assert set(certificate["claims"]) == \
            set(claim_matrix(SecDedDpSwap()))
        assert provenance["recertified"] == \
            ["corrects-all-single-storage"]
        assert provenance["parent_key"] == prior["key"]
        carried = provenance["carried_forward"]
        assert "corrects-all-single-storage" not in carried
        assert all(value == prior["key"] for value in carried.values())
        assert certificate["passed"] is True

    def test_stitch_surfaces_violations_from_either_side(self):
        prior = self.prior_payload(SecDedDpSwap())
        partial = {"claims": {"corrects-all-single-storage":
                              {"verdict": "violated"}}}
        certificate, _ = stitch_certificate(
            partial, prior, {"corrects-all-single-storage"},
            prior["key"])
        assert certificate["violated"] == \
            ["corrects-all-single-storage"]
        assert certificate["passed"] is False


class TestLocks:
    def test_lock_is_exclusive_across_handles(self, tmp_path):
        store = make_store(tmp_path)
        first = store.lock(a_key())
        second = store.lock(a_key())
        assert first.acquire(blocking=False)
        assert not second.acquire(blocking=False)
        first.release()
        assert second.acquire(blocking=False)
        second.release()

    def test_blocking_acquire_waits_out_the_holder(self, tmp_path):
        store = make_store(tmp_path)
        holder = store.lock(a_key())
        assert holder.acquire(blocking=False)
        release_timer = threading.Timer(0.15, holder.release)
        release_timer.start()
        waiter = store.lock(a_key())
        try:
            assert waiter.acquire(blocking=True, timeout_s=10.0)
        finally:
            release_timer.cancel()
            waiter.release()

    def test_blocking_acquire_times_out(self, tmp_path):
        store = make_store(tmp_path)
        holder = store.lock(a_key())
        assert holder.acquire(blocking=False)
        try:
            waiter = store.lock(a_key())
            assert not waiter.acquire(blocking=True, timeout_s=0.2)
        finally:
            holder.release()
