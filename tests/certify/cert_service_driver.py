"""Chaos-test driver for the certification service.

The cert-service chaos tests need a service they can start, SIGKILL
mid-sweep, and restart from outside — and clients whose transport they
can wrap in a chaos schedule — so this module runs each role as a
process of its own::

    PYTHONPATH=src python -m tests.certify.cert_service_driver \
        --listen /tmp/certd.sock --cache-dir /tmp/cert-cache

    PYTHONPATH=src python -m tests.certify.cert_service_driver \
        --client /tmp/certd.sock --scheme secded-dp \
        --chaos-seed 7 --drop 0.1 --dup 0.1

    PYTHONPATH=src python -m tests.certify.cert_service_driver \
        --churn /tmp/cert-cache --key-count 4

``--hold-file`` makes every sweep spin until the file disappears (after
printing ``SWEEP_STARTED``), giving the kill tests a deterministic
mid-sweep window.  ``--churn`` rewrites store entries in a tight loop —
the victim for the kill-during-put torn-entry test.
"""

import argparse
import json
import os
import sys
import time

from repro.certify.service import CertificateService
from repro.certify.store import CertificateStore
from repro.inject.transport import (ChaosConfig, ChaosDialer,
                                    UnixSocketListener, unix_connect)
from repro.errors import TransportClosed


class HoldingService(CertificateService):
    """A service whose sweeps announce themselves and then wait."""

    hold_file = None

    def _sweep(self, scheme_name, scheme, key, only=None):
        print(f"SWEEP_STARTED scheme={scheme_name} key={key}",
              flush=True)
        while self.hold_file and os.path.exists(self.hold_file):
            time.sleep(0.02)
        return super()._sweep(scheme_name, scheme, key, only=only)


def run_service(args):
    store = CertificateStore(args.cache_dir)
    if args.hold_file:
        service = HoldingService(store, mode=args.mode, seed=args.seed,
                                 strict=args.strict)
        service.hold_file = args.hold_file
    else:
        service = CertificateService(store, mode=args.mode,
                                     seed=args.seed, strict=args.strict)
    listener = UnixSocketListener(args.listen)
    print(f"SERVICE_READY sock={args.listen}", flush=True)
    try:
        service.serve(listener)
    finally:
        listener.close()
    stats = service.stats()
    print(f"SERVICE_DONE hits={stats['hits']} misses={stats['misses']} "
          f"incremental={stats['incremental']} "
          f"stale={stats['stale_served']} "
          f"quarantined={stats['quarantined']}", flush=True)
    return 0


def run_client(args):
    dial = lambda: unix_connect(args.client, timeout=10.0)  # noqa: E731
    if args.chaos_seed is not None:
        dial = ChaosDialer(dial, ChaosConfig(
            seed=args.chaos_seed, drop=args.drop, dup=args.dup,
            reorder=args.reorder))
    request = {"kind": "certify", "scheme": args.scheme}
    if args.strict:
        request["strict"] = True
    # the request is idempotent (the service dedups sweeps), so a
    # chaos-dropped frame is safely re-sent on a fresh connection
    deadline = time.time() + args.timeout
    response = None
    while response is None and time.time() < deadline:
        try:
            connection = dial()
            connection.send(request)
            response = connection.recv(timeout=5.0)
            connection.close()
        except TransportClosed:
            time.sleep(0.1)
    if response is None:
        print("CLIENT_TIMEOUT", flush=True)
        return 3
    if response.get("kind") == "certificate":
        payload = response["payload"]
        print(f"CLIENT_OK cache={response['cache']} "
              f"key={response['key']} "
              f"passed={payload['certificate']['passed']} "
              f"sha={payload_sha(payload)}", flush=True)
        return 0
    print(f"CLIENT_{response.get('kind', 'unknown').upper()} "
          f"code={response.get('error', {}).get('code')}", flush=True)
    return 1 if response.get("kind") == "refusal" else 2


def payload_sha(payload):
    import hashlib
    blob = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def run_churn(args):
    """Rewrite entries forever; the parent SIGKILLs us mid-write."""
    store = CertificateStore(args.churn)
    print("CHURNING", flush=True)
    iteration = 0
    while True:
        key = f"{'%02d' % (iteration % args.key_count)}" + "ab" * 31
        payload = {"version": 1, "iteration": iteration,
                   "filler": "x" * 2048}
        store.put(key, payload)
        iteration += 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    role = parser.add_mutually_exclusive_group(required=True)
    role.add_argument("--listen", metavar="SOCK")
    role.add_argument("--client", metavar="SOCK")
    role.add_argument("--churn", metavar="CACHE_DIR")
    parser.add_argument("--cache-dir")
    parser.add_argument("--mode", default="fast")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strict", action="store_true")
    parser.add_argument("--hold-file", default=None)
    parser.add_argument("--scheme", default="parity")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--drop", type=float, default=0.0)
    parser.add_argument("--dup", type=float, default=0.0)
    parser.add_argument("--reorder", type=float, default=0.0)
    parser.add_argument("--key-count", type=int, default=4)
    args = parser.parse_args(argv)
    if args.listen:
        return run_service(args)
    if args.client:
        return run_client(args)
    return run_churn(args)


if __name__ == "__main__":
    sys.exit(main())
