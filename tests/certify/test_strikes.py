"""Tests for the certifier's strike spaces and placement semantics."""

import random

import pytest

from repro.certify import (PIPELINE_PLACEMENTS, PLACEMENTS, Strike,
                           apply_strike, arithmetic_strikes, burst_strikes,
                           correlated_lane_batch,
                           exhaustive_pipeline_strikes,
                           exhaustive_storage_strikes, random_strikes)
from repro.certify.strikes import shrink_strike
from repro.ecc import DetectOnlySwap, ParityCode, SecDedDpSwap


SCHEME = SecDedDpSwap()


class TestEnumerators:
    def test_pipeline_strikes_cover_every_placement(self):
        strikes = list(exhaustive_pipeline_strikes(SCHEME))
        placements = {strike.placement for strike in strikes}
        assert placements == set(PIPELINE_PLACEMENTS)

    def test_pipeline_strikes_ascend_in_weight(self):
        weights = [s.weight for s in exhaustive_pipeline_strikes(SCHEME)]
        assert weights == sorted(weights)
        assert set(weights) == {1, 2}

    def test_storage_strikes_span_data_check_and_dp(self):
        singles = [s for s in exhaustive_storage_strikes(SCHEME)
                   if s.weight == 1]
        # one strike per stored bit: 32 data + 7 check + 1 dp
        assert len(singles) == SCHEME.data_bits + SCHEME.code.check_bits + 1
        assert any(s.dp_error for s in singles)

    def test_detect_only_scheme_has_no_dp_strikes(self):
        scheme = DetectOnlySwap(ParityCode())
        strikes = list(exhaustive_pipeline_strikes(scheme)) \
            + list(exhaustive_storage_strikes(scheme))
        assert all(strike.dp_error == 0 for strike in strikes)
        assert all(strike.placement != "pipeline-dp" for strike in strikes)

    def test_burst_strikes_are_contiguous(self):
        for strike in burst_strikes(SCHEME, widths=(3,)):
            combined = strike.data_error | strike.check_error
            assert combined
            while combined % 2 == 0:
                combined >>= 1
            # a width-3 burst collapses to 0b111 once right-aligned
            assert combined == 0b111
            assert strike.tier == "burst"

    def test_random_strikes_stratify_by_weight_and_family(self):
        rng = random.Random(7)
        strikes = list(random_strikes(SCHEME, rng, 20, weights=(3, 4)))
        assert all(strike.weight in (3, 4) for strike in strikes)
        assert all(strike.tier == "random" for strike in strikes)
        # 20 samples per (weight, placement-family) stratum
        for weight in (3, 4):
            for placement in ("pipeline-original", "pipeline-shadow-bus",
                              "storage"):
                stratum = [s for s in strikes if s.weight == weight
                           and s.placement == placement]
                assert len(stratum) == 20, (weight, placement)

    def test_random_strikes_are_seed_deterministic(self):
        first = list(random_strikes(SCHEME, random.Random(3), 10))
        second = list(random_strikes(SCHEME, random.Random(3), 10))
        assert first == second

    def test_arithmetic_strikes_include_powers_of_two(self):
        strikes = list(arithmetic_strikes(SCHEME, random.Random(0)))
        deltas = {strike.delta for strike in strikes}
        assert (1 << 7) in deltas and -(1 << 7) in deltas
        assert all(strike.placement == "arithmetic" for strike in strikes)


class TestApplyStrike:
    def test_pipeline_original_corrupts_data_keeps_clean_check(self):
        strike = Strike("pipeline-original", data_error=0b101)
        word = apply_strike(SCHEME, 0x1234, strike)
        assert word.data == 0x1234 ^ 0b101
        assert word.check == SCHEME.code.encode(0x1234)

    def test_pipeline_shadow_value_keeps_data_corrupts_check(self):
        strike = Strike("pipeline-shadow-value", data_error=0b1)
        word = apply_strike(SCHEME, 0x1234, strike)
        assert word.data == 0x1234
        assert word.check == SCHEME.code.encode(0x1234 ^ 0b1)

    def test_storage_strike_flips_stored_bits_of_true_codeword(self):
        strike = Strike("storage", data_error=0b10, check_error=0b1,
                        dp_error=1)
        clean = SCHEME.write_pair(0x42)
        word = apply_strike(SCHEME, 0x42, strike)
        assert word.data == clean.data ^ 0b10
        assert word.check == clean.check ^ 0b1
        assert word.dp == clean.dp ^ 1

    def test_arithmetic_strike_wraps_modulo_word_width(self):
        strike = Strike("arithmetic", delta=1)
        word = apply_strike(SCHEME, 0xFFFF_FFFF, strike)
        assert word.data == 0
        assert word.check == SCHEME.code.encode(0xFFFF_FFFF)

    def test_unknown_placement_rejected(self):
        from repro.errors import CertificationError
        with pytest.raises(CertificationError):
            apply_strike(SCHEME, 0, Strike("warp-drive", data_error=1))

    def test_describe_is_json_friendly(self):
        strike = Strike("storage", data_error=0x3, tier="burst")
        description = strike.describe()
        assert description["placement"] == "storage"
        assert description["data_error"] == "0x3"
        assert description["tier"] == "burst"


class TestShrinkAndLanes:
    def test_shrink_yields_strictly_lighter_strikes(self):
        strike = Strike("storage", data_error=0b1011, check_error=0b1)
        candidates = list(shrink_strike(strike))
        assert candidates
        assert all(c.weight == strike.weight - 1 for c in candidates)

    def test_weight_one_strike_has_no_shrinks(self):
        assert list(shrink_strike(Strike("storage", data_error=0b1))) == []

    def test_correlated_lane_batch_applies_same_strike_per_lane(self):
        strike = Strike("pipeline-original", data_error=0b100)
        bases = [0x0, 0x1, 0xFFFF_FFFF]
        words, goldens = correlated_lane_batch(SCHEME, bases, strike)
        assert len(words) == len(bases)
        assert goldens == bases
        for base, word in zip(bases, words):
            assert word.data == base ^ 0b100


def test_every_placement_constant_is_enumerable():
    assert set(PIPELINE_PLACEMENTS) < set(PLACEMENTS)
    assert "storage" in PLACEMENTS and "arithmetic" in PLACEMENTS
