"""Deterministic repro bundles: capture, verify, replay.

The acceptance bar for :mod:`repro.bundle`: a failure captured as a
bundle must replay to the *identical* error code and outcome
fingerprint from the bundle contents alone — in-process, and in a
fresh interpreter that has never seen the original campaign.  These
tests cover the capture layer (content hashing, idempotency, tamper
refusal), each replayable trial kind, and the two headline scenarios:
a :class:`~repro.errors.ContainmentViolation` from a tampered compiler
pass and a FAILED certificate from a sabotaged scheme.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro.bundle import (BUNDLE_SCHEMA_VERSION, DIVERGED, REPRODUCED,
                          STALE_SCHEMA, ReproBundle, capture_bundle,
                          merge_outcome, replay)
from repro.errors import (BundleError, ContainmentViolation, FabricError,
                          MergeConflict, ReproError)
from repro.inject.journal import Journal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPLAY_CLI = os.path.join(REPO_ROOT, "examples", "replay_bundle.py")


def _capture_simple(out_dir, trial=None, **kwargs):
    error = ReproError("boom", context={"unit": "u0"})
    return capture_bundle(error, capture_point="test",
                          out_dir=str(out_dir), trial=trial, **kwargs)


class TestCaptureAndLoad:
    def test_manifest_records_identity_and_hash(self, tmp_path):
        path = _capture_simple(tmp_path, seed=7)
        bundle = ReproBundle.load(path)
        assert bundle.schema_version == BUNDLE_SCHEMA_VERSION
        assert bundle.code == "repro.error"
        assert bundle.severity == "fatal"
        assert bundle.capture_point == "test"
        assert bundle.manifest["seed"] == 7
        assert bundle.fingerprint
        assert os.path.basename(path).startswith("bundle-repro-error-")

    def test_capture_is_idempotent(self, tmp_path):
        first = _capture_simple(tmp_path)
        second = _capture_simple(tmp_path)
        assert first == second
        assert len(os.listdir(tmp_path)) == 1

    def test_tampered_bundle_refuses_to_load(self, tmp_path):
        path = _capture_simple(
            tmp_path, fault_plan={"bit": 4, "lane": 0})
        plan_file = os.path.join(path, "fault_plan.json")
        with open(plan_file, "w", encoding="utf-8") as handle:
            handle.write('{"bit":5,"lane":0}')
        with pytest.raises(BundleError, match="content-hash"):
            ReproBundle.load(path)

    def test_tarball_round_trips(self, tmp_path):
        path = _capture_simple(tmp_path, fault_plan={"bit": 4})
        tarball = ReproBundle.load(path).to_tarball(
            str(tmp_path / "b.tar.gz"))
        clone = ReproBundle.load(tarball)
        assert clone.manifest == ReproBundle.load(path).manifest

    def test_forensic_bundle_cannot_replay(self, tmp_path):
        path = _capture_simple(tmp_path, trial=None)
        with pytest.raises(BundleError, match="forensic-only"):
            replay(path)

    def test_unknown_trial_kind_is_stale(self, tmp_path):
        path = _capture_simple(tmp_path, trial={"kind": "quantum"})
        result = replay(path)
        assert result.verdict == STALE_SCHEMA
        assert "quantum" in result.detail

    def test_schema_bump_is_stale_not_an_error(self, tmp_path,
                                               monkeypatch):
        path = _capture_simple(tmp_path, trial={"kind": "merge"})
        # the package re-exports replay() under the module's name, so
        # resolve the module object through sys.modules
        monkeypatch.setattr(sys.modules["repro.bundle.replay"],
                            "BUNDLE_SCHEMA_VERSION",
                            BUNDLE_SCHEMA_VERSION + 1)
        result = replay(path)
        assert result.verdict == STALE_SCHEMA
        assert not result.reproduced


def _lease_journal(path, shard, token, successes):
    journal = Journal(str(path), header={
        "role": "shard", "shard": shard, "token": token,
        "shard_count": 1})
    journal.append({"type": "unit_started", "unit": "u0", "kind": "toy",
                    "params": {"seed": 7}})
    journal.append({"type": "batch", "unit": "u0", "index": 0,
                    "trials": 4, "successes": successes,
                    "counts": {"detected": successes,
                               "masked": 4 - successes}})
    journal.close()


class TestMergeReplay:
    def _conflict_bundle(self, tmp_path):
        from repro.inject.merge import merge_shard_journals

        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-000.lease-002.jsonl"
        _lease_journal(a, "shard-000", 1, successes=1)
        _lease_journal(b, "shard-000", 2, successes=3)
        with pytest.raises(MergeConflict) as info:
            merge_shard_journals([str(a), str(b)])
        out = tmp_path / "bundles"
        return capture_bundle(
            info.value, capture_point="fabric.merge", out_dir=str(out),
            trial={"kind": "merge"}, outcome=merge_outcome(info.value),
            journal_files={os.path.basename(str(path)): str(path)
                           for path in (a, b)})

    def test_merge_conflict_reproduces(self, tmp_path):
        result = replay(self._conflict_bundle(tmp_path))
        assert result.verdict == REPRODUCED
        assert result.actual_code == "journal.merge_conflict"

    def test_wrong_expected_outcome_diverges(self, tmp_path):
        from repro.inject.merge import merge_shard_journals

        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-000.lease-002.jsonl"
        _lease_journal(a, "shard-000", 1, successes=1)
        _lease_journal(b, "shard-000", 2, successes=3)
        with pytest.raises(MergeConflict) as info:
            merge_shard_journals([str(a), str(b)])
        # claim the merge failed with a *different* code than it will
        path = capture_bundle(
            info.value, capture_point="fabric.merge",
            out_dir=str(tmp_path / "bundles"), trial={"kind": "merge"},
            outcome={"code": "inject.fabric", "message": None,
                     "context": {}},
            journal_files={os.path.basename(str(p)): str(p)
                           for p in (a, b)})
        result = replay(path)
        assert result.verdict == DIVERGED


class TestFabricLeaseBundle:
    def test_sigkilled_lease_exports_verifiable_bundle(self, tmp_path):
        """SIGKILL a shard mid-lease with stealing off: the fabric's
        terminal FabricError exports a journal-verify bundle whose
        replay re-digests the bundled lease journals."""
        from tests.inject.fabric_driver import toy_config, toy_units
        from tests.inject.test_fabric import (_first_shard_process,
                                              _run_in_thread)
        from repro.inject.fabric import CampaignFabric

        bundle_dir = str(tmp_path / "bundles")
        fabric = CampaignFabric(
            toy_units(4, delay=0.1), str(tmp_path / "fab"),
            toy_config(shards=2, lease_ttl_s=1.0, steal=False,
                       max_batches=4, bundle_dir=bundle_dir))
        thread, result = _run_in_thread(fabric)
        __, process = _first_shard_process(fabric)
        time.sleep(0.3)  # let the victim journal something durable
        os.kill(process.pid, signal.SIGKILL)
        thread.join(60)
        assert isinstance(result.get("error"), FabricError)

        bundles = sorted(os.listdir(bundle_dir))
        assert len(bundles) == 1
        path = os.path.join(bundle_dir, bundles[0])
        bundle = ReproBundle.load(path)
        assert bundle.capture_point == "fabric.lease"
        assert bundle.code == "inject.fabric"
        assert bundle.journal_files()
        replayed = replay(path)
        assert replayed.verdict == REPRODUCED, replayed.detail


class TestCertifyBundle:
    def test_passed_certificate_exports_nothing(self, tmp_path):
        from repro.certify import (capture_certificate_bundle,
                                   certify_scheme)

        certificate = certify_scheme("parity", mode="fast")
        assert certificate.passed
        assert capture_certificate_bundle(certificate,
                                          str(tmp_path)) is None
        assert not os.listdir(tmp_path)

    def test_failed_certificate_reproduces(self, tmp_path):
        from repro.certify import (Certifier, capture_certificate_bundle,
                                   tampered_secded_dp)

        tamper = {"factory": "secded-dp", "kind": "zero-column",
                  "position": 11}
        scheme = tampered_secded_dp("zero-column", 11)
        certificate = Certifier(mode="fast", seed=0).certify(
            scheme, name="secded-dp")
        assert not certificate.passed
        path = capture_certificate_bundle(certificate, str(tmp_path),
                                          tamper=tamper)
        bundle = ReproBundle.load(path)
        assert bundle.code == "certify.claim_violated"
        assert bundle.severity == "fatal"
        # the counterexample travels in the bundled certificate sidecar
        sidecar = bundle.read_json("scheme.json")
        assert any(claim["verdict"] == "violated"
                   and claim.get("counterexample")
                   for claim in sidecar["claims"].values())
        result = replay(path)
        assert result.verdict == REPRODUCED, result.detail
        assert result.actual_code == "certify.claim_violated"


@pytest.fixture(scope="module")
def violation_bundle(tmp_path_factory):
    """One ContainmentViolation bundle from a tampered compiler pass,
    exported by the engine's terminal-failure hook."""
    from repro.inject.engine import CampaignEngine, EngineConfig, WorkUnit

    bundle_dir = str(tmp_path_factory.mktemp("bundles"))
    config = EngineConfig(batch_size=4, max_batches=6,
                          bundle_dir=bundle_dir)
    unit = WorkUnit(unit_id="ladder-cv", kind="gpu-recovery", params={
        "workload": "snap", "scale": 0.1, "build_seed": 3,
        "tamper": {"pass": "swdup-late-check"}, "mode": "swdup"})
    report = CampaignEngine(config).run([unit])
    assert report.units["ladder-cv"].status == "crashed"
    bundles = os.listdir(bundle_dir)
    assert len(bundles) == 1
    return os.path.join(bundle_dir, bundles[0])


class TestContainmentViolationBundle:
    def test_manifest_freezes_the_trial(self, violation_bundle):
        bundle = ReproBundle.load(violation_bundle)
        assert bundle.code == "gpu.containment_violation"
        assert bundle.severity == "fatal"
        assert bundle.capture_point == "engine.crashed"
        trial = bundle.trial
        assert trial["kind"] == "ladder"
        assert trial["workload"] == "snap"
        assert trial["tamper"] == {"pass": "swdup-late-check"}
        # the violation context carries the exact trial coordinates
        context = (bundle.manifest["error"] or {})["context"]
        assert {"seed", "batch", "trial", "plan"} <= set(context)

    def test_in_process_replay_reproduces(self, violation_bundle):
        result = replay(violation_bundle)
        assert result.verdict == REPRODUCED, result.detail
        assert result.actual_code == "gpu.containment_violation"
        assert result.cross_check == "ok"

    def test_fresh_process_replay_from_copied_bundle(
            self, violation_bundle, tmp_path):
        """The acceptance scenario: copy the bundle to a different
        directory and replay it in a fresh interpreter that has only
        the bundle contents and the library."""
        copied = str(tmp_path / os.path.basename(violation_bundle))
        shutil.copytree(violation_bundle, copied)
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, REPLAY_CLI, copied, "--json"],
            capture_output=True, text=True, env=env, timeout=600)
        assert proc.returncode == 0, proc.stderr or proc.stdout
        verdicts = [json.loads(line)
                    for line in proc.stdout.splitlines() if line]
        assert [v["verdict"] for v in verdicts] == [REPRODUCED]
        expected = ReproBundle.load(violation_bundle).fingerprint
        assert verdicts[0]["actual_fingerprint"] == expected


class TestReplayCli:
    def test_directory_scan_and_exit_status(self, tmp_path):
        # a directory holding one reproducible merge bundle replays
        # wholesale with exit 0; an empty scan is an error
        a = tmp_path / "shard-000.lease-001.jsonl"
        b = tmp_path / "shard-000.lease-002.jsonl"
        _lease_journal(a, "shard-000", 1, successes=1)
        _lease_journal(b, "shard-000", 2, successes=3)
        from repro.inject.merge import merge_shard_journals
        with pytest.raises(MergeConflict) as info:
            merge_shard_journals([str(a), str(b)])
        out = tmp_path / "bundles"
        capture_bundle(
            info.value, capture_point="fabric.merge", out_dir=str(out),
            trial={"kind": "merge"}, outcome=merge_outcome(info.value),
            journal_files={os.path.basename(str(p)): str(p)
                           for p in (a, b)})
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, REPLAY_CLI, str(out)],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr or proc.stdout
        assert "1/1 bundle(s) REPRODUCED" in proc.stdout
