"""Tests for the low-cost residue codes and their arithmetic closure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import (LOW_COST_MODULI, ResidueCode, combine_split_residues,
                       is_low_cost_modulus, split_correction_factor)
from repro.errors import CodeConstructionError

U32 = st.integers(min_value=0, max_value=2**32 - 1)
U64 = st.integers(min_value=0, max_value=2**64 - 1)
MODULI = st.sampled_from(LOW_COST_MODULI)


class TestModulusValidation:
    def test_low_cost_moduli_recognized(self):
        for modulus in LOW_COST_MODULI:
            assert is_low_cost_modulus(modulus)

    @pytest.mark.parametrize("modulus", [0, 1, 2, 4, 5, 9, 128])
    def test_non_low_cost_rejected(self, modulus):
        assert not is_low_cost_modulus(modulus)
        with pytest.raises(CodeConstructionError):
            ResidueCode(modulus)

    def test_check_bit_width(self):
        assert ResidueCode(3).check_bits == 2
        assert ResidueCode(127).check_bits == 7
        assert ResidueCode(255).check_bits == 8


class TestEncodeDecode:
    @given(MODULI, U32)
    def test_roundtrip(self, modulus, data):
        code = ResidueCode(modulus)
        assert not code.decode(data, code.encode(data)).is_error

    @given(MODULI, U32)
    def test_double_zero_accepted(self, modulus, data):
        # The all-ones check pattern is an alternate encoding of residue 0.
        code = ResidueCode(modulus)
        if data % modulus == 0:
            assert not code.decode(data, modulus).is_error

    @given(MODULI, U32, st.integers(min_value=0, max_value=31))
    def test_single_bit_error_always_detected(self, modulus, data, bit):
        # 2**bit mod (2**a - 1) is never 0, so every single-bit flip moves
        # the residue: low-cost residues catch all single-bit errors.
        code = ResidueCode(modulus)
        check = code.encode(data)
        assert code.decode(data ^ (1 << bit), check).is_due

    @given(MODULI, U32)
    def test_modulus_multiple_offset_escapes(self, modulus, data):
        # Value changes that are multiples of the modulus are the code's
        # blind spot by definition.
        code = ResidueCode(modulus)
        check = code.encode(data)
        shifted = data + modulus
        if shifted < 2**32:
            assert not code.decode(shifted, check).is_due


class TestArithmeticClosure:
    @given(MODULI, U32, U32)
    def test_add_prediction(self, modulus, lhs, rhs):
        code = ResidueCode(modulus)
        predicted = code.predict_add(code.encode(lhs), code.encode(rhs))
        assert predicted == code.encode((lhs + rhs) & 0xFFFF_FFFF_FFFF_FFFF) \
            or predicted == (lhs + rhs) % modulus

    @given(MODULI, U32, U32)
    def test_add_prediction_matches_full_sum(self, modulus, lhs, rhs):
        code = ResidueCode(modulus)
        predicted = code.predict_add(lhs % modulus, rhs % modulus)
        assert predicted == (lhs + rhs) % modulus

    @given(MODULI, U32, U32)
    def test_mul_prediction_matches_full_product(self, modulus, lhs, rhs):
        code = ResidueCode(modulus)
        predicted = code.predict_mul(lhs % modulus, rhs % modulus)
        assert predicted == (lhs * rhs) % modulus

    @given(MODULI, U32, U32)
    def test_sub_prediction(self, modulus, lhs, rhs):
        code = ResidueCode(modulus)
        predicted = code.predict_sub(lhs % modulus, rhs % modulus)
        assert predicted == (lhs - rhs) % modulus


class TestSplitResidues:
    def test_correction_factors_match_paper(self):
        # Paper Section III-C: moduli 3,7,15,31,63,127,255 have correction
        # factors 1,4,1,4,4,16,1.
        expected = {3: 1, 7: 4, 15: 1, 31: 4, 63: 4, 127: 16, 255: 1}
        for modulus, factor in expected.items():
            assert split_correction_factor(modulus) == factor

    def test_correction_factors_are_powers_of_two(self):
        for modulus in LOW_COST_MODULI:
            factor = split_correction_factor(modulus)
            assert factor & (factor - 1) == 0  # wiring-only correction

    @given(MODULI, U64)
    def test_combine_split_residues_equation_1(self, modulus, value):
        high = (value >> 32) % modulus
        low = (value & 0xFFFF_FFFF) % modulus
        assert combine_split_residues(high, low, modulus) == value % modulus

    @given(MODULI, U32, U32, U64)
    def test_mad_prediction(self, modulus, a, b, addend):
        # Full mixed-width MAD: 32b x 32b + 64b with split addend residues.
        code = ResidueCode(modulus)
        predicted = code.predict_mad(
            a % modulus, b % modulus,
            (addend >> 32) % modulus, (addend & 0xFFFF_FFFF) % modulus)
        assert predicted == (a * b + addend) % modulus

    @given(MODULI, U64)
    def test_split_output_residues(self, modulus, value):
        code = ResidueCode(modulus)
        high, low = code.split_output_residues(value)
        assert high == ((value >> 32) & 0xFFFF_FFFF) % modulus
        assert low == (value & 0xFFFF_FFFF) % modulus
        assert combine_split_residues(high, low, modulus) == value % modulus
