"""The miscorrection boundary: where plain SEC-DED lies and DP saves it.

SwapCodes' central subtlety (Section IV): a SEC-DED decoder presented
with a *pipeline* error pattern whose syndrome aliases to a correctable
single-bit syndrome will happily "repair" a bit that was never wrong,
manufacturing a third value — silent data corruption with a CORRECTED
status.  The data-parity bit exists to catch exactly this: when the DP
agrees with the stored data the error cannot be a storage upset, so the
proposed correction is refused and the read DUEs.  These tests construct
the precise aliasing strikes on both sides of that boundary and pin the
naive scheme to the miscorrection and the DP scheme to the DUE.
"""

import pytest

from repro.bitutils import parity
from repro.ecc import HsiaoSecDed, NaiveSecDedSwap, SecDedDpSwap
from repro.ecc.swap import ReadStatus, RegisterWord


CODE = HsiaoSecDed()


def aliasing_double_strike(base: int, struck_bit: int, aliased_bit: int):
    """A data+check double-strike whose syndrome aliases to ``aliased_bit``.

    The original instruction computes ``base ^ (1 << struck_bit)`` (so
    data and DP both describe the wrong value) while the shadow's check
    bits are struck with ``col(struck) ^ col(aliased)`` on the writeback
    bus.  The resulting syndrome is exactly ``col(aliased)`` — a
    perfectly plausible single-bit-correctable pattern pointing at a bit
    that was never wrong.
    """
    bad = base ^ (1 << struck_bit)
    alias_mask = CODE.data_columns[struck_bit] \
        ^ CODE.data_columns[aliased_bit]
    return bad, CODE.encode(base) ^ alias_mask


class TestAliasingDoubleStrike:
    BASE = 0x1234_5678
    STRUCK = 3
    ALIASED = 17

    def test_plain_secded_actively_miscorrects(self):
        bad, check = aliasing_double_strike(self.BASE, self.STRUCK,
                                            self.ALIASED)
        word = RegisterWord(data=bad, check=check)
        result = NaiveSecDedSwap().read(word)
        assert result.status is ReadStatus.CORRECTED
        # the decoder invented a third value: neither golden nor stored
        assert result.data == bad ^ (1 << self.ALIASED)
        assert result.data != self.BASE
        assert result.data != bad

    def test_secded_dp_bins_the_same_strike_as_due(self):
        bad, check = aliasing_double_strike(self.BASE, self.STRUCK,
                                            self.ALIASED)
        # the DP travels with the original's (wrong) value, so it agrees
        # with the stored data — the Figure 5 pipeline signature
        word = RegisterWord(data=bad, check=check, dp=parity(bad))
        result = SecDedDpSwap().read(word)
        assert result.status is ReadStatus.DUE

    def test_boundary_holds_across_bit_positions(self):
        scheme = SecDedDpSwap()
        naive = NaiveSecDedSwap()
        for struck, aliased in ((0, 1), (5, 31), (30, 2)):
            bad, check = aliasing_double_strike(self.BASE, struck, aliased)
            naive_result = naive.read(RegisterWord(data=bad, check=check))
            dp_result = scheme.read(
                RegisterWord(data=bad, check=check, dp=parity(bad)))
            assert naive_result.status is ReadStatus.CORRECTED
            assert naive_result.data != self.BASE
            assert dp_result.status is ReadStatus.DUE


class TestShadowValueSingleStrike:
    """A single-bit error in the shadow's value computation."""

    BASE = 0xCAFE_F00D
    BIT = 9

    def make_words(self):
        # clean data and DP; check bits describe the shadow's wrong value
        check = CODE.encode(self.BASE ^ (1 << self.BIT))
        naive_word = RegisterWord(data=self.BASE, check=check)
        dp_word = RegisterWord(data=self.BASE, check=check,
                               dp=parity(self.BASE))
        return naive_word, dp_word

    def test_plain_secded_miscorrects_clean_data(self):
        naive_word, _ = self.make_words()
        result = NaiveSecDedSwap().read(naive_word)
        assert result.status is ReadStatus.CORRECTED
        assert result.data == self.BASE ^ (1 << self.BIT)

    def test_secded_dp_refuses_the_correction(self):
        _, dp_word = self.make_words()
        result = SecDedDpSwap().read(dp_word)
        assert result.status is ReadStatus.DUE


class TestStorageSideOfTheBoundary:
    """The same decoder verdicts with a *stale* DP honour the correction."""

    BASE = 0x0BAD_BEEF
    BIT = 21

    def test_genuine_storage_upset_still_corrects(self):
        # a real storage strike: the stored data flips after the DP was
        # computed from the true value, so data and DP disagree
        scheme = SecDedDpSwap()
        word = scheme.write_pair(self.BASE).with_data_error(1 << self.BIT)
        result = scheme.read(word)
        assert result.status is ReadStatus.CORRECTED
        assert result.data == self.BASE

    def test_double_storage_strike_is_due_not_miscorrected(self):
        # weight-2 data+check storage double: even-weight Hsiao syndrome
        scheme = SecDedDpSwap()
        word = scheme.write_pair(self.BASE) \
            .with_data_error(1 << self.BIT).with_check_error(0b1)
        result = scheme.read(word)
        assert result.status is ReadStatus.DUE
