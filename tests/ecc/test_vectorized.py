"""Property tests pinning the batched codec layer to the scalar path.

The vectorized ``encode_many``/``decode_many``/``read_many`` implementations
must agree with scalar ``encode``/``decode``/``read`` bit for bit — for
clean words, injected single-bit errors (data and check), and double-bit
errors — across every registered register-file code.  A second group
verifies the process-wide constructor cache: independent constructions of
the same geometry share one set of decode tables.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (DetectOnlySwap, HammingSec, HsiaoSecDed,
                       NaiveSecDedSwap, ResidueCode, SecDedDpSwap, SecDpSwap,
                       standard_register_codes)
from repro.ecc.base import DecodeResult, DecodeStatus, ErrorCode, \
    STATUS_TO_CODE
from repro.ecc.linear import _odd_weight_columns_cached
from repro.ecc.swap import READ_STATUS_TO_CODE, RegisterWord
from repro.ecc.vectorized import linear_decode_tables
from repro.errors import DecodingError


def registered_codes():
    """Every register-file code the library registers, plus the variants."""
    codes = dict(standard_register_codes())
    codes["sec"] = HammingSec()
    codes["secded-lowalias"] = HsiaoSecDed.low_alias()
    return codes


CODES = registered_codes()

U32 = st.integers(min_value=0, max_value=2**32 - 1)
WORDS = st.lists(U32, min_size=1, max_size=64)


def assert_batch_matches_scalar(code, data_words, check_words):
    """One decode_many call must equal element-wise scalar decodes."""
    batch = code.decode_many(data_words, check_words)
    assert len(batch) == len(data_words)
    for index, (data, check) in enumerate(zip(data_words, check_words)):
        scalar = code.decode(data, check)
        assert int(batch.status[index]) == STATUS_TO_CODE[scalar.status], \
            (code.name, index)
        assert int(batch.data[index]) == scalar.data, (code.name, index)
        expected_bit = -1 if scalar.corrected_bit is None \
            else scalar.corrected_bit
        assert int(batch.corrected_bit[index]) == expected_bit, \
            (code.name, index)


class TestEncodeManyEquivalence:
    @pytest.mark.parametrize("name", sorted(CODES))
    @given(words=WORDS)
    @settings(max_examples=25, deadline=None)
    def test_encode_many_matches_scalar(self, name, words):
        code = CODES[name]
        batch = code.encode_many(words)
        assert batch.dtype == np.uint64
        assert [int(value) for value in batch] == \
            [code.encode(word) for word in words]

    @pytest.mark.parametrize("name", sorted(CODES))
    def test_syndrome_many_zero_on_clean_words(self, name):
        code = CODES[name]
        words = [0, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x1234_5678]
        checks = [code.encode(word) for word in words]
        assert not code.syndrome_many(words, checks).any()


class TestDecodeManyEquivalence:
    @pytest.mark.parametrize("name", sorted(CODES))
    @given(words=WORDS, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_decode_many_matches_scalar_under_errors(self, name, words,
                                                     data):
        code = CODES[name]
        checks = [code.encode(word) for word in words]
        bad_data, bad_check = [], []
        for word, check in zip(words, checks):
            kind = data.draw(st.sampled_from(
                ["clean", "data1", "check1", "data2", "data1check1"]))
            data_error = 0
            check_error = 0
            if kind in ("data1", "data1check1"):
                data_error = 1 << data.draw(
                    st.integers(0, code.data_bits - 1))
            if kind == "data2":
                first, second = data.draw(st.lists(
                    st.integers(0, code.data_bits - 1), min_size=2,
                    max_size=2, unique=True))
                data_error = (1 << first) | (1 << second)
            if kind in ("check1", "data1check1"):
                check_error = 1 << data.draw(
                    st.integers(0, code.check_bits - 1))
            bad_data.append(word ^ data_error)
            bad_check.append(check ^ check_error)
        assert_batch_matches_scalar(code, bad_data, bad_check)

    @pytest.mark.parametrize("name", sorted(CODES))
    def test_decode_many_validates_range(self, name):
        code = CODES[name]
        with pytest.raises(DecodingError):
            code.decode_many([1 << code.data_bits], [0])
        with pytest.raises(DecodingError):
            code.decode_many([0], [1 << code.check_bits])

    def test_residue_double_zero_accepted_in_batch(self):
        code = ResidueCode(7)
        # 0 and the all-ones modulus value both encode residue zero.
        batch = code.decode_many([0, 7, 14], [7, 7, 7])
        assert [int(status) for status in batch.status] == \
            [STATUS_TO_CODE[DecodeStatus.OK]] * 3

    def test_fallback_path_matches_scalar(self):
        """A code that does not opt in gets the exact scalar semantics."""

        class XorNibbleCode(ErrorCode):
            """Toy detection code: check = XOR of the data nibbles."""

            data_bits = 8
            check_bits = 4
            name = "xor-nibble"

            def encode(self, data):
                return (data ^ (data >> 4)) & 0xF

            def decode(self, data, check):
                self._validate(data, check)
                if self.encode(data) == check:
                    return DecodeResult(DecodeStatus.OK, data)
                return DecodeResult(DecodeStatus.DUE, data)

        code = XorNibbleCode()
        words = list(range(40))
        checks = [code.encode(word) ^ (word % 3 == 0) for word in words]
        assert_batch_matches_scalar(code, words, checks)


SCHEMES = {
    "secded-dp": SecDedDpSwap(),
    "secded-dp-strict": SecDedDpSwap(check_correction="strict"),
    "sec-dp": SecDpSwap(),
    "swap-mod7": DetectOnlySwap(ResidueCode(7)),
    "naive-secded": NaiveSecDedSwap(),
}


class TestReadManyEquivalence:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @given(words=WORDS, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_read_many_matches_scalar(self, name, words, data):
        scheme = SCHEMES[name]
        stored = []
        for value in words:
            shadow = value
            if data.draw(st.booleans()):
                shadow = value ^ (1 << data.draw(st.integers(0, 31)))
            word = scheme.write_pair(value, shadow)
            if data.draw(st.booleans()):
                word = word.with_data_error(
                    1 << data.draw(st.integers(0, 31)))
            if data.draw(st.booleans()):
                word = word.with_check_error(
                    1 << data.draw(st.integers(0, scheme.code.check_bits - 1)))
            if scheme.uses_data_parity and data.draw(st.booleans()):
                word = word.with_dp_error()
            stored.append(word)
        batch = scheme.read_many(
            [word.data for word in stored],
            [word.check for word in stored],
            [word.dp for word in stored] if scheme.uses_data_parity
            else None)
        for index, word in enumerate(stored):
            scalar = scheme.read(word)
            assert int(batch.status[index]) == \
                READ_STATUS_TO_CODE[scalar.status], (name, index)
            assert int(batch.data[index]) == scalar.data, (name, index)

    def test_dp_scheme_requires_parity_array(self):
        with pytest.raises(ValueError):
            SecDedDpSwap().read_many([1], [2], None)


class TestConstructorCache:
    def test_two_constructions_share_decode_tables(self):
        first, second = HsiaoSecDed(), HsiaoSecDed()
        assert first.data_columns == second.data_columns
        assert linear_decode_tables(first) is linear_decode_tables(second)

    def test_instance_accessor_uses_shared_tables(self):
        first, second = HammingSec(), HammingSec()
        assert first._tables() is second._tables()

    def test_variant_geometries_do_not_collide(self):
        assert linear_decode_tables(HsiaoSecDed()) is not \
            linear_decode_tables(HsiaoSecDed.low_alias())
        assert linear_decode_tables(HsiaoSecDed()) is not \
            linear_decode_tables(HammingSec())

    def test_column_search_memoized(self):
        assert _odd_weight_columns_cached(7, 32) is \
            _odd_weight_columns_cached(7, 32)

    def test_cached_columns_copy_is_private(self):
        from repro.ecc.linear import odd_weight_columns
        columns = odd_weight_columns(7, 32)
        columns[0] = -1
        assert odd_weight_columns(7, 32)[0] != -1


class TestMultiBitFuzz:
    """Seeded multi-bit fuzz: scalar and vectorized must never diverge.

    The exhaustive equivalence tests above stop at double-bit errors;
    these push arbitrary-weight masks through both segments (the MBU
    regime the certifier sweeps adversarially) and pin decode_many and
    read_many to their scalar references bit for bit.
    """

    @pytest.mark.parametrize("name", sorted(CODES))
    @given(words=WORDS, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_decode_many_matches_scalar_on_multibit_masks(self, name,
                                                          words, data):
        code = CODES[name]
        bad_data, bad_check = [], []
        for word in words:
            data_error = data.draw(st.integers(
                0, (1 << code.data_bits) - 1))
            check_error = data.draw(st.integers(
                0, (1 << code.check_bits) - 1))
            bad_data.append(word ^ data_error)
            bad_check.append(code.encode(word) ^ check_error)
        assert_batch_matches_scalar(code, bad_data, bad_check)

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @given(words=WORDS, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_read_many_matches_scalar_on_multibit_masks(self, name, words,
                                                        data):
        scheme = SCHEMES[name]
        stored = []
        for value in words:
            word = scheme.write_pair(value)
            data_error = data.draw(st.integers(0, 2**32 - 1))
            check_error = data.draw(st.integers(
                0, (1 << scheme.code.check_bits) - 1))
            if data_error:
                word = word.with_data_error(data_error)
            if check_error:
                word = word.with_check_error(check_error)
            if scheme.uses_data_parity and data.draw(st.booleans()):
                word = word.with_dp_error()
            stored.append(word)
        batch = scheme.read_many(
            [word.data for word in stored],
            [word.check for word in stored],
            [word.dp for word in stored] if scheme.uses_data_parity
            else None)
        for index, word in enumerate(stored):
            scalar = scheme.read(word)
            assert int(batch.status[index]) == \
                READ_STATUS_TO_CODE[scalar.status], (name, index)
            assert int(batch.data[index]) == scalar.data, (name, index)


class TestOutOfRangeRejection:
    """decode/decode_many must reject garbage integers, never wrap them."""

    @pytest.mark.parametrize("name", sorted(CODES))
    def test_scalar_decode_rejects_wide_data(self, name):
        code = CODES[name]
        with pytest.raises(DecodingError):
            code.decode(1 << code.data_bits, 0)
        with pytest.raises(DecodingError):
            code.decode(0, 1 << code.check_bits)

    @pytest.mark.parametrize("name", sorted(CODES))
    def test_decode_many_rejects_negative_words(self, name):
        code = CODES[name]
        with pytest.raises(DecodingError):
            code.decode_many([0, -1, 0], [0, 0, 0])

    @pytest.mark.parametrize("name", sorted(CODES))
    def test_decode_many_rejects_oversized_python_ints(self, name):
        code = CODES[name]
        with pytest.raises(DecodingError):
            code.decode_many([1 << 80], [0])

    def test_wide_word_error_names_offending_index(self):
        code = HsiaoSecDed()
        with pytest.raises(DecodingError, match="index 2"):
            code.decode_many([0, 1, 1 << 40, 2], [0, 0, 0, 0])

    def test_read_many_rejects_negative_words(self):
        scheme = SecDedDpSwap()
        with pytest.raises(DecodingError):
            scheme.read_many([-3], [0], [0])
