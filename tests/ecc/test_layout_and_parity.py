"""Tests for parity code, SRAM packing, and codeword layout (Figs 6-7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import (BitSite, EccSramPacking, ParityCode,
                       interleaved_layout, naive_layout, separated_layout)

U32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestParityCode:
    code = ParityCode()

    @given(U32)
    def test_roundtrip(self, data):
        assert not self.code.decode(data, self.code.encode(data)).is_error

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_single_bit_detected(self, data, bit):
        check = self.code.encode(data)
        assert self.code.decode(data ^ (1 << bit), check).is_due

    @given(U32, st.data())
    def test_double_bit_missed(self, data, draw):
        # Even-weight patterns are invisible to parity, by definition.
        first, second = draw.draw(
            st.lists(st.integers(min_value=0, max_value=31), min_size=2,
                     max_size=2, unique=True))
        check = self.code.encode(data)
        bad = data ^ (1 << first) ^ (1 << second)
        assert not self.code.decode(bad, check).is_due

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ParityCode(0)


class TestEccSramPacking:
    def test_paper_figure_6_geometry(self):
        # 128b ECC SRAM row, 16 words of 7b check bits -> 16 spare bits,
        # exactly enough for one free DP bit per word.
        packing = EccSramPacking(row_bits=128, words_per_row=16,
                                 check_bits_per_word=7)
        assert packing.used_bits == 112
        assert packing.fragmentation_bits == 16
        assert packing.dp_fits_free
        assert packing.added_redundancy_fraction() == 0.0

    def test_combined_sram_costs_one_bit(self):
        # A 156b-wide combined data+ECC SRAM has no slack: the paper quotes
        # a 1/39 = 2.6% redundancy increase for the DP bit.
        packing = EccSramPacking(row_bits=28, words_per_row=4,
                                 check_bits_per_word=7)
        assert not packing.dp_fits_free
        assert packing.added_redundancy_fraction() == pytest.approx(
            1 / 39, abs=1e-6)

    def test_overfull_row_rejected(self):
        packing = EccSramPacking(row_bits=64, words_per_row=16,
                                 check_bits_per_word=7)
        with pytest.raises(ValueError):
            __ = packing.fragmentation_bits


class TestPhysicalRowLayout:
    def test_naive_layout_is_vulnerable(self):
        layout = naive_layout(words=4)
        vulnerable = layout.vulnerable_adjacent_pairs()
        # Every word has its last data bit adjacent to its first check bit.
        assert len(vulnerable) == 4

    def test_separated_layout_is_safe(self):
        layout = separated_layout(words=4)
        assert layout.vulnerable_adjacent_pairs() == []
        assert layout.min_intra_word_data_check_distance() >= 4

    def test_interleaved_layout_is_safe(self):
        layout = interleaved_layout(words=4)
        assert layout.vulnerable_adjacent_pairs() == []
        # Bit-plane interleaving spaces *any* two bits of a word by >= words.
        assert layout.min_intra_word_data_check_distance() >= 4

    def test_layout_sizes(self):
        assert len(naive_layout(words=4, data_bits=32, check_bits=6)) == 152
        assert len(separated_layout(words=2, data_bits=8, check_bits=4)) == 24

    def test_single_word_separated_layout_distance(self):
        layout = separated_layout(words=1, data_bits=8, check_bits=4)
        # One word per row: data and check are adjacent at the seam.
        assert layout.min_intra_word_data_check_distance() == 1
        assert len(layout.vulnerable_adjacent_pairs()) == 1

    def test_bad_segment_rejected(self):
        with pytest.raises(ValueError):
            BitSite(0, "banana", 0)

    def test_empty_layout_rejected(self):
        from repro.ecc.layout import PhysicalRowLayout
        with pytest.raises(ValueError):
            PhysicalRowLayout([])
