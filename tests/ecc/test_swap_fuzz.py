"""Property-based fuzz of the central SwapCodes safety invariant.

Under the paper's single-transient model — exactly one error event per
codeword lifetime (a pipeline error of ANY width in the original or the
shadow, a single-bit storage flip, or a DP-bit flip) — the DP schemes must
never *miscorrect*: a read either raises a DUE or returns data that was
genuinely written.  This is "completely avoiding pipeline error
miscorrection" (Section III-B) stated as one machine-checkable property.

Note the single-error scoping matters: two independent simultaneous errors
(e.g. a shadow pipeline error plus an unrelated storage flip) can defeat
any SEC-DED-budget code, and the paper makes no claim there.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import SecDedDpSwap, SecDpSwap

U32 = st.integers(min_value=0, max_value=2**32 - 1)
NONZERO = st.integers(min_value=1, max_value=2**32 - 1)

EVENT = st.one_of(
    st.tuples(st.just("original"), NONZERO),
    st.tuples(st.just("shadow"), NONZERO),
    st.tuples(st.just("storage"),
              st.integers(min_value=0, max_value=31).map(lambda b: 1 << b)),
    st.tuples(st.just("dp"), st.just(0)),
    st.tuples(st.just("none"), st.just(0)),
)


def _build_word(scheme, value, event):
    kind, pattern = event
    computed = value
    shadow_value = value
    if kind == "original":
        computed = value ^ pattern
    elif kind == "shadow":
        shadow_value = value ^ pattern
    word = scheme.write_shadow(scheme.write_original(computed),
                               shadow_value)
    stored = computed
    if kind == "storage":
        word = word.with_data_error(pattern)
        stored ^= pattern
    elif kind == "dp":
        word = word.with_dp_error()
    return word, stored, computed


def _check(scheme, value, event):
    word, stored, computed = _build_word(scheme, value, event)
    result = scheme.read(word)
    if result.is_due:
        return
    # Accepted data is either the physically stored value (possibly the
    # erroneous computation — detection-miss, not miscorrection) or the
    # repaired original write.  Any third value is a miscorrection.
    assert result.data in (stored, computed), (
        scheme.name, event, hex(value), hex(result.data))
    # Single-bit storage flips specifically must repair to the written
    # value.
    if event[0] == "storage":
        assert result.data == computed


@settings(max_examples=500)
@given(U32, EVENT)
def test_no_miscorrection_secded_dp(value, event):
    _check(SecDedDpSwap(), value, event)


@settings(max_examples=500)
@given(U32, EVENT)
def test_no_miscorrection_sec_dp(value, event):
    _check(SecDpSwap(), value, event)


@settings(max_examples=300)
@given(U32, EVENT)
def test_strict_policy_also_never_miscorrects(value, event):
    _check(SecDedDpSwap(check_correction="strict"), value, event)
