"""Tests for the linear block codes (Hamming SEC, Hsiao SEC-DED, TED)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import HammingSec, HsiaoSecDed, TedCode
from repro.ecc.base import DecodeStatus
from repro.ecc.linear import (LinearCode, distinct_nonzero_columns,
                              odd_weight_columns)
from repro.errors import CodeConstructionError, DecodingError

U32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestColumnConstruction:
    def test_odd_weight_columns_are_odd_and_distinct(self):
        columns = odd_weight_columns(7, 32)
        assert len(set(columns)) == 32
        assert all(col.bit_count() % 2 == 1 for col in columns)
        assert all(col.bit_count() >= 3 for col in columns)

    def test_odd_weight_columns_balanced_rows(self):
        columns = odd_weight_columns(7, 32)
        loads = [sum(1 for col in columns if col >> row & 1)
                 for row in range(7)]
        # 32 columns x weight 3 = 96 ones over 7 rows: loads of 13-14.
        assert max(loads) - min(loads) <= 1

    def test_odd_weight_overflow_raises(self):
        with pytest.raises(CodeConstructionError):
            odd_weight_columns(3, 10)  # only C(3,3)=1 odd column available

    def test_distinct_columns_prefer_even_weight(self):
        columns = distinct_nonzero_columns(6, 32)
        even = [col for col in columns if col.bit_count() % 2 == 0]
        assert len(even) == 31  # every even-weight non-unit 6-bit column

    def test_distinct_columns_overflow_raises(self):
        with pytest.raises(CodeConstructionError):
            distinct_nonzero_columns(3, 10)

    def test_unit_weight_data_column_rejected(self):
        with pytest.raises(CodeConstructionError):
            LinearCode("bad", [1, 3], check_bits=4)

    def test_duplicate_data_columns_rejected(self):
        with pytest.raises(CodeConstructionError):
            LinearCode("bad", [3, 3], check_bits=4)


class TestHsiaoSecDed:
    code = HsiaoSecDed()

    def test_geometry(self):
        assert self.code.data_bits == 32
        assert self.code.check_bits == 7
        assert self.code.total_bits == 39
        assert self.code.can_correct

    @given(U32)
    def test_roundtrip(self, data):
        check = self.code.encode(data)
        result = self.code.decode(data, check)
        assert result.status is DecodeStatus.OK
        assert result.data == data

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_single_data_bit_corrects(self, data, bit):
        check = self.code.encode(data)
        result = self.code.decode(data ^ (1 << bit), check)
        assert result.status is DecodeStatus.CORRECTED_DATA
        assert result.data == data
        assert result.corrected_bit == bit

    @given(U32, st.integers(min_value=0, max_value=6))
    def test_single_check_bit_corrects(self, data, bit):
        check = self.code.encode(data)
        result = self.code.decode(data, check ^ (1 << bit))
        assert result.status is DecodeStatus.CORRECTED_CHECK
        assert result.data == data

    @given(U32, st.data())
    def test_double_bit_detects(self, data, draw):
        positions = draw.draw(
            st.lists(st.integers(min_value=0, max_value=38), min_size=2,
                     max_size=2, unique=True))
        check = self.code.encode(data)
        for position in positions:
            if position < 32:
                data ^= 1 << position
            else:
                check ^= 1 << (position - 32)
        assert self.code.decode(data, check).status is DecodeStatus.DUE

    def test_exhaustive_double_bit_detection_one_word(self):
        data = 0xA5A5_5A5A
        check = self.code.encode(data)
        for first, second in itertools.combinations(range(39), 2):
            bad_data, bad_check = data, check
            for position in (first, second):
                if position < 32:
                    bad_data ^= 1 << position
                else:
                    bad_check ^= 1 << (position - 32)
            result = self.code.decode(bad_data, bad_check)
            assert result.status is DecodeStatus.DUE

    def test_out_of_range_data_raises(self):
        with pytest.raises(DecodingError):
            self.code.decode(1 << 32, 0)
        with pytest.raises(DecodingError):
            self.code.decode(0, 1 << 7)

    def test_low_alias_variant_reduces_alias_count(self):
        default_count = self.code.check_alias_error_count()
        low = HsiaoSecDed.low_alias()
        assert low.check_alias_error_count() < default_count

    def test_low_alias_variant_still_secded(self):
        low = HsiaoSecDed.low_alias()
        rng = random.Random(7)
        for _ in range(200):
            data = rng.getrandbits(32)
            check = low.encode(data)
            bit = rng.randrange(32)
            result = low.decode(data ^ (1 << bit), check)
            assert result.status is DecodeStatus.CORRECTED_DATA
            assert result.data == data
            first, second = rng.sample(range(32), 2)
            bad = data ^ (1 << first) ^ (1 << second)
            assert low.decode(bad, check).status is DecodeStatus.DUE


class TestHammingSec:
    code = HammingSec()

    def test_geometry(self):
        assert self.code.data_bits == 32
        assert self.code.check_bits == 6
        assert self.code.total_bits == 38

    @given(U32)
    def test_roundtrip(self, data):
        check = self.code.encode(data)
        assert self.code.decode(data, check).status is DecodeStatus.OK

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_single_data_bit_corrects(self, data, bit):
        check = self.code.encode(data)
        result = self.code.decode(data ^ (1 << bit), check)
        assert result.status is DecodeStatus.CORRECTED_DATA
        assert result.data == data

    def test_double_data_errors_never_alias_to_clean(self):
        # Distance 3 guarantees a double error cannot look error-free.
        data = 0x1234_5678
        check = self.code.encode(data)
        for first, second in itertools.combinations(range(32), 2):
            bad = data ^ (1 << first) ^ (1 << second)
            result = self.code.decode(bad, check)
            assert result.status is not DecodeStatus.OK

    def test_few_check_alias_pairs(self):
        # The even-weight-preferred construction leaves only the pairs
        # involving the single odd column (6 of 496).
        assert self.code.check_alias_error_count(max_weight=2) <= 6


class TestTedCode:
    code = TedCode()

    def test_detection_only(self):
        assert not self.code.can_correct

    @given(U32, st.data())
    def test_detects_up_to_three_errors(self, data, draw):
        count = draw.draw(st.integers(min_value=1, max_value=3))
        positions = draw.draw(
            st.lists(st.integers(min_value=0, max_value=38), min_size=count,
                     max_size=count, unique=True))
        check = self.code.encode(data)
        bad_data, bad_check = data, check
        for position in positions:
            if position < 32:
                bad_data ^= 1 << position
            else:
                bad_check ^= 1 << (position - 32)
        assert self.code.decode(bad_data, bad_check).status is DecodeStatus.DUE

    @given(U32)
    def test_roundtrip(self, data):
        check = self.code.encode(data)
        assert self.code.decode(data, check).status is DecodeStatus.OK
