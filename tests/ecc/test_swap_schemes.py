"""Tests for the SwapCodes register semantics and Figure 5 reporting.

The central properties proved here:

* a pipeline error in the *original* instruction (bad data, clean check) of
  up to 3 bits is always flagged, never miscorrected;
* a pipeline error in the *shadow* instruction never corrupts data;
* single-bit storage errors still correct (data), or stay benign (check/DP);
* the naive strawman (plain SEC-DED under swapping) really does miscorrect,
  which is the paper's motivation for the DP schemes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (DetectOnlySwap, ErrorClass, HsiaoSecDed,
                       NaiveSecDedSwap, ParityCode, ReadStatus, ResidueCode,
                       SecDedDpSwap, SecDpSwap, TedCode)

U32 = st.integers(min_value=0, max_value=2**32 - 1)
BITSETS = st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                   max_size=3, unique=True)


def dp_schemes():
    return [SecDedDpSwap(), SecDpSwap()]


def all_schemes():
    return dp_schemes() + [
        DetectOnlySwap(TedCode()),
        DetectOnlySwap(ResidueCode(7)),
        DetectOnlySwap(ParityCode()),
    ]


class TestRegisterWordSemantics:
    @pytest.mark.parametrize("scheme", all_schemes(), ids=lambda s: s.name)
    def test_original_write_is_valid_codeword(self, scheme):
        # Debugability (Section III-A): an interrupt between the original
        # and shadow must be able to read the register without a DUE.
        word = scheme.write_original(0xCAFE_F00D)
        result = scheme.read(word)
        assert not result.is_due
        assert result.data == 0xCAFE_F00D

    @pytest.mark.parametrize("scheme", all_schemes(), ids=lambda s: s.name)
    def test_clean_pair_reads_ok(self, scheme):
        word = scheme.write_pair(0x1234_5678)
        result = scheme.read(word)
        assert result.status is ReadStatus.OK
        assert result.data == 0x1234_5678

    def test_shadow_write_preserves_data_and_dp(self):
        scheme = SecDedDpSwap()
        word = scheme.write_original(111)
        updated = scheme.write_shadow(word, 222)
        assert updated.data == word.data
        assert updated.dp == word.dp
        assert updated.check == scheme.code.encode(222)

    def test_masked_write_values_wrap_to_32_bits(self):
        scheme = SecDedDpSwap()
        word = scheme.write_pair(2**32 + 5)
        assert word.data == 5

    def test_dp_error_requires_dp(self):
        scheme = DetectOnlySwap(TedCode())
        with pytest.raises(ValueError):
            scheme.write_pair(1).with_dp_error()

    def test_detect_only_rejects_correcting_code(self):
        with pytest.raises(ValueError):
            DetectOnlySwap(HsiaoSecDed())


class TestPipelineErrorsInOriginal:
    """Bad data written by the original; clean check from the shadow."""

    @pytest.mark.parametrize("scheme", dp_schemes(), ids=lambda s: s.name)
    @given(value=U32, bits=BITSETS)
    @settings(max_examples=60)
    def test_never_returns_wrong_data_silently(self, scheme, value, bits):
        bad = value
        for bit in bits:
            bad ^= 1 << bit
        word = scheme.write_shadow(scheme.write_original(bad), value)
        result = scheme.read(word)
        # Up to 3-bit compute errors: either flagged or (for the rare
        # check-column alias under the 'accept' policy) the erroneous data
        # passes — but correction to a *different* wrong value never happens.
        if not result.is_due:
            assert result.data in (bad,)

    @given(value=U32, bit=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60)
    def test_single_bit_always_due(self, value, bit):
        for scheme in dp_schemes():
            bad = value ^ (1 << bit)
            word = scheme.write_shadow(scheme.write_original(bad), value)
            result = scheme.read(word)
            assert result.is_due
            assert result.error_class is ErrorClass.PIPELINE

    @given(value=U32, bits=BITSETS)
    @settings(max_examples=60)
    def test_strict_policy_detects_all_three_bit_errors(self, value, bits):
        for scheme in (SecDedDpSwap(check_correction="strict"),
                       SecDpSwap(check_correction="strict")):
            # SEC-DP strict guarantees 1-2 bit detection; 3-bit data errors
            # can alias to another data column under a distance-3 code, but
            # the alias is still reported as a DUE via the parity check.
            if scheme.name == "sec-dp" and len(bits) > 2:
                continue
            bad = value
            for bit in bits:
                bad ^= 1 << bit
            word = scheme.write_shadow(scheme.write_original(bad), value)
            assert scheme.read(word).is_due

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SecDedDpSwap(check_correction="sometimes")


class TestPipelineErrorsInShadow:
    """Clean data; check bits encode a wrong value."""

    @pytest.mark.parametrize("scheme", dp_schemes(), ids=lambda s: s.name)
    @given(value=U32, bits=BITSETS)
    @settings(max_examples=60)
    def test_data_never_corrupted(self, scheme, value, bits):
        shadow_value = value
        for bit in bits:
            shadow_value ^= 1 << bit
        word = scheme.write_pair(value, shadow_value)
        result = scheme.read(word)
        assert result.is_due or result.data == value

    def test_naive_secded_miscorrects(self):
        # The motivating failure: plain SEC-DED correction flips a healthy
        # data bit when the shadow suffers a single-bit error.
        scheme = NaiveSecDedSwap()
        rng = random.Random(3)
        miscorrections = 0
        for _ in range(200):
            value = rng.getrandbits(32)
            word = scheme.write_pair(value, value ^ (1 << rng.randrange(32)))
            result = scheme.read(word)
            if not result.is_due and result.data != value:
                miscorrections += 1
        assert miscorrections > 150

    def test_dp_schemes_fix_the_naive_failure(self):
        rng = random.Random(3)
        for scheme in dp_schemes():
            for _ in range(200):
                value = rng.getrandbits(32)
                shadow = value ^ (1 << rng.randrange(32))
                result = scheme.read(scheme.write_pair(value, shadow))
                assert result.is_due or result.data == value


class TestStorageErrors:
    @pytest.mark.parametrize("scheme", dp_schemes(), ids=lambda s: s.name)
    @given(value=U32, bit=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60)
    def test_single_data_bit_corrects(self, scheme, value, bit):
        word = scheme.write_pair(value).with_data_error(1 << bit)
        result = scheme.read(word)
        assert result.status is ReadStatus.CORRECTED
        assert result.error_class is ErrorClass.STORAGE
        assert result.data == value

    @pytest.mark.parametrize("scheme", dp_schemes(), ids=lambda s: s.name)
    @given(value=U32, data=st.data())
    @settings(max_examples=60)
    def test_single_check_bit_benign(self, scheme, value, data):
        bit = data.draw(
            st.integers(min_value=0, max_value=scheme.code.check_bits - 1))
        word = scheme.write_pair(value).with_check_error(1 << bit)
        result = scheme.read(word)
        assert not result.is_due
        assert result.data == value

    @pytest.mark.parametrize("scheme", dp_schemes(), ids=lambda s: s.name)
    @given(value=U32)
    @settings(max_examples=60)
    def test_dp_bit_flip_benign(self, scheme, value):
        word = scheme.write_pair(value).with_dp_error()
        result = scheme.read(word)
        assert not result.is_due
        assert result.data == value

    def test_strict_policy_trades_check_correction_for_dues(self):
        scheme = SecDedDpSwap(check_correction="strict")
        word = scheme.write_pair(99).with_check_error(1)
        result = scheme.read(word)
        assert result.is_due  # availability cost of the strict policy

    def test_secded_dp_double_data_storage_error_detected(self):
        scheme = SecDedDpSwap()
        rng = random.Random(11)
        for _ in range(100):
            value = rng.getrandbits(32)
            first, second = rng.sample(range(32), 2)
            word = scheme.write_pair(value).with_data_error(
                (1 << first) | (1 << second))
            result = scheme.read(word)
            assert result.is_due or result.data == value

    def test_sec_dp_double_data_escape_count_is_minimal(self):
        # A (38,32) SEC code cannot make every data-column pair XOR away
        # from the unit syndromes (only 31 even-weight columns exist), so a
        # handful of double-bit patterns read back silently.  The chosen
        # columns confine the escapes to pairs involving the single
        # odd-weight column: at most 6 of the 496 patterns.
        import itertools

        scheme = SecDpSwap()
        value = 0x0F0F_A5A5
        escapes = 0
        for first, second in itertools.combinations(range(32), 2):
            word = scheme.write_pair(value).with_data_error(
                (1 << first) | (1 << second))
            result = scheme.read(word)
            if not result.is_due and result.data != value:
                escapes += 1
        assert escapes <= 6


class TestDetectOnlySchemes:
    @given(value=U32, bit=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60)
    def test_residue_detects_single_bit_pipeline_errors(self, value, bit):
        scheme = DetectOnlySwap(ResidueCode(7))
        bad = value ^ (1 << bit)
        word = scheme.write_shadow(scheme.write_original(bad), value)
        assert scheme.read(word).is_due

    @given(value=U32, bits=BITSETS)
    @settings(max_examples=60)
    def test_ted_detects_up_to_three_bits(self, value, bits):
        scheme = DetectOnlySwap(TedCode())
        bad = value
        for bit in bits:
            bad ^= 1 << bit
        word = scheme.write_shadow(scheme.write_original(bad), value)
        assert scheme.read(word).is_due

    def test_redundancy_accounting(self):
        assert SecDedDpSwap().redundancy_bits == 8  # 7 check + 1 dp
        assert SecDpSwap().redundancy_bits == 7     # fits SEC-DED budget
        assert DetectOnlySwap(ResidueCode(3)).redundancy_bits == 2


class TestStorageStrikeValidation:
    """Malformed storage strikes raise instead of wrapping silently."""

    def test_bit_out_of_range_raises(self):
        from repro.errors import FaultModelError
        scheme = SecDedDpSwap()
        with pytest.raises(FaultModelError):
            scheme.storage_strike(0x1234, 32)
        with pytest.raises(FaultModelError):
            scheme.storage_strike(0x1234, -1)

    def test_empty_mask_raises(self):
        from repro.errors import FaultModelError
        with pytest.raises(FaultModelError):
            SecDedDpSwap().storage_strike_mask(0x1234, 0)

    def test_mask_outside_data_segment_raises(self):
        from repro.errors import FaultModelError
        with pytest.raises(FaultModelError):
            SecDedDpSwap().storage_strike_mask(0x1234, 1 << 40)

    def test_multibit_mask_flips_exactly_those_bits(self):
        scheme = SecDedDpSwap()
        word = scheme.storage_strike_mask(0x1234, 0b101)
        clean = scheme.write_pair(0x1234)
        assert word.data == 0x1234 ^ 0b101
        assert word.check == clean.check
        assert word.dp == clean.dp

    def test_single_bit_strike_still_corrects(self):
        scheme = SecDedDpSwap()
        result = scheme.read(scheme.storage_strike(0xBEEF, 7))
        assert result.status is ReadStatus.CORRECTED
        assert result.data == 0xBEEF
