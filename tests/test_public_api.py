"""Cross-cutting tests of the public API surface and small helpers."""

import pytest

from repro import __version__, bitutils
from repro.ecc import standard_register_codes
from repro.ecc.base import DecodeStatus
from repro.inject.classify import Estimate
from repro.compiler import MixCounts


class TestVersionAndImports:
    def test_version(self):
        assert __version__ == "1.0.0"

    def test_top_level_packages_import(self):
        import repro.ecc
        import repro.gates
        import repro.gpu
        import repro.inject
        import repro.compiler
        import repro.workloads
        import repro.experiments
        import repro.certify
        assert repro.ecc.__doc__ and repro.gpu.__doc__
        assert repro.certify.__doc__


class TestStandardRegisterCodes:
    def test_registry_contents(self):
        codes = standard_register_codes()
        assert set(codes) == {"parity", "mod3", "mod7", "mod15", "mod31",
                              "mod63", "mod127", "mod255", "secded", "ted"}

    def test_all_roundtrip(self):
        for name, code in standard_register_codes().items():
            check = code.encode(0xCAFE_BABE)
            result = code.decode(0xCAFE_BABE, check)
            assert result.status is DecodeStatus.OK, name

    def test_detects_helper(self):
        codes = standard_register_codes()
        assert codes["secded"].detects(7, data_error=1)
        assert codes["mod3"].detects(7, data_error=1)
        # a mod-3-invisible pattern: +3 (bits 0 and 1 from value 1 -> 4)
        assert not codes["mod3"].detects(1, data_error=0b101)


class TestEstimate:
    def test_str_format(self):
        estimate = Estimate(0.123, 0.01)
        assert "12.30%" in str(estimate)

    def test_zero_samples(self):
        from repro.inject.classify import _proportion_estimate
        assert _proportion_estimate([]).mean == 0.0
        assert _proportion_estimate([1.0]).ci95 == 0.0


class TestMixCounts:
    def test_fraction_guard(self):
        with pytest.raises(ValueError):
            MixCounts().as_fractions(0)


class TestBitutilsEdges:
    def test_rotate_full_width(self):
        assert bitutils.rotate_left(0b1011, 4, 4) == 0b1011

    def test_bits_to_int_empty(self):
        assert bitutils.bits_to_int([]) == 0

    def test_flip_bits_empty(self):
        assert bitutils.flip_bits(42, []) == 42
