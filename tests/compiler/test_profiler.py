"""Tests for the code-mix profiler and operand tracer."""

import numpy as np

from repro.compiler import (CodeMixProfiler, MixCounts, OperandTracer,
                            compile_for_scheme)
from repro.gpu import LaunchConfig, MemorySpace, assemble, run_functional
from repro.inject import OperandTrace

SOURCE = """
    S2R R0, SR_TID
    LDG R1, [R0]
    IADD R2, R1, 5
    FADD R3, R1, 1.5
    DFMA RD4, RD6, RD6, RD6
    STG [R0+64], R2
    EXIT
"""


def profile(scheme):
    kernel = assemble("k", SOURCE)
    launch = LaunchConfig(1, 32)
    compiled = compile_for_scheme(kernel, launch, scheme)
    memory = MemorySpace(256)
    profiler = CodeMixProfiler()
    run_functional(compiled.kernel, compiled.adjust_launch(launch), memory,
                   observer=profiler)
    return profiler.counts


class TestCodeMixProfiler:
    def test_baseline_classification(self):
        counts = profile("baseline")
        assert counts.not_eligible == 3  # LDG, STG, EXIT
        assert counts.plain_eligible == 4  # S2R, IADD, FADD, DFMA
        assert counts.checking == 0

    def test_swdup_adds_checking_and_duplicates(self):
        counts = profile("swdup")
        assert counts.checked_duplicated >= 6  # 3 pairs
        assert counts.checking > 0
        assert counts.inserted > 0  # shadow copy of the load

    def test_swap_ecc_has_no_checking(self):
        counts = profile("swap-ecc")
        assert counts.checking == 0
        assert counts.checked_duplicated == 6
        assert counts.inserted == 0

    def test_predict_moves_work_to_predicted(self):
        mad = profile("pre-mad")
        fp = profile("pre-fp-mad")
        assert fp.checked_predicted > mad.checked_predicted
        assert fp.checked_duplicated == 0

    def test_bloat_math(self):
        counts = MixCounts(not_eligible=10, checked_duplicated=20,
                           checking=5, inserted=5)
        assert counts.total == 40
        assert counts.bloat(20) == 1.0
        fractions = counts.as_fractions(20)
        assert fractions["checking"] == 0.25


class TestOperandTracer:
    def test_collects_arithmetic_operands(self):
        kernel = assemble("k", """
            S2R R0, SR_TID
            IADD R1, R0, 100
            FADD R2, R1, 2.0
            DFMA RD4, RD6, RD6, RD6
            STG [R0], R1
            EXIT
        """)
        tracer = OperandTracer(limit_per_kind=100, lanes_per_step=4)
        memory = MemorySpace(256)
        run_functional(kernel, LaunchConfig(1, 32), memory,
                       observer=tracer)
        trace = tracer.trace
        int_adds = trace.values.get("int_add", [])
        assert int_adds
        assert all(pair[1] == 100 for pair in int_adds)
        assert trace.values.get("fp32_add")
        mads = trace.values.get("fp64_mad", [])
        assert mads and all(len(t) == 3 for t in mads)

    def test_respects_limit(self):
        kernel = assemble("k", """
            S2R R0, SR_TID
            MOV R1, 0
        loop:
            IADD R2, R1, 7
            IADD R1, R2, 1
            ISETP.LT P0, R1, 64
        @P0 BRA loop
            STG [R0], R1
            EXIT
        """)
        tracer = OperandTracer(limit_per_kind=5, lanes_per_step=2)
        run_functional(kernel, LaunchConfig(1, 32), MemorySpace(256),
                       observer=tracer)
        assert len(tracer.trace.values["int_add"]) <= 6

    def test_feeds_injection_campaign(self):
        from repro.inject import run_unit_campaign
        trace = OperandTrace()
        trace.add("int_add", (3, 4))
        trace.add("int_add", (1000, 2000))
        result = run_unit_campaign("fxp-add-32", sample_count=20,
                                   site_count=40, trace=trace)
        assert result.sample_count == 20
