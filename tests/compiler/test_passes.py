"""Tests for the resilience compiler passes."""

import numpy as np
import pytest

from repro.compiler import (SCHEMES, apply_interthread, apply_swap_ecc,
                            apply_swdup, compile_for_scheme,
                            resilience_mode)
from repro.errors import CompilationError
from repro.gpu import (LaunchConfig, MemorySpace, ResilienceState, assemble,
                       run_functional)

SIMPLE = """
    S2R R0, SR_TID
    LDG R1, [R0]
    IADD R2, R1, 5
    IMAD R3, R2, 3, R1
    STG [R0+64], R3
    EXIT
"""

ACCUMULATOR = """
    S2R R0, SR_TID
    MOV R1, 0
    MOV R2, 0
loop:
    IADD R1, R1, 1
    IMAD R2, R1, R1, R2
    ISETP.LT P0, R1, 8
@P0 BRA loop
    STG [R0], R2
    EXIT
"""


def run_config(kernel_source, scheme, threads=32, words=256, init=None):
    kernel = assemble("k", kernel_source)
    launch = LaunchConfig(1, threads)
    compiled = compile_for_scheme(kernel, launch, scheme)
    memory = MemorySpace(words)
    if init:
        for address, values in init.items():
            memory.write_words(address, values)
    state = ResilienceState(mode="none")
    run_functional(compiled.kernel, compiled.adjust_launch(launch), memory,
                   state)
    return compiled, memory, state


class TestSwDup:
    def test_doubles_register_usage(self):
        kernel = assemble("k", SIMPLE)
        compiled = apply_swdup(kernel)
        assert compiled.kernel.register_count() >= \
            2 * kernel.register_count()

    def test_inserts_checking_before_stores(self):
        kernel = assemble("k", SIMPLE)
        compiled = apply_swdup(kernel)
        ops = [i.op for i in compiled.kernel.instructions]
        store = ops.index("STG")
        assert "ISETP" in ops[:store]
        assert "BPT" in ops[:store]

    def test_nocheck_variant_has_no_traps(self):
        kernel = assemble("k", SIMPLE)
        compiled = apply_swdup(kernel, check=False)
        assert all(i.op != "BPT" for i in compiled.kernel.instructions)

    def test_duplicates_setps_into_shadow_predicates(self):
        kernel = assemble("k", ACCUMULATOR)
        compiled = apply_swdup(kernel)
        setps = [i for i in compiled.kernel.instructions
                 if i.op == "ISETP" and
                 i.meta.get("klass") != "checking"]
        dests = {i.dest.value for i in setps}
        assert 0 in dests and 3 in dests  # P0 and its shadow P3

    def test_functional_equivalence(self):
        init = {0: list(range(32))}
        __, base_mem, __ = run_config(SIMPLE, "baseline", init=init)
        __, dup_mem, state = run_config(SIMPLE, "swdup", init=init)
        assert np.array_equal(base_mem.read_words(64, 32),
                              dup_mem.read_words(64, 32))
        assert not state.detected  # no false-positive traps

    def test_reserved_predicate_rejected(self):
        kernel = assemble("k", """
            S2R R0, SR_TID
            ISETP.LT P4, R0, 4
        @P4 IADD R1, R0, 1
            STG [R0], R1
            EXIT
        """)
        with pytest.raises(CompilationError):
            apply_swdup(kernel)


class TestSwapEcc:
    def test_pairs_share_destination(self):
        kernel = assemble("k", SIMPLE)
        compiled = apply_swap_ecc(kernel)
        shadows = [i for i in compiled.kernel.instructions
                   if i.meta.get("role") == "shadow"]
        assert shadows
        for shadow in shadows:
            assert shadow.meta.get("swap_shadow")
        # No checking code at all.
        ops = {i.op for i in compiled.kernel.instructions}
        assert "BPT" not in ops

    def test_no_shadow_register_space(self):
        kernel = assemble("k", SIMPLE)
        compiled = apply_swap_ecc(kernel)
        # Only a couple of scratch registers may be added.
        assert compiled.kernel.register_count() <= \
            kernel.register_count() + 2

    def test_moves_not_duplicated(self):
        kernel = assemble("k", "S2R R0, SR_TID\nMOV R1, R0\n"
                               "STG [R0], R1\nEXIT")
        compiled = apply_swap_ecc(kernel)
        moves = [i for i in compiled.kernel.instructions if i.op == "MOV"]
        assert len(moves) == 1
        assert moves[0].meta["role"] == "predicted"

    def test_accumulation_rewritten_through_scratch(self):
        kernel = assemble("k", ACCUMULATOR)
        compiled = apply_swap_ecc(kernel)
        for instruction in compiled.kernel.instructions:
            if instruction.meta.get("role") in ("original", "shadow"):
                dest = set(instruction.dest_registers())
                assert not dest.intersection(
                    instruction.source_registers()), str(instruction)

    def test_functional_equivalence_with_accumulators(self):
        __, base_mem, __ = run_config(ACCUMULATOR, "baseline")
        __, swap_mem, __ = run_config(ACCUMULATOR, "swap-ecc")
        assert np.array_equal(base_mem.read_words(0, 32),
                              swap_mem.read_words(0, 32))

    def test_predict_tiers_shrink_duplication(self):
        kernel = assemble("k", SIMPLE)

        def shadow_count(tier):
            compiled = apply_swap_ecc(assemble("k", SIMPLE), tier)
            return sum(1 for i in compiled.kernel.instructions
                       if i.meta.get("role") == "shadow")

        assert shadow_count(None) > shadow_count("addsub") >= \
            shadow_count("mad")
        assert shadow_count("mad") == 0  # IADD and IMAD both predicted

    def test_unknown_tier_rejected(self):
        with pytest.raises(CompilationError):
            apply_swap_ecc(assemble("k", SIMPLE), "quantum")


class TestInterthread:
    def test_doubles_threads_and_halves_tid(self):
        kernel = assemble("k", SIMPLE)
        launch = LaunchConfig(1, 32)
        compiled = apply_interthread(kernel, launch)
        assert compiled.thread_multiplier == 2
        adjusted = compiled.adjust_launch(launch)
        assert adjusted.threads_per_cta == 64

    def test_rejects_shuffles(self):
        kernel = assemble("k", """
            S2R R0, SR_TID
            SHFL.BFLY R1, R0, 16
            STG [R0], R1
            EXIT
        """)
        with pytest.raises(CompilationError):
            apply_interthread(kernel, LaunchConfig(1, 32))

    def test_rejects_oversized_ctas(self):
        kernel = assemble("k", SIMPLE)
        with pytest.raises(CompilationError):
            apply_interthread(kernel, LaunchConfig(1, 1024))

    def test_functional_equivalence(self):
        init = {0: list(range(32))}
        __, base_mem, __ = run_config(SIMPLE, "baseline", init=init)
        __, inter_mem, state = run_config(SIMPLE, "interthread", init=init)
        assert np.array_equal(base_mem.read_words(64, 32),
                              inter_mem.read_words(64, 32))
        assert not state.detected

    def test_atomic_broadcast(self):
        source = """
            S2R R0, SR_TID
            MOV R1, 1
            ATOM.ADD R2, [0], R1
            STG [R0+8], R2
            EXIT
        """
        __, memory, __ = run_config(source, "interthread", threads=32)
        # Only the original half performed atomics: count is 32, not 64.
        assert memory.read_words(0, 1)[0] == 32
        old = memory.read_words(8, 32)
        assert sorted(old.tolist()) == list(range(32))


class TestRegistry:
    def test_all_schemes_resolve(self):
        kernel_source = SIMPLE
        for scheme in SCHEMES:
            kernel = assemble("k", kernel_source)
            compiled = compile_for_scheme(kernel, LaunchConfig(1, 32),
                                          scheme)
            assert compiled.kernel.instructions
            assert resilience_mode(scheme) in ("none", "swdup", "swap")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(CompilationError):
            compile_for_scheme(assemble("k", SIMPLE), LaunchConfig(1, 32),
                               "magic")
