"""Integration tests: injected faults versus each protection scheme.

These drive the whole stack — compiler pass, simulator, ECC decode — and
assert the paper's headline property: protected programs never silently
corrupt their output.
"""

import random

import numpy as np
import pytest

from repro.compiler import compile_for_scheme, resilience_mode
from repro.ecc import DetectOnlySwap, ResidueCode, SecDedDpSwap, TedCode
from repro.errors import SimulationError
from repro.gpu import (FaultPlan, LaunchConfig, MemorySpace,
                       ResilienceState, assemble, run_functional)

SOURCE = """
    S2R R0, SR_TID
    LDG R1, [R0]
    IADD R2, R1, 3
    IMAD R3, R2, 5, R1
    XOR R4, R3, R2
    STG [R0+64], R4
    EXIT
"""


def run_with_fault(scheme_name, plan, register_scheme=None):
    kernel = assemble("k", SOURCE)
    launch = LaunchConfig(1, 32)
    compiled = compile_for_scheme(kernel, launch, scheme_name)
    memory = MemorySpace(256)
    memory.write_words(0, list(range(32)))
    mode = resilience_mode(scheme_name)
    if mode == "swap" and register_scheme is None:
        register_scheme = SecDedDpSwap()
    state = ResilienceState(
        mode=mode, scheme=register_scheme if mode == "swap" else None,
        fault=plan)
    try:
        run_functional(compiled.kernel, launch, memory, state)
    except SimulationError:
        return state, None
    values = np.arange(32)
    want = ((values + 3) * 5 + values) ^ (values + 3)
    correct = np.array_equal(memory.read_words(64, 32),
                             want.astype(np.uint32))
    return state, correct


def plans(count, seed):
    rng = random.Random(seed)
    return [FaultPlan(0, 0, rng.randrange(12), rng.randrange(32),
                      rng.randrange(32)) for __ in range(count)]


class TestProtectionMatrix:
    def test_baseline_suffers_sdc(self):
        sdc = 0
        for plan in plans(30, seed=1):
            state, correct = run_with_fault("baseline", plan)
            if state.fault_fired and correct is False:
                sdc += 1
        assert sdc >= 3  # unprotected programs silently corrupt

    @pytest.mark.parametrize("scheme", ["swdup", "swap-ecc", "pre-mad"])
    def test_protected_never_silently_corrupt(self, scheme):
        for plan in plans(30, seed=2):
            state, correct = run_with_fault(scheme, plan)
            if not state.fault_fired:
                continue
            assert state.detected or correct is not False, (scheme, plan)

    def test_interthread_detects_via_shuffle_checks(self):
        # Faults in the pass's own prologue (the lane-index bookkeeping,
        # the first ~5 datapath instructions) are an inherent RMT coverage
        # gap: corrupting the original/shadow pairing silently breaks the
        # program. Past the prologue, shuffle checks catch everything that
        # matters.
        detected = hit = 0
        rng_plans = [plan for plan in plans(60, seed=3)
                     if plan.occurrence >= 5]
        for plan in rng_plans:
            state, correct = run_with_fault("interthread", plan)
            if state.fault_fired:
                hit += 1
                if state.detected:
                    detected += 1
                else:
                    assert correct is not False, plan
        assert hit > 0 and detected > 0

    def test_interthread_prologue_is_unprotected(self):
        # Document the gap explicitly: a fault in the lane-index setup can
        # silently corrupt the output (no equivalent exists for SwapCodes,
        # whose machinery is the ECC hardware itself).
        sdc = 0
        for lane in range(0, 32, 3):
            for bit in (1, 12, 30):
                plan = FaultPlan(0, 0, 0, lane, bit)
                state, correct = run_with_fault("interthread", plan)
                if state.fault_fired and not state.detected and \
                        correct is False:
                    sdc += 1
        assert sdc > 0

    def test_weak_code_lets_aliases_through(self):
        # With mod-3, some faults alias (value changed by a multiple of 3):
        # the run finishes with wrong output and no DUE — the Figure 11
        # residual SDC risk, end to end.
        outcomes = {"detected": 0, "sdc": 0, "benign": 0}
        for plan in plans(120, seed=4):
            state, correct = run_with_fault(
                "swap-ecc", plan,
                register_scheme=DetectOnlySwap(ResidueCode(3)))
            if not state.fault_fired:
                continue
            if state.detected:
                outcomes["detected"] += 1
            elif correct is False:
                outcomes["sdc"] += 1
            else:
                outcomes["benign"] += 1
        assert outcomes["detected"] > 0
        # mod-3 detects the overwhelming majority but not everything
        total = sum(outcomes.values())
        assert outcomes["sdc"] < total * 0.2

    def test_strong_code_catches_everything_here(self):
        for plan in plans(60, seed=5):
            state, correct = run_with_fault(
                "swap-ecc", plan,
                register_scheme=DetectOnlySwap(TedCode()))
            if state.fault_fired:
                assert state.detected or correct is not False
