"""Carry-save multi-operand modular adders (CS-MOMA), Section III-C.

A CS-MOMA reduces many ``a``-bit operands modulo ``2**a - 1`` with a tree of
end-around-carry carry-save adders: each 3:2 compressor level produces a sum
word plus a carry word whose top carry wraps around to bit 0 (a left
rotation), keeping every intermediate value inside the residue ring.  The
final two words are merged by an end-around-carry adder.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import NetlistError
from repro.gates.adders import eac_add
from repro.gates.buslib import full_adder, rotate_bus_left
from repro.gates.netlist import Bus, Netlist


def eac_carry_save_level(netlist: Netlist, x: Sequence[int],
                         y: Sequence[int], z: Sequence[int]
                         ) -> Tuple[Bus, Bus]:
    """One end-around-carry 3:2 compressor: three words in, (sum, carry) out.

    The carry word is rotated left one position so the carry out of the top
    bit re-enters at bit 0 — the end-around wrap that keeps the value
    congruent modulo ``2**a - 1``.
    """
    if not len(x) == len(y) == len(z):
        raise NetlistError("CSA operand width mismatch")
    sums: Bus = []
    carries: Bus = []
    for a_bit, b_bit, c_bit in zip(x, y, z):
        total, carry = full_adder(netlist, a_bit, b_bit, c_bit)
        sums.append(total)
        carries.append(carry)
    return sums, rotate_bus_left(carries, 1)


def cs_moma_reduce(netlist: Netlist,
                   operands: Sequence[Sequence[int]]) -> Tuple[Bus, Bus]:
    """Reduce any number of ``a``-bit operands to a carry-save pair."""
    pending: List[Bus] = [list(op) for op in operands]
    if not pending:
        raise NetlistError("CS-MOMA needs at least one operand")
    width = len(pending[0])
    if any(len(op) != width for op in pending):
        raise NetlistError("CS-MOMA operand width mismatch")
    if len(pending) == 1:
        zero = [netlist.const(0) for _ in range(width)]
        return pending[0], zero
    while len(pending) > 2:
        next_level: List[Bus] = []
        index = 0
        while index + 3 <= len(pending):
            total, carry = eac_carry_save_level(
                netlist, pending[index], pending[index + 1],
                pending[index + 2])
            next_level.extend([total, carry])
            index += 3
        next_level.extend(pending[index:])
        pending = next_level
    return pending[0], pending[1]


def cs_moma_sum(netlist: Netlist,
                operands: Sequence[Sequence[int]]) -> Bus:
    """CS-MOMA reduction followed by the final end-around-carry merge."""
    total, carry = cs_moma_reduce(netlist, operands)
    if all(netlist.nodes[net].op.name.startswith("CONST")
           for net in carry):
        return list(total)
    return eac_add(netlist, total, carry)
