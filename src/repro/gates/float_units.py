"""Gate-level floating-point add and multiply-add units.

These mirror the pipelined FP32/FP64 units the paper synthesizes for its
gate-level injection study (Section IV-A).  To keep the netlists tractable
the units implement a documented simplification of IEEE-754:

* round-toward-zero (truncation) everywhere — no guard/round/sticky logic;
* denormals flush to zero (a zero exponent field means exact zero);
* no NaN/infinity semantics — the top exponent is an ordinary value and
  overflow saturates to the largest representable magnitude.

The same spec is implemented twice: as a netlist (:func:`build_fp_add_unit`,
:func:`build_fp_mad_unit`) and as the pure-Python reference
(:func:`ref_fp_add`, :func:`ref_fp_mad`) the tests compare against
bit-for-bit.  Fault-injection results depend only on the unit's internal
structure (multipliers, alignment and normalization shifters, wide adders),
which these netlists share with real FPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.gates.adders import incrementer, kogge_stone_add, subtract
from repro.gates.buslib import bus_mux, constant_bus
from repro.gates.netlist import Bus, Netlist
from repro.gates.shifters import normalize_bus, shift_left_bus, shift_right_bus


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format: 1 sign, ``exp_bits``, ``man_bits``."""

    exp_bits: int
    man_bits: int
    name: str = ""

    @property
    def width(self) -> int:
        return 1 + self.exp_bits + self.man_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def max_exp(self) -> int:
        return (1 << self.exp_bits) - 1

    def unpack(self, raw: int) -> Tuple[int, int, int]:
        """Split a raw encoding into (sign, exponent, mantissa)."""
        man = raw & ((1 << self.man_bits) - 1)
        exp = (raw >> self.man_bits) & ((1 << self.exp_bits) - 1)
        sign = (raw >> (self.width - 1)) & 1
        return sign, exp, man

    def pack(self, sign: int, exp: int, man: int) -> int:
        return ((sign & 1) << (self.width - 1)) | \
            ((exp & ((1 << self.exp_bits) - 1)) << self.man_bits) | \
            (man & ((1 << self.man_bits) - 1))


FP32 = FloatFormat(exp_bits=8, man_bits=23, name="fp32")
FP64 = FloatFormat(exp_bits=11, man_bits=52, name="fp64")


# ----------------------------------------------------------------------
# reference model (mirrors the netlist step for step)
# ----------------------------------------------------------------------
def ref_fp_add(fmt: FloatFormat, x: int, y: int) -> int:
    """Reference addition on raw encodings; mirrors the netlist exactly."""
    sx, ex, mx = fmt.unpack(x)
    sy, ey, my = fmt.unpack(y)
    man_one = 1 << fmt.man_bits
    sig_x = (man_one | mx) if ex != 0 else 0
    sig_y = (man_one | my) if ey != 0 else 0
    mag_x = (ex << fmt.man_bits) | (mx if ex != 0 else 0)
    mag_y = (ey << fmt.man_bits) | (my if ey != 0 else 0)
    if mag_x >= mag_y:
        sign1, exp1, sig1 = sx, ex, sig_x
        sign2, exp2, sig2 = sy, ey, sig_y
    else:
        sign1, exp1, sig1 = sy, ey, sig_y
        sign2, exp2, sig2 = sx, ex, sig_x
    diff = exp1 - exp2
    aligned = sig2 >> diff if diff < fmt.man_bits + 2 else 0
    if sign1 == sign2:
        total = sig1 + aligned
        if total >> (fmt.man_bits + 1):
            mantissa = (total >> 1) & (man_one - 1)
            exp = exp1 + 1
        else:
            mantissa = total & (man_one - 1)
            exp = exp1
        if total == 0:
            return 0
        if exp >= fmt.max_exp:
            return fmt.pack(sign1, fmt.max_exp, man_one - 1)
        return fmt.pack(sign1, exp, mantissa)
    delta = sig1 - aligned
    if delta == 0:
        return 0
    lzc = (fmt.man_bits + 1) - delta.bit_length()
    normalized = delta << lzc
    exp = exp1 - lzc
    if exp <= 0:
        return 0
    return fmt.pack(sign1, exp, normalized & (man_one - 1))


def ref_fp_mad(fmt: FloatFormat, a: int, b: int, c: int) -> int:
    """Reference fused multiply-add (truncating) on raw encodings."""
    sa, ea, ma = fmt.unpack(a)
    sb, eb, mb = fmt.unpack(b)
    sc, ec, mc = fmt.unpack(c)
    m = fmt.man_bits
    man_one = 1 << m
    wide_bits = 2 * m + 2
    wide_top = 1 << (wide_bits - 1)

    sig_a = (man_one | ma) if ea != 0 else 0
    sig_b = (man_one | mb) if eb != 0 else 0
    sig_c = (man_one | mc) if ec != 0 else 0

    # Product in wide form: significand MSB at bit 2m+1.
    product = sig_a * sig_b
    sp = sa ^ sb
    if product == 0:
        ep, wide_p = 0, 0
    else:
        ep = ea + eb - fmt.bias + 1
        if not product & wide_top:
            product <<= 1
            ep -= 1
        if ep <= 0:
            ep, wide_p = 0, 0
        elif ep >= fmt.max_exp:
            ep, wide_p = fmt.max_exp, (1 << wide_bits) - 1
        else:
            wide_p = product
    if wide_p == 0:
        ep = 0

    # Addend in the same wide form.
    wide_c = sig_c << (m + 1)

    mag_p = (ep << wide_bits) | wide_p
    mag_c = (ec << wide_bits) | wide_c
    if mag_p >= mag_c:
        sign1, exp1, sig1 = sp, ep, wide_p
        sign2, exp2, sig2 = sc, ec, wide_c
    else:
        sign1, exp1, sig1 = sc, ec, wide_c
        sign2, exp2, sig2 = sp, ep, wide_p
    diff = exp1 - exp2
    aligned = sig2 >> diff if diff < wide_bits + 1 else 0
    if sign1 == sign2:
        total = sig1 + aligned
        if total >> wide_bits:
            result_sig = total >> 1
            exp = exp1 + 1
        else:
            result_sig = total
            exp = exp1
        if result_sig == 0:
            return 0
        if exp >= fmt.max_exp:
            return fmt.pack(sign1, fmt.max_exp, man_one - 1)
        mantissa = (result_sig >> (m + 1)) & (man_one - 1)
        return fmt.pack(sign1, exp, mantissa)
    delta = sig1 - aligned
    if delta == 0:
        return 0
    lzc = wide_bits - delta.bit_length()
    normalized = delta << lzc
    exp = exp1 - lzc
    if exp <= 0:
        return 0
    mantissa = (normalized >> (m + 1)) & (man_one - 1)
    return fmt.pack(sign1, exp, mantissa)


# ----------------------------------------------------------------------
# netlist helpers
# ----------------------------------------------------------------------
def _unpack_bus(netlist: Netlist, raw: Sequence[int],
                fmt: FloatFormat) -> Tuple[int, Bus, Bus]:
    man = list(raw[:fmt.man_bits])
    exp = list(raw[fmt.man_bits:fmt.man_bits + fmt.exp_bits])
    sign = raw[fmt.width - 1]
    return sign, exp, man


def _gated_significand(netlist: Netlist, exp: Bus, man: Bus) -> Tuple[Bus, int]:
    """(significand with implicit one, nonzero flag); FTZ when exp == 0."""
    nonzero = netlist.or_tree(exp)
    gated = [netlist.and_(bit, nonzero) for bit in man]
    return gated + [nonzero], nonzero


def _greater_equal(netlist: Netlist, a: Bus, b: Bus) -> int:
    """1 when bus ``a`` >= bus ``b`` (unsigned)."""
    __, not_borrow = subtract(netlist, a, b)
    return not_borrow


def _select(netlist: Netlist, cond: int, a, b):
    if isinstance(a, list):
        return bus_mux(netlist, cond, a, b)
    return netlist.mux(cond, a, b)


def build_fp_add_unit(fmt: FloatFormat, pipelined: bool = True) -> Netlist:
    """A floating-point adder implementing the documented truncating spec."""
    netlist = Netlist(f"{fmt.name}-add")
    x = netlist.input_bus("x", fmt.width)
    y = netlist.input_bus("y", fmt.width)
    if pipelined:
        x = netlist.stage(x)
        y = netlist.stage(y)

    sx, ex, mx = _unpack_bus(netlist, x, fmt)
    sy, ey, my = _unpack_bus(netlist, y, fmt)
    sig_x, __ = _gated_significand(netlist, ex, mx)
    sig_y, __ = _gated_significand(netlist, ey, my)
    mag_x = sig_x[:fmt.man_bits] + ex
    mag_y = sig_y[:fmt.man_bits] + ey
    x_ge = _greater_equal(netlist, mag_x, mag_y)

    sign1 = _select(netlist, x_ge, sx, sy)
    sign2 = _select(netlist, x_ge, sy, sx)
    exp1 = _select(netlist, x_ge, ex, ey)
    exp2 = _select(netlist, x_ge, ey, ex)
    sig1 = _select(netlist, x_ge, sig_x, sig_y)
    sig2 = _select(netlist, x_ge, sig_y, sig_x)

    diff, __ = subtract(netlist, exp1, exp2)
    aligned = shift_right_bus(netlist, sig2, diff)

    if pipelined:
        regs = netlist.stage([sign1, sign2] + exp1 + sig1 + aligned)
        sign1, sign2 = regs[0], regs[1]
        exp1 = regs[2:2 + fmt.exp_bits]
        base = 2 + fmt.exp_bits
        sig1 = regs[base:base + fmt.man_bits + 1]
        aligned = regs[base + fmt.man_bits + 1:]

    effective_sub = netlist.xor(sign1, sign2)

    # Same-sign path: add, renormalize on carry out.
    total, carry = kogge_stone_add(netlist, sig1, aligned)
    add_mantissa = bus_mux(netlist, carry, total[1:fmt.man_bits + 1],
                           total[:fmt.man_bits])
    exp_inc, exp_inc_carry = incrementer(netlist, exp1, carry)
    add_zero = netlist.not_(
        netlist.or_(netlist.or_tree(total), carry))
    add_overflow = netlist.or_(
        exp_inc_carry, netlist.and_tree(exp_inc))

    # Opposite-sign path: subtract, normalize, drop the exponent.
    delta, __ = subtract(netlist, sig1, aligned)
    normalized, lzc = normalize_bus(netlist, delta)
    sub_zero = netlist.not_(netlist.or_tree(delta))
    # exp1 - lzc in exp_bits + 1 bits two's complement.
    wide_exp1 = list(exp1) + [netlist.const(0)]
    wide_lzc = list(lzc) + [netlist.const(0)] * (len(wide_exp1) - len(lzc))
    sub_exp, __ = subtract(netlist, wide_exp1, wide_lzc)
    sub_underflow = netlist.or_(
        sub_exp[-1], netlist.not_(netlist.or_tree(sub_exp[:-1])))

    mantissa = bus_mux(netlist, effective_sub,
                       normalized[:fmt.man_bits], add_mantissa)
    exponent = bus_mux(netlist, effective_sub, sub_exp[:-1], exp_inc)
    is_zero = _select(netlist, effective_sub, sub_zero, add_zero)
    flush = netlist.or_(
        is_zero, netlist.and_(effective_sub, sub_underflow))
    saturate = netlist.and_(netlist.not_(effective_sub), add_overflow)

    max_exp = constant_bus(netlist, fmt.max_exp, fmt.exp_bits)
    max_man = constant_bus(netlist, (1 << fmt.man_bits) - 1, fmt.man_bits)
    zero_exp = constant_bus(netlist, 0, fmt.exp_bits)
    zero_man = constant_bus(netlist, 0, fmt.man_bits)

    exponent = bus_mux(netlist, saturate, max_exp, exponent)
    mantissa = bus_mux(netlist, saturate, max_man, mantissa)
    exponent = bus_mux(netlist, flush, zero_exp, exponent)
    mantissa = bus_mux(netlist, flush, zero_man, mantissa)
    sign = netlist.and_(sign1, netlist.not_(flush))

    result = mantissa + exponent + [sign]
    if pipelined:
        result = netlist.stage(result)
    netlist.set_output("result", result)
    return netlist


def build_fp_mad_unit(fmt: FloatFormat, pipelined: bool = True) -> Netlist:
    """A floating-point fused multiply-add on the same truncating spec."""
    from repro.gates.multiplier import multiply_bus

    netlist = Netlist(f"{fmt.name}-mad")
    a = netlist.input_bus("a", fmt.width)
    b = netlist.input_bus("b", fmt.width)
    c = netlist.input_bus("c", fmt.width)
    if pipelined:
        a = netlist.stage(a)
        b = netlist.stage(b)
        c = netlist.stage(c)

    m = fmt.man_bits
    wide_bits = 2 * m + 2
    sa, ea, ma = _unpack_bus(netlist, a, fmt)
    sb, eb, mb = _unpack_bus(netlist, b, fmt)
    sc, ec, mc = _unpack_bus(netlist, c, fmt)
    sig_a, a_nonzero = _gated_significand(netlist, ea, ma)
    sig_b, b_nonzero = _gated_significand(netlist, eb, mb)
    sig_c, __ = _gated_significand(netlist, ec, mc)

    # --- product path ---------------------------------------------------
    product = multiply_bus(netlist, sig_a, sig_b, wide_bits)
    sp = netlist.xor(sa, sb)
    product_nonzero = netlist.and_(a_nonzero, b_nonzero)
    # ep = ea + eb - bias + 1, in exp_bits + 2 two's complement.
    wide = fmt.exp_bits + 2
    ea_w = list(ea) + [netlist.const(0)] * 2
    eb_w = list(eb) + [netlist.const(0)] * 2
    exp_sum, __ = kogge_stone_add(netlist, ea_w, eb_w)
    bias_term = constant_bus(
        netlist, (fmt.bias - 1) & ((1 << wide) - 1), wide)
    ep_w, __ = subtract(netlist, exp_sum, bias_term)
    # Normalize the product MSB to bit 2m+1.
    top_missing = netlist.not_(product[wide_bits - 1])
    shifted_product = [netlist.const(0)] + product[:-1]
    product = bus_mux(netlist, top_missing, shifted_product, product)
    one_w = constant_bus(netlist, 1, wide)
    ep_dec, __ = subtract(netlist, ep_w, one_w)
    ep_w = bus_mux(netlist, top_missing, ep_dec, ep_w)
    # Exponent range handling.
    ep_neg = ep_w[-1]
    ep_low_zero = netlist.not_(netlist.or_tree(ep_w[:-1]))
    ep_under = netlist.or_(ep_neg, ep_low_zero)
    high_bits = [ep_w[fmt.exp_bits], ep_w[fmt.exp_bits + 1]]
    ep_over = netlist.and_(
        netlist.not_(ep_neg),
        netlist.or_(netlist.or_tree(high_bits),
                    netlist.and_tree(ep_w[:fmt.exp_bits])))
    product_zero = netlist.or_(
        netlist.not_(product_nonzero), ep_under)
    all_ones_wide = constant_bus(netlist, (1 << wide_bits) - 1, wide_bits)
    max_exp_bus = constant_bus(netlist, fmt.max_exp, fmt.exp_bits)
    zero_wide = constant_bus(netlist, 0, wide_bits)
    zero_exp = constant_bus(netlist, 0, fmt.exp_bits)

    wide_p = bus_mux(netlist, ep_over, all_ones_wide, product)
    ep_bus = bus_mux(netlist, ep_over, max_exp_bus, ep_w[:fmt.exp_bits])
    wide_p = bus_mux(netlist, product_zero, zero_wide, wide_p)
    ep_bus = bus_mux(netlist, product_zero, zero_exp, ep_bus)

    # --- addend in wide form ---------------------------------------------
    wide_c = [netlist.const(0)] * (m + 1) + sig_c

    if pipelined:
        regs = netlist.stage([sp, sc] + ep_bus + list(ec) + wide_p + wide_c)
        sp, sc = regs[0], regs[1]
        offset = 2
        ep_bus = regs[offset:offset + fmt.exp_bits]
        offset += fmt.exp_bits
        ec = regs[offset:offset + fmt.exp_bits]
        offset += fmt.exp_bits
        wide_p = regs[offset:offset + wide_bits]
        offset += wide_bits
        wide_c = regs[offset:offset + wide_bits]

    # --- magnitude order, align, add/sub ----------------------------------
    mag_p = list(wide_p) + list(ep_bus)
    mag_c = list(wide_c) + list(ec)
    p_ge = _greater_equal(netlist, mag_p, mag_c)
    sign1 = _select(netlist, p_ge, sp, sc)
    sign2 = _select(netlist, p_ge, sc, sp)
    exp1 = _select(netlist, p_ge, list(ep_bus), list(ec))
    exp2 = _select(netlist, p_ge, list(ec), list(ep_bus))
    sig1 = _select(netlist, p_ge, list(wide_p), list(wide_c))
    sig2 = _select(netlist, p_ge, list(wide_c), list(wide_p))

    diff, __ = subtract(netlist, exp1, exp2)
    aligned = shift_right_bus(netlist, sig2, diff)
    effective_sub = netlist.xor(sign1, sign2)

    total, carry = kogge_stone_add(netlist, sig1, aligned)
    add_sig = bus_mux(netlist, carry, total[1:] + [carry], total)
    exp_inc, exp_inc_carry = incrementer(netlist, exp1, carry)
    add_zero = netlist.not_(netlist.or_(netlist.or_tree(total), carry))
    add_overflow = netlist.or_(exp_inc_carry, netlist.and_tree(exp_inc))

    delta, __ = subtract(netlist, sig1, aligned)
    normalized, lzc = normalize_bus(netlist, delta)
    sub_zero = netlist.not_(netlist.or_tree(delta))
    wide_exp1 = list(exp1) + [netlist.const(0)]
    wide_lzc = list(lzc) + [netlist.const(0)] * (len(wide_exp1) - len(lzc))
    sub_exp, __ = subtract(netlist, wide_exp1, wide_lzc)
    sub_underflow = netlist.or_(
        sub_exp[-1], netlist.not_(netlist.or_tree(sub_exp[:-1])))

    result_sig = bus_mux(netlist, effective_sub, normalized, add_sig)
    exponent = bus_mux(netlist, effective_sub, sub_exp[:-1], exp_inc)
    is_zero = _select(netlist, effective_sub, sub_zero, add_zero)
    flush = netlist.or_(is_zero,
                        netlist.and_(effective_sub, sub_underflow))
    saturate = netlist.and_(netlist.not_(effective_sub), add_overflow)

    mantissa = result_sig[m + 1:2 * m + 1]
    max_man = constant_bus(netlist, (1 << m) - 1, m)
    zero_man = constant_bus(netlist, 0, m)
    exponent = bus_mux(netlist, saturate, max_exp_bus, exponent)
    mantissa = bus_mux(netlist, saturate, max_man, mantissa)
    exponent = bus_mux(netlist, flush, zero_exp, exponent)
    mantissa = bus_mux(netlist, flush, zero_man, mantissa)
    sign = netlist.and_(sign1, netlist.not_(flush))

    result = mantissa + exponent + [sign]
    if pipelined:
        result = netlist.stage(result)
    netlist.set_output("result", result)
    return netlist
