"""Gate-level netlists: arithmetic units, ECC hardware, and the area model.

The package provides generators for every unit the paper's gate-level study
uses (Section IV-A, Table IV): fixed-point add and MAD, floating-point add
and MAD in FP32/FP64, residue encoders and predictors including the Figure 9
mixed-width MAD predictor and recode encoder, and the SEC-DED
encoder/decoder with the Swap-ECC reporting add-ons.
"""

from repro.gates.adders import (eac_add, incrementer, kogge_stone_add,
                                ripple_carry_add, subtract)
from repro.gates.area import AreaRow, format_table_iv, table_iv_rows
from repro.gates.ecc_units import (build_decoder, build_dp_reporting,
                                   build_encoder, build_move_propagate)
from repro.gates.float_units import (FP32, FP64, FloatFormat,
                                     build_fp_add_unit, build_fp_mad_unit,
                                     ref_fp_add, ref_fp_mad)
from repro.gates.moma import cs_moma_reduce, cs_moma_sum
from repro.gates.multiplier import build_add_unit, build_mad_unit, multiply_bus
from repro.gates.netlist import GATE_AREA, Bus, Netlist, Node, Op, PackedInputs
from repro.gates.residue_units import (build_add_predictor,
                                       build_mad_predictor,
                                       build_recode_encoder,
                                       build_residue_adder,
                                       build_residue_generator,
                                       build_residue_multiplier,
                                       table3_adjustment)
from repro.gates.shifters import normalize_bus, shift_left_bus, shift_right_bus

__all__ = [
    "eac_add", "incrementer", "kogge_stone_add", "ripple_carry_add",
    "subtract",
    "AreaRow", "format_table_iv", "table_iv_rows",
    "build_decoder", "build_dp_reporting", "build_encoder",
    "build_move_propagate",
    "FP32", "FP64", "FloatFormat", "build_fp_add_unit", "build_fp_mad_unit",
    "ref_fp_add", "ref_fp_mad",
    "cs_moma_reduce", "cs_moma_sum",
    "build_add_unit", "build_mad_unit", "multiply_bus",
    "GATE_AREA", "Bus", "Netlist", "Node", "Op", "PackedInputs",
    "build_add_predictor", "build_mad_predictor", "build_recode_encoder",
    "build_residue_adder", "build_residue_generator",
    "build_residue_multiplier", "table3_adjustment",
    "normalize_bus", "shift_left_bus", "shift_right_bus",
]
