"""Binary multiplier and multiply-add (MAD) unit generators.

The fixed-point MAD mirrors the paper's evaluated unit: a 32b x 32b
multiplier whose partial products are reduced together with a 64b addend in
one carry-save tree, merged by a Kogge-Stone adder, pipelined into two
stages (Table IV's "MAD 32+64" row).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import NetlistError
from repro.gates.adders import kogge_stone_add
from repro.gates.buslib import full_adder, half_adder
from repro.gates.netlist import Bus, Netlist


def partial_product_columns(netlist: Netlist, a: Sequence[int],
                            b: Sequence[int],
                            out_width: Optional[int] = None
                            ) -> List[List[int]]:
    """AND-gate partial products arranged per output column."""
    if out_width is None:
        out_width = len(a) + len(b)
    columns: List[List[int]] = [[] for _ in range(out_width)]
    for j, b_bit in enumerate(b):
        for i, a_bit in enumerate(a):
            column = i + j
            if column < out_width:
                columns[column].append(netlist.and_(a_bit, b_bit))
    return columns


def add_bus_to_columns(columns: List[List[int]],
                       bus: Sequence[int]) -> None:
    """Inject an addend bus into a partial-product column array."""
    for index, net in enumerate(bus):
        if index < len(columns):
            columns[index].append(net)


def wallace_reduce(netlist: Netlist,
                   columns: List[List[int]]) -> List[List[int]]:
    """Carry-save reduction until every column holds at most two bits."""
    width = len(columns)
    current = [list(column) for column in columns]
    while any(len(column) > 2 for column in current):
        next_columns: List[List[int]] = [[] for _ in range(width)]
        for index, column in enumerate(current):
            position = 0
            while len(column) - position >= 3:
                total, carry = full_adder(
                    netlist, column[position], column[position + 1],
                    column[position + 2])
                position += 3
                next_columns[index].append(total)
                if index + 1 < width:
                    next_columns[index + 1].append(carry)
            if len(column) - position == 2:
                total, carry = half_adder(
                    netlist, column[position], column[position + 1])
                position += 2
                next_columns[index].append(total)
                if index + 1 < width:
                    next_columns[index + 1].append(carry)
            next_columns[index].extend(column[position:])
        current = next_columns
    return current


def carry_save_to_buses(netlist: Netlist,
                        columns: List[List[int]]) -> (Bus, Bus):
    """Split reduced columns into two addend buses (zero-padded)."""
    first: Bus = []
    second: Bus = []
    for column in columns:
        first.append(column[0] if len(column) > 0 else netlist.const(0))
        second.append(column[1] if len(column) > 1 else netlist.const(0))
    return first, second


def multiply_bus(netlist: Netlist, a: Sequence[int], b: Sequence[int],
                 out_width: Optional[int] = None) -> Bus:
    """Unsigned multiply: partial products, Wallace tree, prefix adder."""
    columns = partial_product_columns(netlist, a, b, out_width)
    reduced = wallace_reduce(netlist, columns)
    first, second = carry_save_to_buses(netlist, reduced)
    total, __ = kogge_stone_add(netlist, first, second)
    return total


def build_add_unit(width: int = 32, pipelined: bool = True) -> Netlist:
    """The baseline fixed-point add unit (Table IV "Add 32" row).

    One pipe stage: registered inputs, Kogge-Stone adder, registered
    output (3 x width flip-flops, matching the paper's FF accounting).
    """
    netlist = Netlist(f"add{width}")
    a = netlist.input_bus("a", width)
    b = netlist.input_bus("b", width)
    if pipelined:
        a = netlist.stage(a)
        b = netlist.stage(b)
    total, __ = kogge_stone_add(netlist, a, b)
    if pipelined:
        total = netlist.stage(total)
    netlist.set_output("sum", total)
    return netlist


def build_mad_unit(width: int = 32, pipelined: bool = True) -> Netlist:
    """The mixed-width fixed-point MAD: ``a * b + c`` with a 2*width addend.

    Two pipe stages: stage 1 generates and reduces partial products (with
    the addend folded into the tree), stage 2 performs the final carry
    propagation — the register retiming target described in Section IV-A.
    """
    netlist = Netlist(f"mad{width}")
    a = netlist.input_bus("a", width)
    b = netlist.input_bus("b", width)
    c = netlist.input_bus("c", 2 * width)
    if pipelined:
        a = netlist.stage(a)
        b = netlist.stage(b)
        c = netlist.stage(c)
    columns = partial_product_columns(netlist, a, b, 2 * width)
    add_bus_to_columns(columns, c)
    reduced = wallace_reduce(netlist, columns)
    first, second = carry_save_to_buses(netlist, reduced)
    if pipelined:
        first = netlist.stage(first)
        second = netlist.stage(second)
    total, __ = kogge_stone_add(netlist, first, second)
    if pipelined:
        total = netlist.stage(total)
    netlist.set_output("result", total)
    return netlist
