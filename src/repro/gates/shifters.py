"""Barrel shifters and the normalize (count-leading-zeros + shift) block.

Shifters matter to the fault-injection study: the paper observes that
multi-bit output error patterns come disproportionately from the shifters
and incrementers of floating-point re-normalization (Section IV-B), so the
floating-point units here use genuine mux-tree barrel shifters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.gates.buslib import bus_mux
from repro.gates.netlist import Bus, Netlist


def shift_right_bus(netlist: Netlist, bus: Sequence[int],
                    amount: Sequence[int]) -> Bus:
    """Logical right shift by a variable amount (zeros shift in).

    Shift amounts at or beyond the bus width yield zero: every bit of
    ``amount`` is honoured, so wide amounts clear the whole bus.
    """
    current = list(bus)
    width = len(current)
    zero = netlist.const(0)
    for level, select in enumerate(amount):
        step = 1 << level
        if step >= width:
            # Any set bit at or above this level clears the bus entirely.
            shifted = [zero] * width
        else:
            shifted = current[step:] + [zero] * step
        current = bus_mux(netlist, select, shifted, current)
    return current


def shift_left_bus(netlist: Netlist, bus: Sequence[int],
                   amount: Sequence[int]) -> Bus:
    """Logical left shift by a variable amount (zeros shift in)."""
    current = list(bus)
    width = len(current)
    zero = netlist.const(0)
    for level, select in enumerate(amount):
        step = 1 << level
        if step >= width:
            shifted = [zero] * width
        else:
            shifted = [zero] * step + current[:-step]
        current = bus_mux(netlist, select, shifted, current)
    return current


def normalize_bus(netlist: Netlist,
                  bus: Sequence[int]) -> Tuple[Bus, Bus]:
    """Left-shift ``bus`` until its MSB is 1; also return the shift count.

    Classic combined leading-zero-count and normalization: at each
    power-of-two level, if the top ``2**k`` bits are all zero, shift left by
    ``2**k`` and set count bit ``k``.  An all-zero input passes through with
    the maximum count; callers detect zero separately.
    """
    current = list(bus)
    width = len(current)
    levels = max(1, (width - 1).bit_length())
    zero = netlist.const(0)
    count: List[int] = [None] * levels
    for k in reversed(range(levels)):
        step = 1 << k
        if step >= width:
            count[k] = zero
            continue
        top = current[width - step:]
        top_is_zero = netlist.not_(netlist.or_tree(list(top)))
        shifted = [zero] * step + current[:-step]
        current = bus_mux(netlist, top_is_zero, shifted, current)
        count[k] = top_is_zero
    return current, list(count)
