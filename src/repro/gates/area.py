"""Table IV: logic overheads of the SwapCodes hardware, in NAND2 GE.

Builds every unit the paper synthesizes and reports area, flip-flop count,
pipeline stages, and the overhead ratios quoted in the table:

* Swap-ECC modifications relative to the SEC-DED decoder;
* Swap-Predict prediction circuitry relative to the unit it predicts;
* modified encoders relative to the original residue encoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ecc.hsiao import HsiaoSecDed
from repro.gates.ecc_units import (build_decoder, build_dp_reporting,
                                   build_move_propagate)
from repro.gates.multiplier import build_add_unit, build_mad_unit
from repro.gates.netlist import Netlist
from repro.gates.residue_units import (build_add_predictor,
                                       build_mad_predictor,
                                       build_recode_encoder,
                                       build_residue_generator)


@dataclass(frozen=True)
class AreaRow:
    """One row of the Table IV reproduction."""

    section: str
    unit: str
    bits: str
    pipe_stages: int
    flip_flops: int
    area: float
    overhead_vs: Optional[str] = None
    overhead: Optional[float] = None

    def format(self) -> str:
        overhead = (f"{self.overhead * 100:+.2f}%"
                    if self.overhead is not None else "-")
        return (f"{self.unit:<22} {self.bits:>6} {self.pipe_stages:>5} "
                f"{self.flip_flops:>6} {self.area:>9.0f} {overhead:>9}")


def _stages(netlist: Netlist) -> int:
    """Pipeline stage estimate: max DFF crossings input to output.

    Approximated as the flip-flop depth along the longest DFF chain; the
    builders here register whole buses at each boundary, so the count of
    distinct boundaries equals total DFFs divided by the widest staged bus.
    For reporting we track boundaries explicitly instead.
    """
    # Builders stage whole buses; count stage boundaries by scanning for
    # maximal runs of DFF nodes.
    from repro.gates.netlist import Op
    boundaries = 0
    in_run = False
    for node in netlist.nodes:
        if node.op is Op.DFF:
            if not in_run:
                boundaries += 1
                in_run = True
        else:
            in_run = False
    return boundaries


def table_iv_rows() -> List[AreaRow]:
    """Build every Table IV unit and compute its area accounting."""
    rows: List[AreaRow] = []

    def add_row(section, unit, bits, netlist, baseline=None,
                baseline_name=None):
        overhead = None
        if baseline is not None:
            overhead = netlist.area() / baseline.area()
        rows.append(AreaRow(
            section=section, unit=unit, bits=bits,
            pipe_stages=_stages(netlist),
            flip_flops=netlist.flip_flop_count(),
            area=netlist.area(),
            overhead_vs=baseline_name,
            overhead=overhead))
        return netlist

    # --- original datapath ------------------------------------------------
    add32 = add_row("original", "Add", "32", build_add_unit(32))
    mad32 = add_row("original", "MAD", "32+64", build_mad_unit(32))
    decoder = add_row("original", "SECDED Dec.", "7",
                      build_decoder(HsiaoSecDed()))
    enc3 = add_row("original", "Mod-3 Enc.", "2",
                   build_residue_generator(3, 32))
    enc127 = add_row("original", "Mod-127 Enc.", "7",
                     build_residue_generator(127, 32))

    # --- Swap-ECC modifications (relative to the SEC-DED decoder) ---------
    add_row("swap-ecc", "Move-Propagate", "7", build_move_propagate(7),
            baseline=decoder, baseline_name="SECDED Dec.")
    add_row("swap-ecc", "SEC-(DED)-DP", "2", build_dp_reporting(32),
            baseline=decoder, baseline_name="SECDED Dec.")

    # --- Swap-Predict prediction circuitry --------------------------------
    add_row("swap-predict", "Add", "2", build_add_predictor(3),
            baseline=add32, baseline_name="Add")
    add_row("swap-predict", "Add", "7", build_add_predictor(127),
            baseline=add32, baseline_name="Add")
    add_row("swap-predict", "MAD", "2", build_mad_predictor(3),
            baseline=mad32, baseline_name="MAD")
    add_row("swap-predict", "MAD", "7", build_mad_predictor(127),
            baseline=mad32, baseline_name="MAD")
    add_row("swap-predict", "Mod-3 Enc.", "2", build_recode_encoder(3),
            baseline=enc3, baseline_name="Mod-3 Enc.")
    add_row("swap-predict", "Mod-127 Enc.", "7", build_recode_encoder(127),
            baseline=enc127, baseline_name="Mod-127 Enc.")
    return rows


def format_table_iv(rows: Optional[List[AreaRow]] = None) -> str:
    """Render the Table IV reproduction as aligned text."""
    if rows is None:
        rows = table_iv_rows()
    lines = [
        f"{'Unit':<22} {'Bits':>6} {'Pipe':>5} {'FFs':>6} "
        f"{'Area(GE)':>9} {'Overhead':>9}",
    ]
    section = None
    titles = {
        "original": "Original Data Path",
        "swap-ecc": "Swap-ECC Modifications (vs SEC-DED Decoder)",
        "swap-predict": "Swap-Predict Residue Code Prediction Circuitry",
    }
    for row in rows:
        if row.section != section:
            section = row.section
            lines.append(f"--- {titles[section]} ---")
        lines.append(row.format())
    return "\n".join(lines)
