"""Residue code hardware: generators, checkers, and the Figure 9 units.

Everything here operates in the low-cost ring modulo ``A = 2**a - 1`` with
the double-zero convention (``0`` and the all-ones pattern both mean zero).

* :func:`residue_generator_bus` — fold an N-bit bus into its ``a``-bit
  residue with a CS-MOMA over non-overlapping bit slices.
* :func:`residue_multiply_bus` — modular multiply via rotated partial
  products (shifting is rotation in the ring).
* :func:`build_mad_predictor` — Figure 9a: predicts the output residue of
  the mixed-width GPU MAD (32b x 32b + 64b) from four register residues,
  using the Equation 1 addend correction (pure wiring).
* :func:`build_recode_encoder` — Figure 9b: the dual-purpose encoder that
  either encodes a raw result (Pred?=0) or recodes the predicted full-width
  residue into the residue of one 32b output segment (Pred?=1), including
  the Table III carry-in/carry-out adjustment.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import NetlistError
from repro.ecc.residue import is_low_cost_modulus, split_correction_factor
from repro.gates.adders import eac_add
from repro.gates.buslib import (bus_and_bit, bus_mux, bus_not, constant_bus,
                                rotate_bus_left)
from repro.gates.moma import cs_moma_sum
from repro.gates.netlist import Bus, Netlist


def _residue_width(modulus: int) -> int:
    if not is_low_cost_modulus(modulus):
        raise NetlistError(f"{modulus} is not a low-cost modulus")
    return modulus.bit_length()


def residue_generator_bus(netlist: Netlist, data: Sequence[int],
                          modulus: int) -> Bus:
    """Fold ``data`` into its residue: slice, CS-MOMA, end-around add."""
    width = _residue_width(modulus)
    slices: List[Bus] = []
    for start in range(0, len(data), width):
        chunk = list(data[start:start + width])
        while len(chunk) < width:
            chunk.append(netlist.const(0))
        slices.append(chunk)
    return cs_moma_sum(netlist, slices)


def residue_add_bus(netlist: Netlist, a: Sequence[int],
                    b: Sequence[int]) -> Bus:
    """Residue addition: one end-around-carry adder."""
    return eac_add(netlist, a, b)


def residue_negate_bus(netlist: Netlist, a: Sequence[int]) -> Bus:
    """Residue negation: bitwise inversion (``x + ~x = 2**a - 1 = 0``)."""
    return bus_not(netlist, a)


def residue_multiply_bus(netlist: Netlist, a: Sequence[int],
                         b: Sequence[int], modulus: int) -> Bus:
    """Modular multiply: rotated partial products into a CS-MOMA."""
    width = _residue_width(modulus)
    if len(a) != width or len(b) != width:
        raise NetlistError(
            f"residue multiply expects {width}-bit operands")
    partials = [
        bus_and_bit(netlist, rotate_bus_left(a, j), b[j])
        for j in range(width)
    ]
    return cs_moma_sum(netlist, partials)


def table3_adjustment(cin: int, cout: int, modulus: int) -> int:
    """The Table III carry adjustment value: ``(cin - cout) mod modulus``.

    Encoded in hardware as a residue whose bottom bit is the carry-in and
    every other bit is the carry-out: 0b0000=+0, 0b0001=+1, 0b1110=-1,
    0b1111=-0 (the double zero).
    """
    width = _residue_width(modulus)
    signal = cin & 1
    for bit in range(1, width):
        signal |= (cout & 1) << bit
    return signal


def build_residue_generator(modulus: int, data_bits: int = 32,
                            pipelined: bool = True) -> Netlist:
    """A standalone residue encoder unit (the "Mod-A Enc." of Table IV)."""
    netlist = Netlist(f"mod{modulus}-encoder-{data_bits}")
    data = netlist.input_bus("data", data_bits)
    residue = residue_generator_bus(netlist, data, modulus)
    if pipelined:
        residue = netlist.stage(residue)
    netlist.set_output("residue", residue)
    return netlist


def build_residue_adder(modulus: int) -> Netlist:
    """A standalone residue addition predictor (for add/sub prediction)."""
    width = _residue_width(modulus)
    netlist = Netlist(f"mod{modulus}-adder")
    a = netlist.input_bus("a", width)
    b = netlist.input_bus("b", width)
    netlist.set_output("sum", eac_add(netlist, a, b))
    return netlist


def build_residue_multiplier(modulus: int) -> Netlist:
    """A standalone residue multiplication predictor."""
    width = _residue_width(modulus)
    netlist = Netlist(f"mod{modulus}-multiplier")
    a = netlist.input_bus("a", width)
    b = netlist.input_bus("b", width)
    netlist.set_output("product",
                       residue_multiply_bus(netlist, a, b, modulus))
    return netlist


def build_add_predictor(modulus: int, pipelined: bool = True) -> Netlist:
    """Residue predictor for fixed-point add/sub (Table IV "Add" rows).

    Inputs are the two operand residues plus a ``subtract`` control; the
    output predicts the result residue.  Subtraction negates the second
    operand (bitwise inversion — free in the ring).
    """
    width = _residue_width(modulus)
    netlist = Netlist(f"mod{modulus}-add-predictor")
    a = netlist.input_bus("ra", width)
    b = netlist.input_bus("rb", width)
    subtract = netlist.input_bus("subtract", 1)[0]
    b_effective = bus_mux(netlist, subtract, bus_not(netlist, b), b)
    result = eac_add(netlist, a, b_effective)
    if pipelined:
        result = netlist.stage(result)
    netlist.set_output("prediction", result)
    return netlist


def build_mad_predictor(modulus: int, pipelined: bool = True) -> Netlist:
    """Figure 9a: the mixed-width residue multiply-add predictor.

    Inputs: ``ra``, ``rb`` (32b operand residues) and ``rc_hi``, ``rc_lo``
    (the two half residues of the 64b addend).  Equation 1 recombines the
    addend halves — the multiply by ``|2**32|_A`` is a rotation, so the
    correction is pure wiring (highlighted yellow in the figure).  The
    corrected addend residues join the multiplier's partial products in a
    single CS-MOMA, finished by one EAC adder.
    """
    width = _residue_width(modulus)
    factor = split_correction_factor(modulus)
    rotation = int(math.log2(factor))
    netlist = Netlist(f"mod{modulus}-mad-predictor")
    ra = netlist.input_bus("ra", width)
    rb = netlist.input_bus("rb", width)
    rc_hi = netlist.input_bus("rc_hi", width)
    rc_lo = netlist.input_bus("rc_lo", width)
    partials = [
        bus_and_bit(netlist, rotate_bus_left(ra, j), rb[j])
        for j in range(width)
    ]
    corrected_hi = rotate_bus_left(rc_hi, rotation)
    operands = partials + [corrected_hi, list(rc_lo)]
    prediction = cs_moma_sum(netlist, operands)
    if pipelined:
        prediction = netlist.stage(prediction)
    netlist.set_output("prediction", prediction)
    return netlist


def build_recode_encoder(modulus: int, data_bits: int = 32,
                         pipelined: bool = True) -> Netlist:
    """Figure 9b: the modified residue encoder with a recode path.

    Inputs:

    * ``z`` — the 32b output segment being written back.
    * ``pred`` — 0: encode ``z`` directly; 1: recode from the prediction.
    * ``rz`` — the predicted residue of the full (up to 64b) result.
    * ``zadj`` — the 32b output segment *not* being written back.
    * ``seg_hi`` — 1 when the segment being written is the high half.
    * ``cin``/``cout`` — Table III carry adjustment bits.

    Recode math (all in the ring, ``f = |2**32|_A``):

    * low half:  ``|low|  = rz - f * |zadj|``
    * high half: ``|high| = (rz - |zadj|) * f^-1``

    and both multiplications by powers of two are rotations.  The carry
    adjustment adds ``cin - cout`` (the Table III signal) to support
    datapaths that split a wide result across carry-linked writes.
    """
    width = _residue_width(modulus)
    factor = split_correction_factor(modulus)
    rotation = int(math.log2(factor))
    netlist = Netlist(f"mod{modulus}-recode-encoder")
    z = netlist.input_bus("z", data_bits)
    pred = netlist.input_bus("pred", 1)[0]
    rz = netlist.input_bus("rz", width)
    zadj = netlist.input_bus("zadj", data_bits)
    seg_hi = netlist.input_bus("seg_hi", 1)[0]
    cin = netlist.input_bus("cin", 1)[0]
    cout = netlist.input_bus("cout", 1)[0]

    direct = residue_generator_bus(netlist, z, modulus)

    adj_residue = residue_generator_bus(netlist, zadj, modulus)
    neg_adj = bus_not(netlist, adj_residue)
    # Writing the low half: subtract f * |zadj| from rz.
    low_term = rotate_bus_left(neg_adj, rotation)
    # Writing the high half: subtract |zadj| from rz, then divide by f
    # (rotate right) — applied after the sum, below.
    high_term = list(neg_adj)
    subtrahend = bus_mux(netlist, seg_hi, high_term, low_term)

    # Table III adjustment: bottom bit carries cin, every other bit cout.
    adjustment = [cin] + [cout] * (width - 1)

    recoded = cs_moma_sum(netlist, [list(rz), subtrahend, adjustment])
    recoded_hi = rotate_bus_left(recoded, (width - rotation) % width)
    recoded = bus_mux(netlist, seg_hi, recoded_hi, recoded)

    result = bus_mux(netlist, pred, recoded, direct)
    if pipelined:
        result = netlist.stage(result)
    netlist.set_output("residue", result)
    return netlist
