"""Gate-level ECC support blocks: encoder, decoder, and Swap-ECC add-ons.

These are the hardware structures Table IV accounts for:

* the Hsiao SEC-DED encoder and decoder that the register file already has;
* the Figure 5 augmented error-reporting logic (SEC-DED-DP / SEC-DP);
* the end-to-end move-propagation registers and muxes (Figure 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.ecc.linear import LinearCode
from repro.gates.buslib import bus_mux, bus_xor, equal
from repro.gates.netlist import Bus, Netlist


def encoder_bus(netlist: Netlist, data: Sequence[int],
                code: LinearCode) -> Bus:
    """XOR trees computing each check bit of ``code`` from ``data``."""
    check: Bus = []
    for row in range(code.check_bits):
        taps = [data[bit] for bit in range(code.data_bits)
                if code.data_columns[bit] >> row & 1]
        check.append(netlist.xor_tree(taps))
    return check


def build_encoder(code: LinearCode, pipelined: bool = False) -> Netlist:
    """A standalone check-bit encoder for a linear register-file code."""
    netlist = Netlist(f"{code.name}-encoder")
    data = netlist.input_bus("data", code.data_bits)
    check = encoder_bus(netlist, data, code)
    if pipelined:
        check = netlist.stage(check)
    netlist.set_output("check", check)
    return netlist


def build_decoder(code: LinearCode) -> Netlist:
    """The register-file read-port decoder (Table IV "SECDED Dec.").

    Outputs:

    * ``corrected`` — the data with any single-bit correction applied;
    * ``ce_data`` — a data-bit correction was performed;
    * ``ce_check`` — a check-bit correction was performed;
    * ``due`` — detected-uncorrectable (syndrome matches no single bit).
    """
    netlist = Netlist(f"{code.name}-decoder")
    data = netlist.input_bus("data", code.data_bits)
    check = netlist.input_bus("check", code.check_bits)
    recomputed = encoder_bus(netlist, data, code)
    syndrome = bus_xor(netlist, recomputed, check)

    column_consts = {}

    def column_match(column: int) -> int:
        taps = []
        for row in range(code.check_bits):
            bit = syndrome[row]
            if column >> row & 1:
                taps.append(bit)
            else:
                taps.append(netlist.not_(bit))
        return netlist.and_tree(taps)

    data_matches = [column_match(code.data_columns[bit])
                    for bit in range(code.data_bits)]
    check_matches = [column_match(1 << row)
                     for row in range(code.check_bits)]
    corrected = [netlist.xor(data[bit], data_matches[bit])
                 for bit in range(code.data_bits)]
    ce_data = netlist.or_tree(data_matches)
    ce_check = netlist.or_tree(check_matches)
    nonzero = netlist.or_tree(syndrome)
    due = netlist.and_(
        nonzero, netlist.nor(ce_data, ce_check))

    netlist.set_output("corrected", corrected)
    netlist.set_output("ce_data", [ce_data])
    netlist.set_output("ce_check", [ce_check])
    netlist.set_output("due", [due])
    return netlist


def build_dp_reporting(data_bits: int = 32) -> Netlist:
    """Figure 5: the SEC-(DED)-DP augmented error-reporting logic.

    Sits after the ordinary decoder.  A data correction is honoured only
    when the stored data disagrees with the data-parity bit (a storage
    flip); agreement means the original instruction produced both — a
    pipeline error, raised as a DUE.
    """
    netlist = Netlist("dp-reporting")
    data = netlist.input_bus("data", data_bits)
    dp = netlist.input_bus("dp", 1)[0]
    ce_data = netlist.input_bus("ce_data", 1)[0]
    due_in = netlist.input_bus("due_in", 1)[0]
    parity = netlist.xor_tree(list(data))
    parity_mismatch = netlist.xor(parity, dp)
    correct_enable = netlist.and_(ce_data, parity_mismatch)
    pipeline_due = netlist.and_(ce_data, netlist.not_(parity_mismatch))
    due_out = netlist.or_(due_in, pipeline_due)
    netlist.set_output("correct_enable", [correct_enable])
    netlist.set_output("due", [due_out])
    return netlist


def build_move_propagate(check_bits: int = 7) -> Netlist:
    """Figure 4: ECC propagation path for register moves.

    A move forwards the source register's check bits around the datapath
    (one mux per check bit selecting the propagated ECC over the encoder's,
    plus two pipeline register stages), so moves need no shadow
    instruction.
    """
    netlist = Netlist("move-propagate")
    encoder_check = netlist.input_bus("encoder_check", check_bits)
    moved_check = netlist.input_bus("moved_check", check_bits)
    is_move = netlist.input_bus("is_move", 1)[0]
    staged = netlist.stage(netlist.stage(moved_check))
    selected = bus_mux(netlist, is_move, staged, encoder_check)
    netlist.set_output("check", selected)
    return netlist
