"""Bus-level building blocks shared by the arithmetic unit generators."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import NetlistError
from repro.gates.netlist import Bus, Netlist


def constant_bus(netlist: Netlist, value: int, width: int) -> Bus:
    """A bus of constant nets encoding ``value`` (LSB first)."""
    return [netlist.const((value >> bit) & 1) for bit in range(width)]


def half_adder(netlist: Netlist, a: int, b: int) -> Tuple[int, int]:
    """Return (sum, carry)."""
    return netlist.xor(a, b), netlist.and_(a, b)


def full_adder(netlist: Netlist, a: int, b: int, c: int) -> Tuple[int, int]:
    """Return (sum, carry) of three input bits."""
    ab = netlist.xor(a, b)
    total = netlist.xor(ab, c)
    carry = netlist.or_(netlist.and_(a, b), netlist.and_(ab, c))
    return total, carry


def bus_not(netlist: Netlist, bus: Sequence[int]) -> Bus:
    return [netlist.not_(net) for net in bus]


def bus_and(netlist: Netlist, a: Sequence[int], b: Sequence[int]) -> Bus:
    _check_widths(a, b)
    return [netlist.and_(x, y) for x, y in zip(a, b)]


def bus_or(netlist: Netlist, a: Sequence[int], b: Sequence[int]) -> Bus:
    _check_widths(a, b)
    return [netlist.or_(x, y) for x, y in zip(a, b)]


def bus_xor(netlist: Netlist, a: Sequence[int], b: Sequence[int]) -> Bus:
    _check_widths(a, b)
    return [netlist.xor(x, y) for x, y in zip(a, b)]


def bus_mux(netlist: Netlist, sel: int, a: Sequence[int],
            b: Sequence[int]) -> Bus:
    """Per-bit ``sel ? a : b``."""
    _check_widths(a, b)
    return [netlist.mux(sel, x, y) for x, y in zip(a, b)]


def bus_and_bit(netlist: Netlist, bus: Sequence[int], bit: int) -> Bus:
    """AND every bus bit with one control bit (partial-product row)."""
    return [netlist.and_(net, bit) for net in bus]


def rotate_bus_left(bus: Sequence[int], amount: int) -> Bus:
    """Rotate a bus left by ``amount`` positions (wiring only, no gates).

    In the mod ``2**a - 1`` ring, multiplying by ``2**amount`` is exactly a
    left rotation of the ``a``-bit residue — the "implemented with wiring"
    trick behind Equation 1's correction factors.
    """
    width = len(bus)
    amount %= width
    return list(bus[-amount:]) + list(bus[:-amount]) if amount else list(bus)


def is_zero(netlist: Netlist, bus: Sequence[int]) -> int:
    """A single net that is 1 when the whole bus is zero."""
    return netlist.not_(netlist.or_tree(list(bus)))


def is_all_ones(netlist: Netlist, bus: Sequence[int]) -> int:
    """A single net that is 1 when the whole bus is all ones."""
    return netlist.and_tree(list(bus))


def equal(netlist: Netlist, a: Sequence[int], b: Sequence[int]) -> int:
    """A single net that is 1 when the buses match."""
    _check_widths(a, b)
    return netlist.and_tree(
        [netlist.xnor(x, y) for x, y in zip(a, b)])


def _check_widths(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise NetlistError(
            f"bus width mismatch: {len(a)} vs {len(b)}")
