"""Adder generators: ripple-carry, Kogge-Stone prefix, and end-around-carry.

The end-around-carry (EAC) adder is the workhorse of low-cost residue
arithmetic (Section III-C): it adds two ``a``-bit values modulo ``2**a - 1``
by re-propagating the carry-out as the carry-in, built here as a parallel
prefix adder with one additional prefix level (Zimmermann's construction).
EAC addition keeps the code's double-zero: ``x + ~x`` yields the all-ones
pattern, an alternate encoding of zero.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.gates.buslib import full_adder, half_adder
from repro.gates.netlist import Bus, Netlist


def ripple_carry_add(netlist: Netlist, a: Sequence[int], b: Sequence[int],
                     carry_in: Optional[int] = None) -> Tuple[Bus, int]:
    """Area-lean ripple adder.  Returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")
    total: Bus = []
    carry = carry_in
    for x, y in zip(a, b):
        if carry is None:
            bit, carry = half_adder(netlist, x, y)
        else:
            bit, carry = full_adder(netlist, x, y, carry)
        total.append(bit)
    return total, carry


def _prefix_tree(netlist: Netlist, generate: List[int],
                 propagate: List[int]) -> Tuple[List[int], List[int]]:
    """Kogge-Stone prefix computation of group (G, P) for every position.

    After the sweep, ``generate[i]``/``propagate[i]`` describe the bit range
    ``[0, i]``.
    """
    width = len(generate)
    g = list(generate)
    p = list(propagate)
    distance = 1
    while distance < width:
        new_g = list(g)
        new_p = list(p)
        for i in range(distance, width):
            # (G, P)_i o (G, P)_{i-distance}
            new_g[i] = netlist.or_(g[i], netlist.and_(p[i], g[i - distance]))
            new_p[i] = netlist.and_(p[i], p[i - distance])
        g, p = new_g, new_p
        distance *= 2
    return g, p


def kogge_stone_add(netlist: Netlist, a: Sequence[int], b: Sequence[int],
                    carry_in: Optional[int] = None) -> Tuple[Bus, int]:
    """Logarithmic-depth parallel prefix adder.  Returns (sum, carry out)."""
    if len(a) != len(b):
        raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")
    width = len(a)
    propagate_bit = [netlist.xor(x, y) for x, y in zip(a, b)]
    generate_bit = [netlist.and_(x, y) for x, y in zip(a, b)]
    if carry_in is not None:
        # Fold the carry-in into bit 0's generate term.
        generate_bit[0] = netlist.or_(
            generate_bit[0], netlist.and_(propagate_bit[0], carry_in))
    group_g, __ = _prefix_tree(netlist, generate_bit, list(propagate_bit))
    total: Bus = []
    for i in range(width):
        if i == 0:
            carry = carry_in if carry_in is not None else netlist.const(0)
        else:
            carry = group_g[i - 1]
        total.append(netlist.xor(propagate_bit[i], carry))
    return total, group_g[width - 1]


def eac_add(netlist: Netlist, a: Sequence[int], b: Sequence[int]) -> Bus:
    """End-around-carry adder: ``(a + b) mod (2**width - 1)``, double-zero.

    Built as a prefix adder whose carry into bit ``i`` is
    ``G[i-1:0] | (P[i-1:0] & Cout)`` — the extra prefix level that wraps
    the carry-out back around without a second carry propagation.
    """
    if len(a) != len(b):
        raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")
    width = len(a)
    if width == 1:
        # Mod 1 ring is degenerate; just OR the bits (0+0=0, else "zero" rep).
        return [netlist.or_(a[0], b[0])]
    propagate_bit = [netlist.xor(x, y) for x, y in zip(a, b)]
    generate_bit = [netlist.and_(x, y) for x, y in zip(a, b)]
    group_g, group_p = _prefix_tree(netlist, generate_bit,
                                    list(propagate_bit))
    carry_out = group_g[width - 1]
    total: Bus = []
    for i in range(width):
        if i == 0:
            carry = carry_out
        else:
            carry = netlist.or_(
                group_g[i - 1], netlist.and_(group_p[i - 1], carry_out))
        total.append(netlist.xor(propagate_bit[i], carry))
    return total


def incrementer(netlist: Netlist, a: Sequence[int],
                enable: int) -> Tuple[Bus, int]:
    """Add ``enable`` (0 or 1) to a bus.  Returns (sum, carry out)."""
    total: Bus = []
    carry = enable
    for x in a:
        total.append(netlist.xor(x, carry))
        carry = netlist.and_(x, carry)
    return total, carry


def subtract(netlist: Netlist, a: Sequence[int],
             b: Sequence[int]) -> Tuple[Bus, int]:
    """Two's complement ``a - b``.  Returns (difference, not-borrow).

    The second element is the adder's carry-out: 1 when ``a >= b``.
    """
    b_inverted = [netlist.not_(net) for net in b]
    return kogge_stone_add(netlist, a, b_inverted,
                           carry_in=netlist.const(1))
