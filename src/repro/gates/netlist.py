"""Gate-level netlist IR with a bit-parallel simulator.

A :class:`Netlist` is a flat list of nodes in topological order (construction
order; every node's inputs must already exist).  Buses are plain Python lists
of node ids, LSB first.

Simulation is *bit-parallel*: the value of one net across N samples is a
single arbitrary-precision integer whose bit ``i`` is the net's value in
sample ``i``.  One topological sweep therefore evaluates every sample at
once, which is what makes the paper's 10,000-input-pair fault-injection
campaigns tractable in pure Python.

Fault injection flips one node's output (for any subset of samples) and
re-evaluates only the fault's fan-out cone, mirroring the Hamartia
methodology of Section IV-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError

Bus = List[int]


class Op(enum.Enum):
    """Primitive node kinds.

    DFF nodes are pipeline registers: combinationally they pass their input
    through (the simulator treats a feed-forward pipeline as one unrolled
    combinational evaluation), but they are distinct fault sites, count as
    flip-flops for area, and mark retiming stage boundaries.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    INPUT = "input"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MUX = "mux"  # inputs (sel, a, b): sel ? a : b
    DFF = "dff"


#: NAND2 gate-equivalent area per node kind (typical standard-cell ratios).
GATE_AREA = {
    Op.CONST0: 0.0,
    Op.CONST1: 0.0,
    Op.INPUT: 0.0,
    Op.NOT: 0.67,
    Op.AND: 1.33,
    Op.OR: 1.33,
    Op.XOR: 2.33,
    Op.NAND: 1.0,
    Op.NOR: 1.0,
    Op.XNOR: 2.33,
    Op.MUX: 2.33,
    Op.DFF: 4.33,
}


@dataclass(frozen=True)
class Node:
    """One gate, register, input, or constant."""

    op: Op
    inputs: Tuple[int, ...]
    name: str = ""


class Netlist:
    """A feed-forward gate netlist with named input and output buses."""

    def __init__(self, name: str = ""):
        self.name = name
        self.nodes: List[Node] = []
        self.input_buses: Dict[str, Bus] = {}
        self.output_buses: Dict[str, Bus] = {}
        self._const_cache: Dict[Op, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, op: Op, inputs: Tuple[int, ...] = (), name: str = "") -> int:
        for node_id in inputs:
            if not 0 <= node_id < len(self.nodes):
                raise NetlistError(
                    f"node input {node_id} does not exist yet (netlists are "
                    f"built in topological order)")
        self.nodes.append(Node(op, inputs, name))
        return len(self.nodes) - 1

    def const(self, bit: int) -> int:
        """A constant-0 or constant-1 net (cached)."""
        op = Op.CONST1 if bit else Op.CONST0
        if op not in self._const_cache:
            self._const_cache[op] = self._add(op)
        return self._const_cache[op]

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a ``width``-bit input bus."""
        if name in self.input_buses:
            raise NetlistError(f"duplicate input bus {name!r}")
        bus = [self._add(Op.INPUT, name=f"{name}[{bit}]")
               for bit in range(width)]
        self.input_buses[name] = bus
        return bus

    def set_output(self, name: str, bus: Sequence[int]) -> None:
        """Name ``bus`` as an output of the netlist."""
        if name in self.output_buses:
            raise NetlistError(f"duplicate output bus {name!r}")
        self.output_buses[name] = list(bus)

    def not_(self, a: int) -> int:
        return self._add(Op.NOT, (a,))

    def and_(self, a: int, b: int) -> int:
        return self._add(Op.AND, (a, b))

    def or_(self, a: int, b: int) -> int:
        return self._add(Op.OR, (a, b))

    def xor(self, a: int, b: int) -> int:
        return self._add(Op.XOR, (a, b))

    def nand(self, a: int, b: int) -> int:
        return self._add(Op.NAND, (a, b))

    def nor(self, a: int, b: int) -> int:
        return self._add(Op.NOR, (a, b))

    def xnor(self, a: int, b: int) -> int:
        return self._add(Op.XNOR, (a, b))

    def mux(self, sel: int, a: int, b: int) -> int:
        """Return ``sel ? a : b``."""
        return self._add(Op.MUX, (sel, a, b))

    def dff(self, a: int) -> int:
        """A pipeline register on net ``a``."""
        return self._add(Op.DFF, (a,))

    def stage(self, bus: Sequence[int]) -> Bus:
        """Register every net of ``bus`` (one retiming stage boundary)."""
        return [self.dff(net) for net in bus]

    # ------------------------------------------------------------------
    # multi-input conveniences (balanced trees)
    # ------------------------------------------------------------------
    def _tree(self, op, nets: Sequence[int]) -> int:
        nets = list(nets)
        if not nets:
            raise NetlistError("reduction over empty net list")
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(op(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def xor_tree(self, nets: Sequence[int]) -> int:
        return self._tree(self.xor, nets)

    def and_tree(self, nets: Sequence[int]) -> int:
        return self._tree(self.and_, nets)

    def or_tree(self, nets: Sequence[int]) -> int:
        return self._tree(self.or_, nets)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def gate_count(self) -> int:
        """Logic gates, excluding inputs, constants, and DFFs."""
        skip = (Op.INPUT, Op.CONST0, Op.CONST1, Op.DFF)
        return sum(1 for node in self.nodes if node.op not in skip)

    def flip_flop_count(self) -> int:
        return sum(1 for node in self.nodes if node.op is Op.DFF)

    def area(self) -> float:
        """Total area in NAND2 gate-equivalents."""
        return sum(GATE_AREA[node.op] for node in self.nodes)

    def fault_sites(self) -> List[int]:
        """Node ids eligible for single-event injection: gates and DFFs."""
        skip = (Op.INPUT, Op.CONST0, Op.CONST1)
        return [node_id for node_id, node in enumerate(self.nodes)
                if node.op not in skip]

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def pack_inputs(self, samples: Dict[str, Sequence[int]]) -> "PackedInputs":
        """Bit-pack per-sample input values for bit-parallel evaluation.

        ``samples`` maps each input bus name to a sequence of integer values
        (one per sample).  Returns a :class:`PackedInputs` reusable across
        baseline and fault evaluations.
        """
        missing = set(self.input_buses) - set(samples)
        if missing:
            raise NetlistError(f"missing input buses: {sorted(missing)}")
        counts = {len(values) for values in samples.values()}
        if len(counts) != 1:
            raise NetlistError(
                f"all input buses need the same sample count, got {counts}")
        sample_count = counts.pop()
        packed: Dict[int, int] = {}
        for name, bus in self.input_buses.items():
            values = samples[name]
            for bit, net in enumerate(bus):
                word = 0
                for index, value in enumerate(values):
                    if (value >> bit) & 1:
                        word |= 1 << index
                packed[net] = word
        return PackedInputs(packed, sample_count)

    def evaluate(self, packed: "PackedInputs") -> List[int]:
        """One topological sweep; returns the packed value of every node."""
        full = (1 << packed.sample_count) - 1
        values: List[int] = [0] * len(self.nodes)
        for node_id, node in enumerate(self.nodes):
            values[node_id] = self._eval_node(node, values, packed, full,
                                              node_id)
        return values

    def _eval_node(self, node: Node, values, packed: "PackedInputs",
                   full: int, node_id: int) -> int:
        op = node.op
        if op is Op.INPUT:
            return packed.values.get(node_id, 0)
        if op is Op.CONST0:
            return 0
        if op is Op.CONST1:
            return full
        ins = node.inputs
        if op is Op.NOT:
            return values[ins[0]] ^ full
        if op is Op.AND:
            return values[ins[0]] & values[ins[1]]
        if op is Op.OR:
            return values[ins[0]] | values[ins[1]]
        if op is Op.XOR:
            return values[ins[0]] ^ values[ins[1]]
        if op is Op.NAND:
            return (values[ins[0]] & values[ins[1]]) ^ full
        if op is Op.NOR:
            return (values[ins[0]] | values[ins[1]]) ^ full
        if op is Op.XNOR:
            return values[ins[0]] ^ values[ins[1]] ^ full
        if op is Op.MUX:
            sel = values[ins[0]]
            return (sel & values[ins[1]]) | ((sel ^ full) & values[ins[2]])
        if op is Op.DFF:
            return values[ins[0]]
        raise NetlistError(f"unknown op {op}")

    def read_bus(self, values: Sequence[int], bus: Sequence[int],
                 sample: int) -> int:
        """Extract one sample's integer value of ``bus`` from a value table."""
        result = 0
        for bit, net in enumerate(bus):
            if (values[net] >> sample) & 1:
                result |= 1 << bit
        return result

    def read_output(self, values: Sequence[int], name: str,
                    sample: int) -> int:
        return self.read_bus(values, self.output_buses[name], sample)

    # ------------------------------------------------------------------
    # fault injection support
    # ------------------------------------------------------------------
    def fanout_map(self) -> List[List[int]]:
        """For each node, the ids of nodes that consume it directly."""
        fanout: List[List[int]] = [[] for _ in self.nodes]
        for node_id, node in enumerate(self.nodes):
            for source in node.inputs:
                fanout[source].append(node_id)
        return fanout

    def fanout_cone(self, site: int,
                    fanout: Optional[List[List[int]]] = None) -> List[int]:
        """Topologically-sorted transitive fan-out of ``site`` (inclusive)."""
        if fanout is None:
            fanout = self.fanout_map()
        affected = {site}
        # Node ids are already topological; a single forward pass suffices.
        for node_id in range(site + 1, len(self.nodes)):
            if any(source in affected
                   for source in self.nodes[node_id].inputs):
                affected.add(node_id)
        return sorted(affected)

    def evaluate_with_fault(self, packed: "PackedInputs",
                            baseline: Sequence[int], site: int,
                            flip_mask: Optional[int] = None,
                            cone: Optional[Sequence[int]] = None
                            ) -> Dict[int, int]:
        """Re-evaluate the fan-out cone of ``site`` with its output flipped.

        ``flip_mask`` selects which samples see the flip (default: all).
        Returns a sparse map node id -> new packed value; nodes absent from
        the map keep their baseline value.
        """
        full = (1 << packed.sample_count) - 1
        if flip_mask is None:
            flip_mask = full
        if cone is None:
            cone = self.fanout_cone(site)
        changed: Dict[int, int] = {}

        class _View:
            """Baseline values overlaid with the fault's changed values."""

            __slots__ = ()

            def __getitem__(_self, node_id):
                return changed.get(node_id, baseline[node_id])

        view = _View()
        for node_id in cone:
            if node_id == site:
                value = baseline[site] ^ flip_mask
            else:
                value = self._eval_node(self.nodes[node_id], view, packed,
                                        full, node_id)
            if value != baseline[node_id]:
                changed[node_id] = value
            elif node_id in changed:
                del changed[node_id]
        return changed

    def __repr__(self) -> str:
        return (f"Netlist(name={self.name!r}, nodes={len(self.nodes)}, "
                f"gates={self.gate_count()}, ffs={self.flip_flop_count()})")


@dataclass
class PackedInputs:
    """Bit-packed input values: net id -> packed word, plus sample count."""

    values: Dict[int, int]
    sample_count: int
