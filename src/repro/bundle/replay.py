"""Replay engine: re-trigger a bundled failure and verify it bit-identically.

:func:`replay` reconstructs the exact trial a :class:`ReproBundle`
froze — from the bundle contents alone, no live campaign state — runs
it, and compares the resulting outcome fingerprint against the one the
capture recorded:

* ``REPRODUCED`` — the failure re-triggered with the identical error
  code and outcome fingerprint (and, where the trial carries a fault
  plan, the scalar and tensor execution paths agreed bit for bit);
* ``DIVERGED`` — the trial ran but produced a different outcome: the
  bug is timing/environment-dependent, was fixed, or the two executor
  paths disagree;
* ``STALE_SCHEMA`` — the bundle was written under a different bundle,
  journal, or certificate schema version (or names a trial kind this
  engine does not know) and cannot be interpreted; nothing ran.

Trial kinds:

``unit-batch``
    Re-run a registered work-unit batch runner inline with the recorded
    params and batch spec, expecting the recorded failure to raise.
``ladder``
    Re-run a single recovery-ladder trial (workload + compile scheme or
    tampered pass + exact :class:`~repro.gpu.resilience.FaultPlan`),
    expecting the recorded :class:`~repro.errors.ContainmentViolation`.
``certify``
    Re-certify the recorded scheme (registry name or tamper spec) under
    the recorded mode/seed, expecting the identical violated claims and
    counterexamples.
``merge``
    Re-merge the bundled shard journals, expecting the recorded
    :class:`~repro.errors.MergeConflict`.
``journal-verify``
    Re-scan the bundled lease journals and match the recorded durable
    state digest — the deterministic residue of a timing-dependent
    fabric failure (lease loss, SIGKILL mid-lease).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bundle.capture import (BUNDLE_SCHEMA_VERSION, FAULT_PLAN_FILE,
                                  ReproBundle, error_outcome,
                                  outcome_fingerprint)
from repro.errors import (BundleError, ContainmentViolation, HangError,
                          MergeConflict, ReproError, SimulationError)

REPRODUCED = "REPRODUCED"
DIVERGED = "DIVERGED"
STALE_SCHEMA = "STALE_SCHEMA"

#: trial kinds this engine knows how to reconstruct
TRIAL_KINDS = ("unit-batch", "ladder", "certify", "merge",
               "journal-verify")


@dataclass
class ReplayResult:
    """The verdict of replaying one bundle."""

    verdict: str
    bundle_path: str = ""
    expected_code: Optional[str] = None
    actual_code: Optional[str] = None
    expected_fingerprint: Optional[str] = None
    actual_fingerprint: Optional[str] = None
    #: scalar-vs-tensor executor agreement: "ok", "diverged: ...", or
    #: "skipped (...)" when the trial has no fault plan to cross-check
    cross_check: str = "skipped (no fault plan)"
    detail: str = ""
    outcome: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def reproduced(self) -> bool:
        return self.verdict == REPRODUCED

    def to_dict(self) -> Dict[str, Any]:
        return {"verdict": self.verdict, "bundle": self.bundle_path,
                "expected_code": self.expected_code,
                "actual_code": self.actual_code,
                "expected_fingerprint": self.expected_fingerprint,
                "actual_fingerprint": self.actual_fingerprint,
                "cross_check": self.cross_check, "detail": self.detail}


class _Stale(Exception):
    """Internal: the bundle's schema cannot be interpreted."""


def journal_digest(paths: List[str]) -> Dict[str, Any]:
    """The deterministic durable-state digest of a set of journals.

    Keyed by basename (never absolute paths), built from salvage-mode
    replays, so the digest of a journal set is identical on every
    machine that holds byte-identical files — the fingerprint base for
    ``journal-verify`` trials.
    """
    from repro.inject.journal import JournalState

    digest: Dict[str, Any] = {}
    for path in sorted(paths, key=os.path.basename):
        state = JournalState.load(path, salvage=True)
        header = None
        if state.header:
            header = {name: state.header.get(name)
                      for name in ("shard", "token", "shard_count")
                      if name in state.header}
        digest[os.path.basename(path)] = {
            "header": header,
            "started": sorted(state.started),
            "finished": sorted(state.finished),
            "quarantined": sorted(state.quarantined),
            "batches": {unit: len(records)
                        for unit, records in sorted(state.batches.items())},
            "pauses": len(state.pauses),
            "corrupt_lines": state.corrupt_lines,
        }
    return digest


def merge_outcome(error: Any) -> Dict[str, Any]:
    """The portable outcome for a merge conflict.

    Merge-conflict messages name journal *paths*, which differ between
    the capturing and replaying machines, so the merge trial matches on
    the diagnostic code alone.
    """
    code = error.code if isinstance(error, ReproError) else None
    if isinstance(error, dict):
        code = error.get("code")
    return {"code": code, "message": None, "context": {}}


def replay(path: str) -> ReplayResult:
    """Reconstruct and re-run the trial frozen in the bundle at ``path``.

    Loads (and hash-verifies) the bundle, dispatches on its trial kind,
    and compares the fresh outcome fingerprint against the recorded
    one.  Raises :class:`~repro.errors.BundleError` for bundles that are
    corrupt or carry no trial spec at all; schema mismatches are the
    ``STALE_SCHEMA`` verdict, not an error.
    """
    bundle = ReproBundle.load(path)
    manifest = bundle.manifest
    expected_code = bundle.code
    expected_fingerprint = bundle.fingerprint
    result = ReplayResult(verdict=DIVERGED, bundle_path=path,
                          expected_code=expected_code,
                          expected_fingerprint=expected_fingerprint)

    if bundle.schema_version != BUNDLE_SCHEMA_VERSION:
        result.verdict = STALE_SCHEMA
        result.detail = (f"bundle schema {bundle.schema_version!r} != "
                         f"engine schema {BUNDLE_SCHEMA_VERSION}")
        return result
    trial = bundle.trial
    if trial is None:
        raise BundleError(
            f"bundle {path} is forensic-only (no trial spec); it cannot "
            f"be replayed")
    kind = trial.get("kind")
    if kind not in TRIAL_KINDS:
        result.verdict = STALE_SCHEMA
        result.detail = (f"unknown trial kind {kind!r} (bundle written "
                         f"by a newer engine?)")
        return result

    try:
        if kind == "unit-batch":
            outcome, cross = _replay_unit_batch(bundle, trial)
        elif kind == "ladder":
            outcome, cross = _replay_ladder(bundle, trial)
        elif kind == "certify":
            outcome, cross = _replay_certify(bundle, trial)
        elif kind == "merge":
            outcome, cross = _replay_merge(bundle, trial, manifest)
        else:
            outcome, cross = _replay_journal_verify(bundle, trial,
                                                    manifest)
    except _Stale as stale:
        result.verdict = STALE_SCHEMA
        result.detail = str(stale)
        return result

    result.outcome = outcome
    result.actual_code = outcome.get("code")
    result.actual_fingerprint = outcome_fingerprint(outcome)
    result.cross_check = cross
    if cross.startswith("diverged"):
        result.verdict = DIVERGED
        result.detail = f"executor cross-check failed: {cross}"
    elif result.actual_fingerprint != expected_fingerprint:
        result.verdict = DIVERGED
        result.detail = (f"outcome fingerprint mismatch (expected "
                         f"{expected_fingerprint}, got "
                         f"{result.actual_fingerprint})")
    elif result.actual_code != expected_code:
        result.verdict = DIVERGED
        result.detail = (f"error code mismatch (expected "
                         f"{expected_code!r}, got "
                         f"{result.actual_code!r})")
    else:
        result.verdict = REPRODUCED
        result.detail = "outcome fingerprint and error code match"
    return result


def _replay_unit_batch(bundle: ReproBundle,
                       trial: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    from repro.inject.engine import BatchSpec, unit_runner

    runner = unit_runner(trial["unit_kind"])
    spec = trial.get("batch") or {}
    batch = BatchSpec(index=spec.get("index", 0),
                      size=spec.get("size", 1),
                      seed=spec.get("seed", 0))
    params = dict(trial.get("params") or {})
    try:
        runner(params, None, batch)
        outcome = {"code": None, "message": "<batch completed>",
                   "context": {}}
    except BaseException as exc:  # the failure is the expected result
        outcome = error_outcome(exc)
    return outcome, _maybe_cross_check(bundle, trial)


def _replay_ladder(bundle: ReproBundle,
                   trial: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    from repro.gpu.recovery import (ContainmentAuditor, LadderConfig,
                                    run_with_ladder)
    from repro.gpu.resilience import ResilienceState
    from repro.gpu.watchdog import WatchdogConfig

    plan, kernel, launch, instance, mode, scheme_code = \
        _build_trial_environment(bundle, trial)
    ladder_spec = trial.get("ladder") or {}
    ladder = LadderConfig(
        max_cta_replays=ladder_spec.get("max_cta_replays", 1),
        max_kernel_replays=ladder_spec.get("max_kernel_replays", 2),
        watchdog=WatchdogConfig(
            max_steps=ladder_spec.get("max_steps", 2_000_000),
            max_warp_steps=ladder_spec.get("max_warp_steps")))
    persistent = trial.get("persistent", False)
    armed = [plan] if not persistent else None

    def make_state() -> ResilienceState:
        fault = plan if persistent else (armed.pop() if armed else None)
        return ResilienceState(mode=mode,
                               scheme=_make_scheme(scheme_code)
                               if mode == "swap" else None,
                               fault=fault)

    auditor = ContainmentAuditor(kernel, launch)
    try:
        run_with_ladder(kernel, launch, instance.memory, make_state,
                        config=ladder, auditor=auditor)
        outcome = {"code": None, "message": "<no violation>",
                   "context": {}}
    except BaseException as exc:
        outcome = error_outcome(exc)
        overlay = trial.get("context")
        if overlay and outcome.get("code"):
            # the capture hook enriched the violation's context with the
            # trial inputs (plan, seed, batch/trial index); apply the
            # recorded overlay so fingerprints compare like for like
            merged = dict(outcome.get("context") or {})
            merged.update(overlay)
            outcome["context"] = merged
    return outcome, _cross_check(kernel, launch, instance, mode,
                                 scheme_code, plan,
                                 ladder_spec.get("max_steps", 2_000_000))


def _replay_certify(bundle: ReproBundle,
                    trial: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    from repro.bundle.capture import certificate_outcome
    from repro.certify import CERTIFICATE_SCHEMA_VERSION, Certifier
    from repro.certify.engine import certify_scheme

    recorded_schema = trial.get("certificate_schema")
    if recorded_schema is not None and \
            recorded_schema != CERTIFICATE_SCHEMA_VERSION:
        raise _Stale(f"certificate schema {recorded_schema!r} != engine "
                     f"schema {CERTIFICATE_SCHEMA_VERSION}")
    mode = trial.get("mode", "fast")
    seed = trial.get("seed", 0)
    tamper = trial.get("tamper")
    if tamper is not None:
        from repro.certify.tamper import build_tampered_scheme
        scheme = build_tampered_scheme(tamper)
        certificate = Certifier(mode=mode, seed=seed).certify(
            scheme, name=trial.get("scheme"))
    else:
        certificate = certify_scheme(trial["scheme"], mode=mode,
                                     seed=seed)
    return certificate_outcome(certificate.to_dict()), \
        "skipped (certification trial)"


def _replay_merge(bundle: ReproBundle, trial: Dict[str, Any],
                  manifest: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    from repro.inject.journal import JOURNAL_VERSION
    from repro.inject.merge import merge_shard_journals

    if manifest.get("journal_version") != JOURNAL_VERSION:
        raise _Stale(f"journal schema "
                     f"{manifest.get('journal_version')!r} != engine "
                     f"schema {JOURNAL_VERSION}")
    paths = bundle.journal_files()
    if not paths:
        raise BundleError("merge trial bundles no journals")
    try:
        merge_shard_journals(paths)
        outcome = {"code": None, "message": None, "context": {}}
    except MergeConflict as exc:
        outcome = merge_outcome(exc)
    return outcome, "skipped (journal trial)"


def _replay_journal_verify(bundle: ReproBundle, trial: Dict[str, Any],
                           manifest: Dict[str, Any],
                           ) -> Tuple[Dict[str, Any], str]:
    from repro.inject.journal import JOURNAL_VERSION

    if manifest.get("journal_version") != JOURNAL_VERSION:
        raise _Stale(f"journal schema "
                     f"{manifest.get('journal_version')!r} != engine "
                     f"schema {JOURNAL_VERSION}")
    paths = bundle.journal_files()
    if not paths:
        raise BundleError("journal-verify trial bundles no journals")
    outcome = {"code": (manifest.get("error") or {}).get("code"),
               "journals": journal_digest(paths)}
    return outcome, "skipped (journal trial)"


def _make_scheme(code: str):
    from repro.inject.engine import make_scheme
    return make_scheme(code)


def _build_trial_environment(bundle: ReproBundle, trial: Dict[str, Any]):
    """Workload + compiled kernel + plan for a fault-plan trial spec."""
    from repro.compiler import compile_for_scheme, resilience_mode
    from repro.gpu.resilience import FaultPlan
    from repro.workloads import get_workload

    plan = FaultPlan.from_dict(bundle.read_json(FAULT_PLAN_FILE))
    instance = get_workload(trial["workload"]).build(
        scale=trial.get("scale", 0.25),
        seed=trial.get("build_seed", 1))
    tamper = trial.get("tamper")
    if tamper is not None:
        from repro.compiler.tamper import compile_tampered
        compiled = compile_tampered(instance.kernel, tamper)
        mode = trial.get("mode", "swdup")
    else:
        scheme = trial.get("compile_scheme", "swap-ecc")
        compiled = compile_for_scheme(instance.kernel, instance.launch,
                                      scheme)
        mode = trial.get("mode", resilience_mode(scheme))
    launch = compiled.adjust_launch(instance.launch)
    return (plan, compiled.kernel, launch, instance, mode,
            trial.get("code", "secded-dp"))


def _maybe_cross_check(bundle: ReproBundle, trial: Dict[str, Any]) -> str:
    """Cross-check the recorded fault plan when the trial carries one."""
    spec = trial.get("cross_check")
    if not spec or FAULT_PLAN_FILE not in (bundle.manifest.get("files")
                                           or {}):
        return "skipped (no fault plan)"
    plan, kernel, launch, instance, mode, scheme_code = \
        _build_trial_environment(bundle, dict(spec))
    return _cross_check(kernel, launch, instance, mode, scheme_code,
                        plan, spec.get("max_steps", 2_000_000))


def _memory_digest(words: Any) -> str:
    import numpy as np
    return hashlib.sha256(
        np.ascontiguousarray(words).tobytes()).hexdigest()


def _cross_check(kernel, launch, instance, mode, scheme_code, plan,
                 max_steps) -> str:
    """Run one plan through both executors; compare bit for bit.

    The tensor executor's exactness contract says every non-fallback
    trial matches its scalar oracle on outcome bin, detection events,
    and memory image — a bundle replay is exactly the place to hold it
    to that, so a cross-path divergence downgrades the verdict to
    ``DIVERGED`` even when the scalar outcome alone reproduced.
    """
    from repro.gpu.device import run_functional
    from repro.gpu.resilience import ResilienceState
    from repro.gpu.tensor import run_trials

    def fresh_state() -> ResilienceState:
        return ResilienceState(mode=mode,
                               scheme=_make_scheme(scheme_code)
                               if mode == "swap" else None,
                               fault=plan)

    scalar_state = fresh_state()
    scalar_memory = instance.fresh_memory()
    scalar_bin = "ok"
    try:
        run_functional(kernel, launch, scalar_memory, scalar_state,
                       max_steps=max_steps)
    except HangError:
        scalar_bin = "hang"
    except SimulationError:
        scalar_bin = "crash"
    if scalar_bin == "ok" and scalar_state.detected:
        scalar_bin = "halt"
    scalar_sig = {
        "outcome": scalar_bin,
        "detected": scalar_state.detected,
        "events": [event.kind for event in scalar_state.events],
        "fault_fired": scalar_state.fault_fired,
        "memory": _memory_digest(scalar_memory.words),
    }

    result = run_trials(kernel, launch, instance.memory.words,
                        [fresh_state()], max_steps=max_steps)
    tensor_bin = result.outcomes[0]
    if tensor_bin == "fallback":
        reasons = getattr(result, "fallback_reasons", None) or [None]
        return f"skipped (tensor fallback: {reasons[0]})"
    tensor_state = result.states[0]
    tensor_sig = {
        "outcome": tensor_bin,
        "detected": tensor_state.detected,
        "events": [event.kind for event in tensor_state.events],
        "fault_fired": tensor_state.fault_fired,
        "memory": _memory_digest(result.memory.space_of(0).words),
    }
    if scalar_sig != tensor_sig:
        mismatched = sorted(name for name in scalar_sig
                            if scalar_sig[name] != tensor_sig[name])
        return (f"diverged: scalar and tensor paths disagree on "
                f"{mismatched} (scalar {scalar_sig}, tensor "
                f"{tensor_sig})")
    return "ok"
