"""Content-hashed repro bundles: capture any failure as a portable trial.

A :class:`ReproBundle` is a directory (optionally tarred) that freezes
everything needed to re-trigger one failure on another machine with *no*
external dependencies: a ``manifest.json`` carrying the typed error
record (code, severity, context), the engine and schema versions, the
RNG seed, a JSON *trial spec* describing how to reconstruct the run, and
the expected *outcome fingerprint*; plus sidecar files — the serialized
:class:`~repro.gpu.resilience.FaultPlan`, scheme config, workload id +
inputs, and the relevant journal slice — when the trial has them.

Every byte is folded into a single SHA-256 *content hash* (stored in the
manifest and suffixed onto the bundle directory name), so a bundle that
was corrupted or edited in flight fails loudly at load time instead of
replaying a different trial than the one that crashed.

Capture never throws into the failure path it observes: the campaign
hooks wrap :func:`capture_bundle` defensively, because losing a bundle
must never mask (or re-raise over) the original failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tarfile
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro import __version__ as ENGINE_VERSION
from repro.errors import BundleError, ReproError

#: bump when the manifest layout changes incompatibly; replays of a
#: bundle written under a different version report ``STALE_SCHEMA``
BUNDLE_SCHEMA_VERSION = 1

#: manifest ``bundle_kind`` discriminator
BUNDLE_KIND = "swapcodes-repro-bundle"

MANIFEST_NAME = "manifest.json"

#: sidecar file names (all optional; listed in ``manifest["files"]``)
FAULT_PLAN_FILE = "fault_plan.json"
SCHEME_FILE = "scheme.json"
WORKLOAD_FILE = "workload.json"
JOURNAL_SLICE_FILE = "journal.jsonl"
JOURNAL_DIR = "journals"


def _canonical(payload: Any) -> str:
    """Canonical JSON: the byte form all fingerprints/hashes are over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def outcome_fingerprint(outcome: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of an outcome dict."""
    return hashlib.sha256(_canonical(outcome).encode()).hexdigest()


def error_outcome(source: Any) -> Dict[str, Any]:
    """The canonical outcome dict for a failure.

    Accepts a live exception, a :meth:`~repro.errors.ReproError.to_record`
    dict, or an engine failure dict (``{"message", "traceback", ...}``,
    optionally carrying an ``"error"`` record).  Capture and replay both
    build outcomes through this function, so a failure reproduces
    bit-identically exactly when this dict does.
    """
    if isinstance(source, ReproError):
        return {"code": source.code, "message": str(source),
                "context": dict(getattr(source, "context", {}) or {})}
    if isinstance(source, BaseException):
        return {"code": None,
                "message": f"{type(source).__name__}: {source}",
                "context": {}}
    if not isinstance(source, Mapping):
        raise BundleError(
            f"cannot derive an outcome from {type(source).__name__}")
    record = source.get("error")
    if isinstance(record, Mapping) and record.get("code"):
        return {"code": record["code"],
                "message": record.get("message", ""),
                "context": dict(record.get("context") or {})}
    if "code" in source and "message" in source:  # a bare to_record dict
        return {"code": source["code"],
                "message": source.get("message", ""),
                "context": dict(source.get("context") or {})}
    return {"code": None, "message": source.get("message", ""),
            "context": {}}


def certificate_outcome(certificate: Mapping[str, Any]) -> Dict[str, Any]:
    """The canonical outcome dict for a certification verdict.

    Operates on :meth:`~repro.certify.engine.Certificate.to_dict`
    payloads (already JSON-safe, already journaled), so the capture hook
    and the replay engine derive the fingerprint from the exact same
    bytes.  A passed certificate yields ``code None``; a failed one the
    ``certify.claim_violated`` code plus the sorted violated claims and
    their weight-minimal counterexamples.
    """
    violated = sorted(certificate.get("violated") or [])
    claims = certificate.get("claims") or {}
    scheme = certificate.get("scheme")
    if not violated:
        return {"code": None, "message": f"{scheme}: certified",
                "context": {}, "violated": [], "counterexamples": {}}
    return {
        "code": "certify.claim_violated",
        "message": (f"{scheme}: {len(violated)} claim(s) violated: "
                    f"{', '.join(violated)}"),
        "context": {"scheme": scheme,
                    "mode": certificate.get("mode"),
                    "seed": certificate.get("seed"),
                    "claims": violated},
        "violated": violated,
        "counterexamples": {
            name: (claims.get(name) or {}).get("counterexample")
            for name in violated},
    }


def protocol_outcome(error: Any,
                     message: Optional[Mapping[str, Any]] = None,
                     expected: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
    """The canonical outcome dict for a coordinator protocol conflict.

    ``message`` is the offending wire message (already canonical JSON on
    arrival) and ``expected`` what the coordinator's state said it had
    to be — e.g. the previously recorded progress fingerprint for the
    same ``(unit, batch index)``.  Both are frozen into the outcome so
    the bundle's fingerprint pins the *exact* contradiction, not just
    the error text.
    """
    outcome = error_outcome(error)
    outcome["message"] = dict(message) if message is not None else None
    outcome["expected"] = dict(expected) if expected is not None else None
    return outcome


def _error_record(error: Any) -> Dict[str, Any]:
    if isinstance(error, ReproError):
        return error.to_record()
    if isinstance(error, Mapping):
        record = dict(error)
        for name in ("code", "message"):
            if name not in record:
                raise BundleError(
                    f"error record is missing {name!r}: {record!r}")
        record.setdefault("severity", "fatal")
        record.setdefault("recoverable", False)
        record.setdefault("context", {})
        return record
    raise BundleError(
        f"error must be a ReproError or record dict, got "
        f"{type(error).__name__}")


def _content_hash(manifest: Mapping[str, Any],
                  files: Mapping[str, bytes]) -> str:
    """One hash over the manifest (sans hash) and every sidecar file."""
    probe = {name: value for name, value in manifest.items()
             if name != "content_hash"}
    digest = hashlib.sha256()
    digest.update(_canonical(probe).encode())
    for name in sorted(files):
        digest.update(b"\x00" + name.encode() + b"\x00")
        digest.update(files[name])
    return digest.hexdigest()


@dataclass
class ReproBundle:
    """A loaded (and hash-verified) repro bundle."""

    path: str
    manifest: Dict[str, Any]
    #: keeps a tarball's extraction directory alive for the bundle's life
    _tempdir: Any = field(default=None, repr=False)

    @property
    def schema_version(self) -> Optional[int]:
        return self.manifest.get("schema_version")

    @property
    def code(self) -> Optional[str]:
        return (self.manifest.get("error") or {}).get("code")

    @property
    def severity(self) -> Optional[str]:
        return (self.manifest.get("error") or {}).get("severity")

    @property
    def capture_point(self) -> Optional[str]:
        return self.manifest.get("capture_point")

    @property
    def trial(self) -> Optional[Dict[str, Any]]:
        return self.manifest.get("trial")

    @property
    def outcome(self) -> Optional[Dict[str, Any]]:
        return self.manifest.get("outcome")

    @property
    def fingerprint(self) -> Optional[str]:
        return self.manifest.get("fingerprint")

    def file_path(self, name: str) -> str:
        """Absolute path of a sidecar file listed in the manifest."""
        if name not in (self.manifest.get("files") or {}):
            raise BundleError(f"bundle has no file {name!r}")
        return os.path.join(self.path, name)

    def read_json(self, name: str) -> Any:
        with open(self.file_path(name), "r", encoding="utf-8") as handle:
            return json.load(handle)

    def journal_files(self) -> List[str]:
        """Absolute paths of every bundled shard/lease journal."""
        prefix = JOURNAL_DIR + "/"
        return [os.path.join(self.path, name)
                for name in sorted(self.manifest.get("files") or {})
                if name.startswith(prefix)]

    def to_tarball(self, dest: Optional[str] = None) -> str:
        """Pack the bundle directory into ``<name>.tar.gz``."""
        base = os.path.basename(os.path.normpath(self.path))
        if dest is None:
            dest = os.path.normpath(self.path) + ".tar.gz"
        with tarfile.open(dest, "w:gz") as archive:
            archive.add(self.path, arcname=base)
        return dest

    @classmethod
    def load(cls, path: str) -> "ReproBundle":
        """Load a bundle directory or tarball, verifying its hash."""
        tempdir = None
        if os.path.isfile(path):
            tempdir = tempfile.TemporaryDirectory(prefix="repro-bundle-")
            path = _extract_tarball(path, tempdir.name)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise BundleError(
                f"cannot read bundle manifest {manifest_path}: {exc}")
        except ValueError as exc:
            raise BundleError(
                f"bundle manifest {manifest_path} is not JSON: {exc}")
        if manifest.get("bundle_kind") != BUNDLE_KIND:
            raise BundleError(
                f"{path} is not a {BUNDLE_KIND} "
                f"(bundle_kind={manifest.get('bundle_kind')!r})")
        files: Dict[str, bytes] = {}
        for name in manifest.get("files") or {}:
            file_path = os.path.join(path, name)
            try:
                with open(file_path, "rb") as handle:
                    files[name] = handle.read()
            except OSError as exc:
                raise BundleError(
                    f"bundle file {name!r} is missing or unreadable: "
                    f"{exc}")
        recorded = manifest.get("content_hash")
        actual = _content_hash(manifest, files)
        if recorded != actual:
            raise BundleError(
                f"bundle {path} failed its content-hash check "
                f"(recorded {recorded!r}, actual {actual!r}); refusing "
                f"to replay a tampered or truncated bundle")
        return cls(path=path, manifest=manifest, _tempdir=tempdir)


def _extract_tarball(path: str, dest: str) -> str:
    """Safely extract a bundle tarball; returns the bundle directory."""
    try:
        with tarfile.open(path, "r:*") as archive:
            for member in archive.getmembers():
                name = member.name
                if name.startswith(("/", "..")) or ".." in name.split("/"):
                    raise BundleError(
                        f"bundle tarball member {name!r} escapes the "
                        f"extraction directory")
                if not (member.isreg() or member.isdir()):
                    raise BundleError(
                        f"bundle tarball member {name!r} is not a "
                        f"regular file")
            archive.extractall(dest)
    except tarfile.TarError as exc:
        raise BundleError(f"cannot extract bundle tarball {path}: {exc}")
    entries = [entry for entry in sorted(os.listdir(dest))
               if os.path.isdir(os.path.join(dest, entry))]
    if os.path.exists(os.path.join(dest, MANIFEST_NAME)):
        return dest
    if len(entries) == 1:
        return os.path.join(dest, entries[0])
    raise BundleError(
        f"bundle tarball {path} does not contain a single bundle "
        f"directory (found {entries})")


def _slug(code: Optional[str]) -> str:
    return (code or "unknown").replace(".", "-")


def capture_bundle(error: Any, *, capture_point: str, out_dir: str,
                   trial: Optional[Mapping[str, Any]] = None,
                   seed: Optional[int] = None,
                   outcome: Optional[Mapping[str, Any]] = None,
                   fault_plan: Optional[Mapping[str, Any]] = None,
                   scheme: Optional[Mapping[str, Any]] = None,
                   workload: Optional[Mapping[str, Any]] = None,
                   journal_records: Optional[Sequence[Mapping]] = None,
                   journal_files: Optional[Mapping[str, str]] = None,
                   ) -> str:
    """Write one repro bundle under ``out_dir``; returns its path.

    ``error`` is the live exception or its record; ``trial`` is the
    JSON spec :func:`repro.bundle.replay` reconstructs the run from
    (``None`` marks a forensic-only bundle that cannot be replayed).
    ``outcome`` defaults to :func:`error_outcome` of the error — the
    dict whose fingerprint the replay must match bit-identically.
    ``journal_records`` become the bundled journal slice;
    ``journal_files`` (name -> source path) are copied under
    ``journals/``.  Writing is idempotent per content hash: capturing
    the same failure twice lands on the same directory.
    """
    from repro.inject.journal import JOURNAL_VERSION

    record = _error_record(error)
    final_outcome = dict(outcome) if outcome is not None \
        else error_outcome(error)

    files: Dict[str, bytes] = {}
    if fault_plan is not None:
        files[FAULT_PLAN_FILE] = _canonical(dict(fault_plan)).encode()
    if scheme is not None:
        files[SCHEME_FILE] = _canonical(dict(scheme)).encode()
    if workload is not None:
        files[WORKLOAD_FILE] = _canonical(dict(workload)).encode()
    if journal_records:
        lines = [json.dumps(dict(entry), sort_keys=True)
                 for entry in journal_records]
        files[JOURNAL_SLICE_FILE] = ("\n".join(lines) + "\n").encode()
    for name, source in sorted((journal_files or {}).items()):
        safe = os.path.basename(name)
        with open(source, "rb") as handle:
            files[f"{JOURNAL_DIR}/{safe}"] = handle.read()

    manifest: Dict[str, Any] = {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "bundle_kind": BUNDLE_KIND,
        "engine_version": ENGINE_VERSION,
        "journal_version": JOURNAL_VERSION,
        "capture_point": capture_point,
        "error": record,
        "seed": seed,
        "trial": dict(trial) if trial is not None else None,
        "outcome": final_outcome,
        "fingerprint": outcome_fingerprint(final_outcome),
        "files": {name: hashlib.sha256(data).hexdigest()
                  for name, data in files.items()},
    }
    manifest["content_hash"] = _content_hash(manifest, files)

    name = f"bundle-{_slug(record.get('code'))}-" \
           f"{manifest['content_hash'][:12]}"
    target = os.path.join(out_dir, name)
    if os.path.isdir(target):
        return target  # identical content already captured
    os.makedirs(out_dir, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=f".{name}.", dir=out_dir)
    try:
        for file_name, data in files.items():
            file_path = os.path.join(staging, file_name)
            os.makedirs(os.path.dirname(file_path), exist_ok=True)
            with open(file_path, "wb") as handle:
                handle.write(data)
        with open(os.path.join(staging, MANIFEST_NAME), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True, indent=2)
            handle.write("\n")
        try:
            os.rename(staging, target)
        except OSError:
            if os.path.isdir(target):  # lost a benign race
                shutil.rmtree(staging, ignore_errors=True)
            else:
                raise
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return target
