"""Deterministic failure repro bundles with replay verification.

The diagnostics endgame of the typed error hierarchy: any failure the
campaign stack can produce — an engine batch crash, a supervisor
quarantine, a fabric lease loss or merge conflict, a certifier claim
violation, a :class:`~repro.errors.ContainmentViolation` — is captured
as a single content-hashed directory (or tarball) that replays on any
machine with no external state::

    from repro.bundle import ReproBundle, capture_bundle, replay

    path = capture_bundle(error, capture_point="engine", out_dir="bundles",
                          trial={...}, seed=17)
    result = replay(path)
    assert result.verdict == "REPRODUCED"

See :mod:`repro.bundle.capture` for the bundle layout and manifest
schema, and :mod:`repro.bundle.replay` for the trial kinds and the
``REPRODUCED`` / ``DIVERGED`` / ``STALE_SCHEMA`` verdict semantics.
The ``examples/replay_bundle.py`` CLI wraps :func:`replay` for
fresh-process verification.
"""

from repro.bundle.capture import (BUNDLE_KIND, BUNDLE_SCHEMA_VERSION,
                                  FAULT_PLAN_FILE, JOURNAL_DIR,
                                  JOURNAL_SLICE_FILE, MANIFEST_NAME,
                                  SCHEME_FILE, WORKLOAD_FILE, ReproBundle,
                                  capture_bundle, certificate_outcome,
                                  error_outcome, outcome_fingerprint,
                                  protocol_outcome)
from repro.bundle.replay import (DIVERGED, REPRODUCED, STALE_SCHEMA,
                                 TRIAL_KINDS, ReplayResult, journal_digest,
                                 merge_outcome, replay)

__all__ = [
    "BUNDLE_KIND", "BUNDLE_SCHEMA_VERSION", "DIVERGED",
    "FAULT_PLAN_FILE", "JOURNAL_DIR", "JOURNAL_SLICE_FILE",
    "MANIFEST_NAME", "REPRODUCED", "ReplayResult", "ReproBundle",
    "SCHEME_FILE", "STALE_SCHEMA", "TRIAL_KINDS", "WORKLOAD_FILE",
    "capture_bundle", "certificate_outcome", "error_outcome",
    "journal_digest", "merge_outcome", "outcome_fingerprint",
    "protocol_outcome", "replay",
]
