"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested."""


class DecodingError(ReproError):
    """An ECC word could not be decoded (inconsistent inputs, bad widths)."""


class NetlistError(ReproError):
    """A gate netlist was malformed (cycles, missing drivers, bad widths)."""

class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured."""


class AssemblyError(ReproError):
    """A GPU kernel program failed to assemble."""


class SimulationError(ReproError):
    """The GPU simulator reached an invalid state (bad address, deadlock)."""


class FaultModelError(SimulationError):
    """A fault-injection strike was malformed.

    Raised at :class:`~repro.gpu.resilience.FaultPlan` construction (and
    by the strike helpers in :mod:`repro.ecc.swap`) for bit indices
    outside the codeword, empty strike masks, non-positive burst widths,
    or out-of-range lane sets — instead of silently wrapping indices
    modulo the width or failing later with an ``IndexError``.  Subclasses
    :class:`SimulationError` so existing crash-isolation boundaries keep
    treating a malformed plan as a configuration failure.
    """


class CertificationError(ReproError):
    """The guarantee certifier was misconfigured or could not run.

    Distinct from a *violated claim* — a violation is a legitimate
    certifier verdict recorded in the certificate artifact, while this
    exception means the certification request itself was malformed
    (unknown scheme, empty strike space, unwritable artifact path).
    """


class HangError(SimulationError):
    """A watchdog verdict: the kernel livelocked (budget or deadline hit).

    Subclasses :class:`SimulationError` so existing crash-isolation code
    keeps working, while classifiers can bin step-limit and wall-clock
    exhaustion as ``hang`` instead of a generic crash.
    """


class ResourceExhausted(ReproError):
    """A campaign worker blew through its supervised resource budget.

    Raised inside worker subprocesses when a ``resource.setrlimit`` cap
    trips (the SIGXCPU handler raises it for CPU budgets; address-space
    caps surface as :class:`MemoryError`, which the worker boundary folds
    into the same ``resource_exhausted`` outcome).  Lives in the shared
    error module so the engine's worker entry can catch it without
    importing the supervisor layer.
    """


class ContainmentViolation(ReproError):
    """A detected error leaked to memory before the halt.

    SwapCodes' central claim is strict read-time containment: every
    corrupted value is flagged at the register read port before it can
    reach a store.  The containment auditor raises this when a
    post-detection memory image diverges from the fault-free execution of
    the same prefix — making the claim machine-checked under injection.
    """


class CompilationError(ReproError):
    """A resilience compiler pass could not transform a kernel."""


class WorkloadError(ReproError):
    """A workload failed to build inputs or verify outputs."""
