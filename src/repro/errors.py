"""Exception hierarchy shared by every repro subsystem.

Every exception carries a *stable, dot-namespaced diagnostic code* (the
``code`` class attribute — ``inject.lease_expired``,
``journal.merge_conflict``, ...) plus a *severity class* and a
*recoverability flag*, so campaign journals, merged reports, repro
bundles, and service-layer clients can match on failures without
parsing messages.  Codes are registered at class-definition time
through :meth:`ReproError.__init_subclass__`, which enforces the
contract:

* every subclass must declare its *own* ``code`` (no silent
  inheritance of the parent's identity);
* codes must be dot-namespaced lowercase identifiers
  (``<subsystem>.<failure>``);
* a duplicate code is a programming error and raises ``TypeError`` at
  import time, so the registry test can never even see one;
* every subclass must likewise declare its own ``severity`` (one of
  :data:`SEVERITIES`) and ``recoverable`` (bool) — a new failure kind
  cannot be added without deciding how operators should triage it.

The severity taxonomy:

* ``fatal`` — the run's data is unsound or a guarantee was breached;
  nothing above this layer should trust the partial results.
* ``degraded`` — the campaign continues but lost capacity (a shard,
  a quarantined unit); results remain sound.
* ``transient`` — expected under fault/chaos conditions (hangs,
  resource caps, lease expiry); retrying or re-leasing is the designed
  response.
* ``config`` — the request itself was malformed; retrying without
  changing inputs can never succeed.

Instances carry a structured ``context`` dict (unit id, shard, lease
token, seed, batch index, ...) validated at raise time, and round-trip
through journals and worker pipes via :meth:`ReproError.to_record` /
:meth:`ReproError.from_record` and a ``__reduce__`` that preserves the
full diagnostic payload under pickling.

:func:`error_code_registry` exposes the full ``code -> class`` map for
diagnostics tooling and the registry test.
"""

import re
from typing import Any, Dict, Mapping, Optional, Type

_CODE_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: the closed set of severity classes (see the module docstring for the
#: triage semantics of each)
SEVERITIES = ("fatal", "degraded", "transient", "config")

#: well-known context fields and their required types.  Other keys are
#: allowed (subsystems attach what they know), but these names are the
#: shared vocabulary bundles and reports match on, so a wrong type here
#: is a programming error caught at raise time.
CONTEXT_FIELD_TYPES: Dict[str, type] = {
    "unit": str,       # work-unit id
    "shard": str,      # fabric shard id
    "token": int,      # lease fencing token
    "seed": int,       # RNG seed of the failing batch/trial
    "batch": int,      # batch index within the unit
    "trial": int,      # trial index within the batch
    "cta": int,        # CTA index within the launch
    "address": int,    # memory address (containment forensics)
    "rix": int,        # journal record index
    "scheme": str,     # protection-scheme name
    "workload": str,   # workload id
    "kind": str,       # unit kind / tamper kind
    "claim": str,      # certifier claim name
    "path": str,       # filesystem path involved
}

_SCALAR_TYPES = (str, int, float, bool, type(None))
_MAX_CONTEXT_DEPTH = 4

#: the process-wide code -> exception-class map (see
#: :func:`error_code_registry` for the public, copied view)
_REGISTRY: Dict[str, Type["ReproError"]] = {}


def error_code_registry() -> Dict[str, Type["ReproError"]]:
    """A copy of the diagnostic-code registry (``code -> class``)."""
    return dict(_REGISTRY)


def _checked_context_value(key: str, value: Any, depth: int) -> Any:
    """Validate one context value; return its JSON-normal form.

    Tuples come back as lists and dicts as fresh copies, so a stored
    context is exactly what a journal round-trip reproduces.
    """
    if isinstance(value, bool):
        expected = CONTEXT_FIELD_TYPES.get(key)
        if expected is not None and expected is not bool:
            raise TypeError(
                f"context field {key!r} must be {expected.__name__}, "
                f"got bool")
        return value
    if isinstance(value, _SCALAR_TYPES):
        expected = CONTEXT_FIELD_TYPES.get(key)
        if (expected is not None and value is not None
                and not isinstance(value, expected)):
            raise TypeError(
                f"context field {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}")
        return value
    if depth >= _MAX_CONTEXT_DEPTH:
        raise TypeError(
            f"context field {key!r} nests deeper than "
            f"{_MAX_CONTEXT_DEPTH} levels")
    if isinstance(value, (list, tuple)):
        return [_checked_context_value(key, item, depth + 1)
                for item in value]
    if isinstance(value, dict):
        normalized = {}
        for sub_key, sub_value in value.items():
            if not isinstance(sub_key, str):
                raise TypeError(
                    f"context field {key!r} has a non-string key "
                    f"{sub_key!r}")
            normalized[sub_key] = _checked_context_value(
                f"{key}.{sub_key}", sub_value, depth + 1)
        return normalized
    raise TypeError(
        f"context field {key!r} has non-JSON value of type "
        f"{type(value).__name__}")


def _validated_context(
        context: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Validate a context mapping, returning a plain-dict copy.

    Keys must be strings; well-known keys (:data:`CONTEXT_FIELD_TYPES`)
    must carry their declared type; all values must be JSON-compatible
    (scalars, or lists/dicts of scalars nested at most
    ``_MAX_CONTEXT_DEPTH`` deep) so every context survives the journal
    round-trip byte-identically.
    """
    if context is None:
        return {}
    if not isinstance(context, Mapping):
        raise TypeError(
            f"context must be a mapping, got {type(context).__name__}")
    validated: Dict[str, Any] = {}
    for key, value in context.items():
        if not isinstance(key, str) or not key:
            raise TypeError(f"context keys must be non-empty strings, "
                            f"got {key!r}")
        validated[key] = _checked_context_value(key, value, 0)
    return validated


def _rebuild_error(klass: type, args: tuple) -> "ReproError":
    """Pickle reconstructor: rebuild without calling subclass __init__.

    Subclasses are free to take extra constructor arguments; going
    through ``Exception.__init__`` directly means every registered
    class round-trips through worker pipes regardless of its
    constructor signature (the instance ``__dict__`` — including
    ``context`` — is restored by pickle's state step).
    """
    exc = klass.__new__(klass)
    Exception.__init__(exc, *args)
    exc.context = {}
    return exc


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: stable dot-namespaced diagnostic code; every subclass declares
    #: its own (enforced by ``__init_subclass__``)
    code = "repro.error"

    #: severity class (one of :data:`SEVERITIES`); every subclass
    #: declares its own (enforced by ``__init_subclass__``)
    severity = "fatal"

    #: whether the designed response is to retry/re-lease (True) or to
    #: stop trusting the run (False); every subclass declares its own
    recoverable = False

    def __init__(self, *args, context: Optional[Mapping[str, Any]] = None):
        super().__init__(*args)
        self.context = _validated_context(context)

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        code = cls.__dict__.get("code")
        if code is None:
            raise TypeError(
                f"{cls.__name__} must declare its own 'code' class "
                f"attribute (inheriting {cls.__mro__[1].__name__}'s "
                f"would alias two failure kinds under one code)")
        if not isinstance(code, str) or not _CODE_PATTERN.match(code):
            raise TypeError(
                f"{cls.__name__}.code {code!r} is not a dot-namespaced "
                f"lowercase identifier (expected '<subsystem>.<failure>')")
        if code in _REGISTRY:
            raise TypeError(
                f"{cls.__name__}.code {code!r} duplicates "
                f"{_REGISTRY[code].__name__}; diagnostic codes must be "
                f"unique")
        severity = cls.__dict__.get("severity")
        if severity is None:
            raise TypeError(
                f"{cls.__name__} must declare its own 'severity' class "
                f"attribute (one of {SEVERITIES}) — every failure kind "
                f"decides its triage class explicitly")
        if severity not in SEVERITIES:
            raise TypeError(
                f"{cls.__name__}.severity {severity!r} is not one of "
                f"{SEVERITIES}")
        recoverable = cls.__dict__.get("recoverable")
        if not isinstance(recoverable, bool):
            raise TypeError(
                f"{cls.__name__} must declare its own 'recoverable' "
                f"class attribute as a bool (got {recoverable!r})")
        _REGISTRY[code] = cls

    def __reduce__(self):
        # Default Exception pickling calls ``cls(*self.args)``, which
        # breaks subclasses with extra constructor arguments and drops
        # ``context``.  Rebuild through ``Exception.__init__`` and let
        # the state step restore the full instance ``__dict__``.
        return (_rebuild_error, (type(self), self.args), dict(self.__dict__))

    def to_record(self) -> Dict[str, Any]:
        """The JSON-safe journal/bundle form of this error."""
        return {
            "code": self.code,
            "severity": self.severity,
            "recoverable": self.recoverable,
            "message": str(self),
            "context": dict(getattr(self, "context", {}) or {}),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ReproError":
        """Reconstruct an error instance from :meth:`to_record` output.

        The class is looked up by ``code`` in the registry, so the
        reconstructed instance satisfies the same ``isinstance`` checks
        as the original.  A code this build does not know (a record
        from a newer engine) falls back to :class:`ReproError` with the
        recorded code preserved as an instance attribute, keeping the
        diagnostic identity intact through ``to_record`` round-trips.
        """
        code = record.get("code")
        klass = _REGISTRY.get(code, ReproError)
        exc = klass.__new__(klass)
        Exception.__init__(exc, record.get("message", ""))
        exc.context = _validated_context(record.get("context"))
        if klass is ReproError and isinstance(code, str) \
                and code != ReproError.code:
            exc.code = code
        return exc


_REGISTRY[ReproError.code] = ReproError


class InvalidArgument(ReproError, ValueError):
    """A library call received an argument outside its domain.

    The typed form of argument validation (negative widths, empty
    layouts, schemes missing a required bit class).  Subclasses
    :class:`ValueError` so callers using idiomatic ``except ValueError``
    keep working, while journals and bundles see a registered code
    instead of an anonymous builtin.
    """

    code = "repro.invalid_argument"
    severity = "config"
    recoverable = False


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested."""

    code = "ecc.construction"
    severity = "config"
    recoverable = False


class DecodingError(ReproError):
    """An ECC word could not be decoded (inconsistent inputs, bad widths)."""

    code = "ecc.decoding"
    severity = "config"
    recoverable = False


class NetlistError(ReproError):
    """A gate netlist was malformed (cycles, missing drivers, bad widths)."""

    code = "gates.netlist"
    severity = "config"
    recoverable = False


class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured."""

    code = "inject.misconfigured"
    severity = "config"
    recoverable = False


class AssemblyError(ReproError):
    """A GPU kernel program failed to assemble."""

    code = "gpu.assembly"
    severity = "config"
    recoverable = False


class SimulationError(ReproError):
    """The GPU simulator reached an invalid state (bad address, deadlock)."""

    code = "gpu.simulation"
    severity = "fatal"
    recoverable = False


class FaultModelError(SimulationError):
    """A fault-injection strike was malformed.

    Raised at :class:`~repro.gpu.resilience.FaultPlan` construction (and
    by the strike helpers in :mod:`repro.ecc.swap`) for bit indices
    outside the codeword, empty strike masks, non-positive burst widths,
    or out-of-range lane sets — instead of silently wrapping indices
    modulo the width or failing later with an ``IndexError``.  Subclasses
    :class:`SimulationError` so existing crash-isolation boundaries keep
    treating a malformed plan as a configuration failure.
    """

    code = "gpu.fault_model"
    severity = "config"
    recoverable = False


class CertificationError(ReproError):
    """The guarantee certifier was misconfigured or could not run.

    Distinct from a *violated claim* — a violation is a legitimate
    certifier verdict recorded in the certificate artifact (typed as
    :class:`ClaimViolation` when a failed certificate is exported as a
    repro bundle), while this exception means the certification request
    itself was malformed (unknown scheme, empty strike space, unwritable
    artifact path).
    """

    code = "certify.misconfigured"
    severity = "config"
    recoverable = False


class CertStoreError(ReproError):
    """The certificate store could not serve or persist an entry.

    The umbrella code for cache-layer failures in
    :mod:`repro.certify.store` — a lock that could not be taken, a
    latest-pointer that names a missing entry, a dead-letter move that
    failed.  ``degraded`` because the store always has a sound fallback:
    fall through to a fresh certify sweep and rebuild the entry.
    """

    code = "certify.store"
    severity = "degraded"
    recoverable = True


class CertEntryCorrupt(CertStoreError):
    """A cached certificate failed its integrity envelope on read.

    A torn write the atomic-rename discipline should have prevented, a
    flipped byte, or a hand-edited entry: the canonical payload no
    longer hashes to the envelope's recorded sha256/CRC32.  The entry is
    quarantined to the store's dead-letter directory with this record
    (and a repro bundle) and is never served; the request falls through
    to a fresh sweep, hence ``degraded``/recoverable.
    """

    code = "certify.store_corrupt"
    severity = "degraded"
    recoverable = True


class StaleCertificate(CertStoreError):
    """Strict mode refused to serve a superseded certificate.

    In graceful-degradation mode the service serves the prior
    certificate marked with a ``staleness`` descriptor while a
    recertification sweep is in flight; ``--strict`` turns that into
    this typed refusal instead.  ``transient`` because retrying after
    the in-flight sweep lands is the designed response.
    """

    code = "certify.stale_certificate"
    severity = "transient"
    recoverable = True


class ClaimViolation(ReproError):
    """A certified guarantee claim was violated by a counterexample.

    The typed form of a FAILED certificate: the certifier found a
    concrete strike the scheme's claim says cannot exist.  ``fatal``
    because a violated claim means the scheme's guarantee surface is
    unsound — every campaign result relying on it is suspect.  Carried
    in repro bundles (and raisable by strict gates) so claim violations
    travel with the same code/severity/context machinery as crashes.
    """

    code = "certify.claim_violated"
    severity = "fatal"
    recoverable = False


class HangError(SimulationError):
    """A watchdog verdict: the kernel livelocked (budget or deadline hit).

    Subclasses :class:`SimulationError` so existing crash-isolation code
    keeps working, while classifiers can bin step-limit and wall-clock
    exhaustion as ``hang`` instead of a generic crash.
    """

    code = "gpu.hang"
    severity = "transient"
    recoverable = True


class ResourceExhausted(ReproError):
    """A campaign worker blew through its supervised resource budget.

    Raised inside worker subprocesses when a ``resource.setrlimit`` cap
    trips (the SIGXCPU handler raises it for CPU budgets; address-space
    caps surface as :class:`MemoryError`, which the worker boundary folds
    into the same ``resource_exhausted`` outcome).  Lives in the shared
    error module so the engine's worker entry can catch it without
    importing the supervisor layer.
    """

    code = "inject.resource_exhausted"
    severity = "transient"
    recoverable = True


class ContainmentViolation(ReproError):
    """A detected error leaked to memory before the halt.

    SwapCodes' central claim is strict read-time containment: every
    corrupted value is flagged at the register read port before it can
    reach a store.  The containment auditor raises this when a
    post-detection memory image diverges from the fault-free execution of
    the same prefix — making the claim machine-checked under injection.
    """

    code = "gpu.containment_violation"
    severity = "fatal"
    recoverable = False


class CompilationError(ReproError):
    """A resilience compiler pass could not transform a kernel."""

    code = "compiler.transform"
    severity = "config"
    recoverable = False


class WorkloadError(ReproError):
    """A workload failed to build inputs or verify outputs."""

    code = "workloads.invalid"
    severity = "config"
    recoverable = False


class BundleError(ReproError):
    """A repro bundle was malformed, tampered with, or unreadable.

    Raised by :mod:`repro.bundle` when a bundle fails its content-hash
    check, is missing manifest fields, or names a trial this build
    cannot reconstruct.  ``config`` because the bundle (the input) is
    at fault, not the engine — a *schema version* mismatch is not an
    error at all but the ``STALE_SCHEMA`` replay verdict.
    """

    code = "bundle.invalid"
    severity = "config"
    recoverable = False


class FabricError(InjectionError):
    """The distributed campaign fabric was misconfigured or lost a shard.

    The umbrella code for coordinator-level failures (bad shard plans,
    a shard that exhausted its lease attempts, a resume against a
    mismatched plan); the lease-protocol violations below subclass it
    with their own codes.
    """

    code = "inject.fabric"
    severity = "degraded"
    recoverable = False


class LeaseExpired(FabricError):
    """A shard lease's TTL lapsed (or its holder died) before completion.

    Raised when a renewal or completion arrives for a lease the
    coordinator already expired — the holder is a zombie whose work will
    be (or already was) re-leased to a new holder under a higher fencing
    token.  Its journal remains on disk and merges idempotently, so the
    expiry can never lose or double-count trials.
    """

    code = "inject.lease_expired"
    severity = "transient"
    recoverable = True


class StaleFencingToken(FabricError):
    """A lease operation carried a superseded fencing token.

    The fencing rule: every grant of a shard increments its token, and
    renewals/completions are only honored when they carry the *current*
    token.  A holder that was presumed dead and superseded can therefore
    never complete over its replacement, which is what makes duplicated
    execution harmless (the merge layer dedupes the journals; the lease
    layer guarantees only one holder's completion is ever *accepted*).
    """

    code = "inject.stale_fencing_token"
    severity = "transient"
    recoverable = True


class MergeConflict(InjectionError):
    """Two shard journals made contradictory claims about the same work.

    Deterministic merge relies on batch records being pure functions of
    ``(unit params, batch index)``: duplicated execution after work
    stealing must reproduce byte-identical records.  If two journals
    disagree about the same ``(unit, batch)`` — different counts, or the
    same unit id launched with different params — the campaign data is
    unsound and the merge refuses to pick a winner.
    """

    code = "journal.merge_conflict"
    severity = "fatal"
    recoverable = False


class FabricConfigError(FabricError):
    """A fabric/coordinator configuration violates a timing invariant.

    The typed form of fabric misconfiguration: a lease TTL that does not
    clear the heartbeat interval by the renewal safety factor, stealing
    enabled with a non-positive TTL (which would self-steal live
    shards), a non-positive shard count.  ``config`` because retrying
    without changing the configuration can never succeed — distinct
    from :class:`FabricError`'s ``degraded`` runtime failures.
    """

    code = "inject.fabric_config"
    severity = "config"
    recoverable = False


class TransportError(ReproError):
    """A coordinator/worker transport operation failed.

    The umbrella code for message-transport faults: a send against a
    torn-down endpoint, a socket error mid-write, an attach against a
    listener that is gone.  ``transient`` because the designed response
    is the worker's capped-backoff reconnect loop — the lease/fencing
    layer makes a retried attach safe.
    """

    code = "transport.failure"
    severity = "transient"
    recoverable = True


class TransportClosed(TransportError):
    """The peer closed the connection (or the transport was shut down).

    Raised by ``recv`` when the stream ends and by ``send`` on a closed
    connection.  Under chaos or a coordinator restart this is the
    *expected* signal driving the worker's reconnect loop, so it stays
    ``transient``/recoverable like the lease-expiry family.
    """

    code = "transport.closed"
    severity = "transient"
    recoverable = True


class FrameError(TransportError):
    """A transport frame failed its structural or CRC32 check.

    A torn length prefix, a CRC mismatch, an oversized frame, or a
    payload that is not a canonical-JSON object.  The connection that
    produced it can no longer be trusted to be in sync and is closed;
    recovery is a fresh connection (and fencing re-validation), hence
    ``transient``.
    """

    code = "transport.bad_frame"
    severity = "transient"
    recoverable = True


class ProtocolError(FabricError):
    """A peer spoke the coordinator protocol inconsistently.

    Raised (and exported as a repro bundle) when a message contradicts
    the protocol's idempotence contract — e.g. two progress messages for
    the same ``(unit, batch index)`` carrying different counts, or a
    grant acceptance for a shard the coordinator never planned.  Unlike
    a stale token (an expected race, acknowledged-and-dropped), this
    means some peer is corrupting state: ``fatal``, stop trusting the
    conflicting shard's stream.
    """

    code = "coordinator.protocol"
    severity = "fatal"
    recoverable = False
