"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested."""


class DecodingError(ReproError):
    """An ECC word could not be decoded (inconsistent inputs, bad widths)."""


class NetlistError(ReproError):
    """A gate netlist was malformed (cycles, missing drivers, bad widths)."""

class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured."""


class AssemblyError(ReproError):
    """A GPU kernel program failed to assemble."""


class SimulationError(ReproError):
    """The GPU simulator reached an invalid state (bad address, deadlock)."""


class HangError(SimulationError):
    """A watchdog verdict: the kernel livelocked (budget or deadline hit).

    Subclasses :class:`SimulationError` so existing crash-isolation code
    keeps working, while classifiers can bin step-limit and wall-clock
    exhaustion as ``hang`` instead of a generic crash.
    """


class ResourceExhausted(ReproError):
    """A campaign worker blew through its supervised resource budget.

    Raised inside worker subprocesses when a ``resource.setrlimit`` cap
    trips (the SIGXCPU handler raises it for CPU budgets; address-space
    caps surface as :class:`MemoryError`, which the worker boundary folds
    into the same ``resource_exhausted`` outcome).  Lives in the shared
    error module so the engine's worker entry can catch it without
    importing the supervisor layer.
    """


class ContainmentViolation(ReproError):
    """A detected error leaked to memory before the halt.

    SwapCodes' central claim is strict read-time containment: every
    corrupted value is flagged at the register read port before it can
    reach a store.  The containment auditor raises this when a
    post-detection memory image diverges from the fault-free execution of
    the same prefix — making the claim machine-checked under injection.
    """


class CompilationError(ReproError):
    """A resilience compiler pass could not transform a kernel."""


class WorkloadError(ReproError):
    """A workload failed to build inputs or verify outputs."""
