"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested."""


class DecodingError(ReproError):
    """An ECC word could not be decoded (inconsistent inputs, bad widths)."""


class NetlistError(ReproError):
    """A gate netlist was malformed (cycles, missing drivers, bad widths)."""

class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured."""


class AssemblyError(ReproError):
    """A GPU kernel program failed to assemble."""


class SimulationError(ReproError):
    """The GPU simulator reached an invalid state (bad address, deadlock)."""


class CompilationError(ReproError):
    """A resilience compiler pass could not transform a kernel."""


class WorkloadError(ReproError):
    """A workload failed to build inputs or verify outputs."""
