"""Exception hierarchy shared by every repro subsystem.

Every exception carries a *stable, dot-namespaced diagnostic code* (the
``code`` class attribute — ``inject.lease_expired``,
``journal.merge_conflict``, ...) so campaign journals, merged reports,
and service-layer clients can match on failures without parsing
messages.  Codes are registered at class-definition time through
:meth:`ReproError.__init_subclass__`, which enforces the contract:

* every subclass must declare its *own* ``code`` (no silent
  inheritance of the parent's identity);
* codes must be dot-namespaced lowercase identifiers
  (``<subsystem>.<failure>``);
* a duplicate code is a programming error and raises ``TypeError`` at
  import time, so the registry test can never even see one.

:func:`error_code_registry` exposes the full ``code -> class`` map for
diagnostics tooling and the registry test.
"""

import re
from typing import Dict, Type

_CODE_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: the process-wide code -> exception-class map (see
#: :func:`error_code_registry` for the public, copied view)
_REGISTRY: Dict[str, Type["ReproError"]] = {}


def error_code_registry() -> Dict[str, Type["ReproError"]]:
    """A copy of the diagnostic-code registry (``code -> class``)."""
    return dict(_REGISTRY)


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: stable dot-namespaced diagnostic code; every subclass declares
    #: its own (enforced by ``__init_subclass__``)
    code = "repro.error"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        code = cls.__dict__.get("code")
        if code is None:
            raise TypeError(
                f"{cls.__name__} must declare its own 'code' class "
                f"attribute (inheriting {cls.__mro__[1].__name__}'s "
                f"would alias two failure kinds under one code)")
        if not isinstance(code, str) or not _CODE_PATTERN.match(code):
            raise TypeError(
                f"{cls.__name__}.code {code!r} is not a dot-namespaced "
                f"lowercase identifier (expected '<subsystem>.<failure>')")
        if code in _REGISTRY:
            raise TypeError(
                f"{cls.__name__}.code {code!r} duplicates "
                f"{_REGISTRY[code].__name__}; diagnostic codes must be "
                f"unique")
        _REGISTRY[code] = cls


_REGISTRY[ReproError.code] = ReproError


class CodeConstructionError(ReproError):
    """An error-correcting code could not be constructed as requested."""

    code = "ecc.construction"


class DecodingError(ReproError):
    """An ECC word could not be decoded (inconsistent inputs, bad widths)."""

    code = "ecc.decoding"


class NetlistError(ReproError):
    """A gate netlist was malformed (cycles, missing drivers, bad widths)."""

    code = "gates.netlist"


class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured."""

    code = "inject.misconfigured"


class AssemblyError(ReproError):
    """A GPU kernel program failed to assemble."""

    code = "gpu.assembly"


class SimulationError(ReproError):
    """The GPU simulator reached an invalid state (bad address, deadlock)."""

    code = "gpu.simulation"


class FaultModelError(SimulationError):
    """A fault-injection strike was malformed.

    Raised at :class:`~repro.gpu.resilience.FaultPlan` construction (and
    by the strike helpers in :mod:`repro.ecc.swap`) for bit indices
    outside the codeword, empty strike masks, non-positive burst widths,
    or out-of-range lane sets — instead of silently wrapping indices
    modulo the width or failing later with an ``IndexError``.  Subclasses
    :class:`SimulationError` so existing crash-isolation boundaries keep
    treating a malformed plan as a configuration failure.
    """

    code = "gpu.fault_model"


class CertificationError(ReproError):
    """The guarantee certifier was misconfigured or could not run.

    Distinct from a *violated claim* — a violation is a legitimate
    certifier verdict recorded in the certificate artifact, while this
    exception means the certification request itself was malformed
    (unknown scheme, empty strike space, unwritable artifact path).
    """

    code = "certify.misconfigured"


class HangError(SimulationError):
    """A watchdog verdict: the kernel livelocked (budget or deadline hit).

    Subclasses :class:`SimulationError` so existing crash-isolation code
    keeps working, while classifiers can bin step-limit and wall-clock
    exhaustion as ``hang`` instead of a generic crash.
    """

    code = "gpu.hang"


class ResourceExhausted(ReproError):
    """A campaign worker blew through its supervised resource budget.

    Raised inside worker subprocesses when a ``resource.setrlimit`` cap
    trips (the SIGXCPU handler raises it for CPU budgets; address-space
    caps surface as :class:`MemoryError`, which the worker boundary folds
    into the same ``resource_exhausted`` outcome).  Lives in the shared
    error module so the engine's worker entry can catch it without
    importing the supervisor layer.
    """

    code = "inject.resource_exhausted"


class ContainmentViolation(ReproError):
    """A detected error leaked to memory before the halt.

    SwapCodes' central claim is strict read-time containment: every
    corrupted value is flagged at the register read port before it can
    reach a store.  The containment auditor raises this when a
    post-detection memory image diverges from the fault-free execution of
    the same prefix — making the claim machine-checked under injection.
    """

    code = "gpu.containment_violation"


class CompilationError(ReproError):
    """A resilience compiler pass could not transform a kernel."""

    code = "compiler.transform"


class WorkloadError(ReproError):
    """A workload failed to build inputs or verify outputs."""

    code = "workloads.invalid"


class FabricError(InjectionError):
    """The distributed campaign fabric was misconfigured or lost a shard.

    The umbrella code for coordinator-level failures (bad shard plans,
    a shard that exhausted its lease attempts, a resume against a
    mismatched plan); the lease-protocol violations below subclass it
    with their own codes.
    """

    code = "inject.fabric"


class LeaseExpired(FabricError):
    """A shard lease's TTL lapsed (or its holder died) before completion.

    Raised when a renewal or completion arrives for a lease the
    coordinator already expired — the holder is a zombie whose work will
    be (or already was) re-leased to a new holder under a higher fencing
    token.  Its journal remains on disk and merges idempotently, so the
    expiry can never lose or double-count trials.
    """

    code = "inject.lease_expired"


class StaleFencingToken(FabricError):
    """A lease operation carried a superseded fencing token.

    The fencing rule: every grant of a shard increments its token, and
    renewals/completions are only honored when they carry the *current*
    token.  A holder that was presumed dead and superseded can therefore
    never complete over its replacement, which is what makes duplicated
    execution harmless (the merge layer dedupes the journals; the lease
    layer guarantees only one holder's completion is ever *accepted*).
    """

    code = "inject.stale_fencing_token"


class MergeConflict(InjectionError):
    """Two shard journals made contradictory claims about the same work.

    Deterministic merge relies on batch records being pure functions of
    ``(unit params, batch index)``: duplicated execution after work
    stealing must reproduce byte-identical records.  If two journals
    disagree about the same ``(unit, batch)`` — different counts, or the
    same unit id launched with different params — the campaign data is
    unsound and the merge refuses to pick a winner.
    """

    code = "journal.merge_conflict"
