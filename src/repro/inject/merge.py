"""Deterministic, idempotent reduce of per-shard journals into one report.

Work stealing means the same batch may have been executed — and durably
journaled — by more than one lease holder.  The merge makes that
harmless by construction:

* **stable ordering** — shard journals are reduced in sorted
  ``(shard, token)`` order and records within a journal in ``rix``
  order, so the merged report is a pure function of the set of
  journals, not of filesystem enumeration order (merging any
  permutation of the same journals yields byte-identical output);
* **idempotent dedup** — batch records dedupe on ``(unit, batch
  index)`` and terminal records on ``unit``; because batches are pure
  functions of ``(unit params, batch index)``, duplicates are
  byte-equal and the first occurrence is kept;
* **conflict refusal** — duplicates that are *not* equal (same batch
  key, different counts; same unit id, different params) mean the
  campaign data is unsound, and the merge raises
  :class:`~repro.errors.MergeConflict` instead of guessing;
* **salvage awareness** — every journal loads with ``salvage=True``;
  a SIGKILLed holder's torn tail costs only the records after it, and
  any batch lost that way was either re-executed under a later lease
  (and merges from that journal) or never completed anywhere.

The canonical artifact (:meth:`MergedCampaign.to_dict` /
:func:`write_merged_report`) carries *only* campaign data — unit
tallies, Wilson estimates, totals — never lease provenance (tokens,
journal counts, retries), which legitimately differs between a
disturbed run and its undisturbed same-seed twin.  That is what makes
the byte-identical replay guarantee testable.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MergeConflict
from repro.inject.engine import (CampaignReport, UnitReport, _empty_counts,
                                 wilson_interval)
from repro.inject.journal import JournalState

#: merged-artifact schema version, bumped on incompatible changes
MERGE_SCHEMA_VERSION = 1


@dataclass
class ShardSource:
    """Provenance of one shard's journals (kept out of the artifact)."""

    shard: str
    #: lease tokens whose journals contributed, ascending
    tokens: List[int] = field(default_factory=list)
    #: journal paths in merge order
    paths: List[str] = field(default_factory=list)
    #: lines that failed CRC/index/decode checks across those journals
    corrupt_lines: int = 0
    #: True if any contributing journal recorded a campaign_paused drain
    drained: bool = False


@dataclass
class MergedCampaign:
    """One campaign's deterministic reduce over every shard journal."""

    report: CampaignReport
    #: shard id -> provenance (never serialized into the artifact)
    sources: Dict[str, ShardSource]
    #: True when the coordinator's global early-stop ended the campaign
    stopped_globally: bool = False
    z: float = 1.96

    @property
    def estimate(self):
        """Global Wilson estimate over every shard's monitored trials."""
        trials = sum(unit.trials for unit in self.report.units.values())
        successes = sum(unit.successes
                        for unit in self.report.units.values())
        return wilson_interval(successes, trials, self.z)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical, replay-stable merged-report payload."""
        units = []
        for unit in self.report.units.values():
            units.append({
                "unit": unit.unit_id, "kind": unit.kind,
                "status": unit.status,
                "stopped_early": unit.stopped_early,
                "counts": {key: count for key, count in unit.counts.items()
                           if count},
                "trials": unit.trials, "successes": unit.successes,
                "batches": unit.batches,
                "estimate": _estimate_dict(unit.estimate),
            })
        return {
            "schema": MERGE_SCHEMA_VERSION,
            "stopped_globally": self.stopped_globally,
            "units": units,
            "totals": {key: count
                       for key, count in self.report.total_counts().items()
                       if count},
            "estimate": _estimate_dict(self.estimate),
        }


def _estimate_dict(estimate) -> Dict[str, Any]:
    return {"rate": estimate.rate, "low": estimate.low,
            "high": estimate.high, "trials": estimate.trials,
            "successes": estimate.successes}


def write_merged_report(merged: MergedCampaign, path: str) -> bytes:
    """Write the canonical merged artifact; returns the exact bytes.

    Canonical form — sorted keys, minimal separators, one trailing
    newline — so two merges of the same campaign data are byte-identical
    files, comparable with ``cmp``.
    """
    payload = json.dumps(merged.to_dict(), sort_keys=True,
                         separators=(",", ":")).encode("utf-8") + b"\n"
    with open(path, "wb") as handle:
        handle.write(payload)
    return payload


def _journal_sort_key(state: JournalState) -> Tuple[str, int]:
    header = state.header or {}
    shard = str(header.get("shard",
                           os.path.basename(state.path or "")))
    return shard, int(header.get("token", 0))


def _batch_fingerprint(record: Dict[str, Any]) -> Tuple:
    """The replay-invariant content of a batch record (attempts excluded)."""
    counts = {key: count for key, count in record.get("counts", {}).items()
              if count}
    return (record.get("trials"), record.get("successes"),
            tuple(sorted(counts.items())))


def merge_shard_journals(paths: List[str], z: float = 1.96,
                         stopped_globally: bool = False) -> MergedCampaign:
    """Reduce ``paths`` (any order, duplicates welcome) into one report.

    ``stopped_globally`` marks units the coordinator's global Wilson
    early-stop drained mid-sweep as ``completed``/``stopped_early``
    rather than ``paused`` — the drain was a verdict, not an
    interruption.
    """
    states = [JournalState.load(path, salvage=True)
              for path in sorted(set(paths))]
    states.sort(key=_journal_sort_key)

    sources: Dict[str, ShardSource] = {}
    unit_order: List[str] = []
    unit_started: Dict[str, Dict[str, Any]] = {}
    unit_batches: Dict[str, Dict[int, Dict[str, Any]]] = {}
    unit_done: Dict[str, Dict[str, Any]] = {}

    salvage_events: List[Dict[str, Any]] = []
    for state in states:
        shard, token = _journal_sort_key(state)
        source = sources.setdefault(shard, ShardSource(shard=shard))
        source.tokens.append(token)
        source.paths.append(state.path)
        source.corrupt_lines += state.corrupt_lines
        source.drained = source.drained or bool(state.pauses)
        salvage_events.extend(state.salvage_events)
        for unit_id, started in state.started.items():
            if unit_id not in unit_started:
                unit_order.append(unit_id)
                unit_started[unit_id] = started
            elif unit_started[unit_id].get("params") != \
                    started.get("params"):
                raise MergeConflict(
                    f"unit {unit_id!r} was journaled with params "
                    f"{unit_started[unit_id].get('params')!r} and "
                    f"{started.get('params')!r} in different shard "
                    f"journals; refusing to merge divergent campaigns")
        for unit_id, records in state.batches.items():
            batches = unit_batches.setdefault(unit_id, {})
            for record in records:
                index = record["index"]
                if index not in batches:
                    batches[index] = record
                elif _batch_fingerprint(batches[index]) != \
                        _batch_fingerprint(record):
                    raise MergeConflict(
                        f"batch {index} of unit {unit_id!r} was journaled "
                        f"with different counts by two lease holders "
                        f"({state.path}); duplicated execution must be "
                        f"deterministic — refusing to pick a winner")
        for unit_id, done in state.finished.items():
            unit_done.setdefault(unit_id, done)

    units: Dict[str, UnitReport] = {}
    for unit_id in unit_order:
        units[unit_id] = _merged_unit(
            unit_id, unit_started[unit_id],
            unit_batches.get(unit_id, {}), unit_done.get(unit_id),
            stopped_globally, z)
    paused = any(report.status == "paused" for report in units.values())
    report = CampaignReport(units=units, journal_path=None, paused=paused,
                            salvage_events=salvage_events)
    return MergedCampaign(report=report, sources=sources,
                          stopped_globally=stopped_globally, z=z)


def _merged_unit(unit_id: str, started: Dict[str, Any],
                 batches: Dict[int, Dict[str, Any]],
                 done: Optional[Dict[str, Any]], stopped_globally: bool,
                 z: float) -> UnitReport:
    counts = _empty_counts()
    trials = 0
    successes = 0
    payloads: List[Dict[str, Any]] = []
    for index in sorted(batches):
        record = batches[index]
        trials += record["trials"]
        successes += record["successes"]
        for outcome, count in record.get("counts", {}).items():
            counts[outcome] = counts.get(outcome, 0) + count
        if "payload" in record:
            payloads.append(record["payload"])
    batch_count = len(batches)
    stopped_early = False
    if done is not None:
        # The terminal summary is the authority: it already folds in the
        # batches above plus any terminal failure bin (a crashed unit's
        # final `crash` increment never appears as a batch record).
        summary = done.get("summary", {})
        status = done["status"]
        counts = _empty_counts()
        counts.update(summary.get("counts", {}))
        trials = summary.get("trials", trials)
        successes = summary.get("successes", successes)
        batch_count = summary.get("batches", batch_count)
        stopped_early = summary.get("stopped_early", False)
    elif stopped_globally:
        status = "completed"
        stopped_early = True
    else:
        status = "paused"
    return UnitReport(
        unit_id=unit_id, kind=started.get("kind", ""), status=status,
        counts=counts, trials=trials, successes=successes,
        batches=batch_count, retries=0, stopped_early=stopped_early,
        resumed=False, estimate=wilson_interval(successes, trials, z),
        detail="", payloads=payloads,
        failures=done.get("failures", []) if done else [])


def fabric_journal_paths(fabric_dir: str) -> List[str]:
    """Every shard lease journal under a fabric directory, sorted."""
    return sorted(glob.glob(os.path.join(fabric_dir,
                                         "shard-*.lease-*.jsonl")))


def merge_fabric_dir(fabric_dir: str, z: float = 1.96,
                     stopped_globally: bool = False) -> MergedCampaign:
    """Merge every shard lease journal found under ``fabric_dir``."""
    return merge_shard_journals(fabric_journal_paths(fabric_dir), z=z,
                                stopped_globally=stopped_globally)
