"""Resilient fault-injection campaign engine (crash-isolated workers).

The paper's evaluation hinges on large injection campaigns, and a single
hung netlist sweep or crashing worker must not cost the whole run.  This
engine executes *work units* — gate-level unit campaigns and GPU-level
:class:`~repro.gpu.resilience.FaultPlan` sweeps — as sequences of batches,
each batch in a crash-isolated subprocess with a wall-clock timeout:

* a worker that raises or dies is retried with exponential backoff, and a
  unit whose batches keep failing is *recorded* as ``crashed``/``hung`` in
  the outcome taxonomy (masked/SDC/DUE/trap/hang/crash/
  resource_exhausted) instead of aborting the campaign;
* every completed batch streams to an append-only JSONL journal
  (:mod:`repro.inject.journal`), so an interrupted campaign resumes where
  it stopped — finished units are skipped, partial units continue after
  their last journaled batch;
* a Wilson-score early-stopping rule ends a unit's sweep once the
  monitored detection-rate confidence interval is tighter than a
  configurable half-width, and every report carries the interval, not
  just the point estimate.

A :class:`~repro.inject.supervisor.CampaignSupervisor` layers four more
defenses on top (resource-governed workers, poison-unit quarantine,
signal-safe drains, and CRC-verified journals via ``salvage``); see
:mod:`repro.inject.supervisor` for the policy objects and
:class:`CampaignEngine`'s ``supervisor`` argument for the wiring.

New unit kinds plug in through :func:`register_unit_kind`; batch runners
must be module-level callables so worker processes can reach them under
any start method.
"""

from __future__ import annotations

import math
import os
import random
import signal as _signal
import threading
import time
import traceback as _traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence

import multiprocessing

from repro.errors import (ContainmentViolation, HangError, InjectionError,
                          ReproError, ResourceExhausted, SimulationError)
from repro.inject.campaign import run_unit_campaign
from repro.inject.classify import detection_outcomes
from repro.inject.hamartia import CampaignResult, merge_results
from repro.inject.journal import Journal, JournalState, NullJournal

#: the expanded outcome taxonomy every unit report tallies;
#: ``resource_exhausted`` is the supervisor's verdict for workers that
#: blew an rlimit budget or stopped heartbeating
OUTCOMES = ("masked", "sdc", "due", "trap", "hang", "crash",
            "resource_exhausted")

#: extra (non-terminal) outcome keys runners may report; the last three
#: are the recovery ladder's rungs (gpu-recovery units)
EXTRA_OUTCOMES = ("not_hit", "recovered", "corrected_in_place",
                  "cta_replayed", "kernel_replayed")


def make_scheme(spec: str):
    """Build a register-file SwapCodes scheme from its Figure 11 name.

    Accepts ``parity``, ``modN`` (N a residue modulus), ``ted``,
    ``secded-dp`` and ``sec-dp`` — the spellings used throughout the
    figures and the campaign journals.
    """
    from repro.ecc import (DetectOnlySwap, ParityCode, ResidueCode,
                           SecDedDpSwap, SecDpSwap, TedCode)
    if spec == "parity":
        return DetectOnlySwap(ParityCode())
    if spec == "ted":
        return DetectOnlySwap(TedCode())
    if spec == "secded-dp":
        return SecDedDpSwap()
    if spec == "sec-dp":
        return SecDpSwap()
    if spec.startswith("mod"):
        try:
            modulus = int(spec[3:])
        except ValueError:
            raise InjectionError(f"bad residue scheme spec {spec!r}") \
                from None
        return DetectOnlySwap(ResidueCode(modulus))
    raise InjectionError(
        f"unknown scheme spec {spec!r}; expected parity/modN/ted/"
        f"secded-dp/sec-dp")


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> "WilsonEstimate":
    """Wilson score interval for a binomial proportion.

    Unlike the normal approximation it stays inside [0, 1] and behaves at
    the extremes (0 or all successes), which campaigns hit routinely.
    Zero trials is legal — a unit that crashed before producing data —
    and yields the uninformative estimate (rate 0, interval [0, 1]);
    more successes than trials is always a caller bug and raises.
    """
    if trials < 0:
        raise InjectionError(f"trials must be >= 0, got {trials}")
    if successes < 0:
        raise InjectionError(f"successes must be >= 0, got {successes}")
    if successes > trials:
        raise InjectionError(
            f"successes ({successes}) cannot exceed trials ({trials})")
    if trials == 0:
        return WilsonEstimate(0.0, 0.0, 1.0, 0, 0)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denominator
    spread = (z / denominator) * math.sqrt(
        p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
    return WilsonEstimate(p, max(0.0, center - spread),
                          min(1.0, center + spread), trials, successes)


@dataclass(frozen=True)
class WilsonEstimate:
    """A proportion with its Wilson score confidence interval."""

    rate: float
    low: float
    high: float
    trials: int
    successes: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (f"{self.rate * 100:.2f}% "
                f"[{self.low * 100:.2f}%, {self.high * 100:.2f}%]")


@dataclass(frozen=True)
class BatchSpec:
    """One batch of injections inside a unit's sweep."""

    index: int
    size: int
    seed: int


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of campaign work.

    ``params`` must be JSON-serializable (it is journaled and checked on
    resume); ``context`` carries non-serializable extras — an
    :class:`~repro.inject.operands.OperandTrace`, a prebuilt workload
    instance — which reach fork-started workers by inheritance and are
    never journaled.
    """

    unit_id: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    context: Any = None


@dataclass
class EngineConfig:
    """Knobs for isolation, retry, batching, and early stopping."""

    #: injections per batch (one crash-isolated subprocess per batch)
    batch_size: int = 200
    #: hard cap on batches per unit
    max_batches: int = 8
    #: wall-clock seconds per batch attempt (None = wait forever)
    timeout_s: Optional[float] = 120.0
    #: extra attempts after the first failure of a batch
    max_retries: int = 2
    #: first retry delay; doubles each retry up to ``backoff_max_s``
    backoff_s: float = 0.25
    #: hard ceiling on any single retry delay — the exponential curve
    #: saturates here instead of growing unbounded
    backoff_max_s: float = 30.0
    #: whether a timed-out batch is retried (hangs are usually sticky)
    retry_on_hang: bool = False
    #: stop a unit once the Wilson CI half-width shrinks below this
    #: (None disables early stopping)
    ci_half_width: Optional[float] = 0.02
    #: never early-stop before this many monitored trials
    min_trials: int = 50
    #: z-score of the confidence level (1.96 = 95%)
    z: float = 1.96
    #: multiprocessing start method; "fork" lets workers inherit contexts
    start_method: str = "fork"
    #: "process" isolates batches in subprocesses; "inline" runs them in
    #: the engine process (no isolation — debugging and picky platforms)
    isolation: str = "process"
    #: fsync the journal after every record (slower, kill-proof)
    journal_fsync: bool = False
    #: tolerate mid-file journal corruption by truncating at the first
    #: bad record (deterministic seeds re-derive the lost batches);
    #: default False raises on any CRC/index/decode failure
    salvage: bool = False
    #: directory to export :mod:`repro.bundle` repro bundles into when a
    #: unit terminally fails or a certification comes back FAILED (None
    #: disables capture); deliberately absent from :meth:`to_dict` — it
    #: is an operator-side diagnostic sink, not a statistical knob, so
    #: resumed campaigns may point it anywhere
    bundle_dir: Optional[str] = None

    def __post_init__(self):
        if self.batch_size < 1:
            raise InjectionError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_batches < 1:
            raise InjectionError(
                f"max_batches must be >= 1, got {self.max_batches}")
        if self.max_retries < 0:
            raise InjectionError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_max_s <= 0:
            raise InjectionError(
                f"backoff_max_s must be positive, got {self.backoff_max_s}")
        if self.ci_half_width is not None and self.ci_half_width <= 0:
            raise InjectionError(
                f"ci_half_width must be positive (or None), got "
                f"{self.ci_half_width}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise InjectionError(
                f"timeout_s must be positive (or None), got "
                f"{self.timeout_s}")
        if self.isolation not in ("process", "inline"):
            raise InjectionError(
                f"unknown isolation {self.isolation!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "batch_size": self.batch_size, "max_batches": self.max_batches,
            "timeout_s": self.timeout_s, "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_max_s": self.backoff_max_s,
            "retry_on_hang": self.retry_on_hang,
            "ci_half_width": self.ci_half_width,
            "min_trials": self.min_trials, "z": self.z,
            "isolation": self.isolation,
        }


@dataclass
class UnitReport:
    """Terminal outcome of one work unit.

    ``status`` is one of ``completed``, ``crashed``, ``hung``,
    ``resource_exhausted`` (budget/heartbeat kill), ``quarantined``
    (dead-lettered after repeated consecutive failures), or ``paused``
    (a drain stopped the unit mid-sweep; a resume will finish it).
    """

    unit_id: str
    kind: str
    status: str
    counts: Dict[str, int]
    trials: int
    successes: int
    batches: int
    retries: int
    stopped_early: bool
    resumed: bool
    estimate: WilsonEstimate
    detail: str = ""
    payloads: List[Dict[str, Any]] = field(default_factory=list)
    #: one entry per failed batch attempt (outcome, detail, traceback)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status != "completed"

    def summary(self) -> Dict[str, Any]:
        """The JSON-serializable digest journaled in ``unit_done``."""
        return {
            "counts": dict(self.counts), "trials": self.trials,
            "successes": self.successes, "batches": self.batches,
            "retries": self.retries, "stopped_early": self.stopped_early,
            "detail": self.detail,
        }


@dataclass
class CampaignReport:
    """Every unit's report, in campaign order."""

    units: Dict[str, UnitReport]
    journal_path: Optional[str] = None
    #: True when a drain (signal or request_drain) stopped the campaign
    #: early; re-run against the same journal to resume
    paused: bool = False
    #: why the drain happened (e.g. "signal SIGTERM")
    drain_reason: str = ""
    #: unit ids a drain prevented from starting, in campaign order
    pending: List[str] = field(default_factory=list)
    #: every typed ``journal_salvaged`` event behind this campaign — a
    #: salvage-mode open truncated complete records away (each entry
    #: carries ``dropped_records``, ``last_good_rix``, ``corrupt_line``)
    salvage_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def salvaged_records(self) -> int:
        """Total journal records lost to salvage truncations."""
        return sum(event.get("dropped_records", 0)
                   for event in self.salvage_events)

    @property
    def completed(self) -> List[str]:
        return [unit_id for unit_id, report in self.units.items()
                if not report.failed]

    @property
    def failed(self) -> List[str]:
        return [unit_id for unit_id, report in self.units.items()
                if report.failed]

    @property
    def quarantined(self) -> List[str]:
        """Dead-lettered units, reported apart from ordinary failures."""
        return [unit_id for unit_id, report in self.units.items()
                if report.status == "quarantined"]

    def total_counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for report in self.units.values():
            for outcome, count in report.counts.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals


# ---------------------------------------------------------------------------
# batch runners

_RUNNERS: Dict[str, Callable[[Dict[str, Any], Any, BatchSpec],
                             Dict[str, Any]]] = {}


def register_unit_kind(kind: str, runner: Callable,
                       replace: bool = False) -> None:
    """Register a batch runner for a new work-unit kind.

    ``runner(params, context, batch)`` executes ``batch.size`` injections
    and returns ``{"trials": int, "successes": int, "counts": {...}}``
    plus an optional JSON-serializable ``"payload"``.  It must be a
    module-level callable (worker processes import it by reference).
    """
    if kind in _RUNNERS and not replace:
        raise InjectionError(f"unit kind {kind!r} already registered")
    _RUNNERS[kind] = runner


def unit_runner(kind: str) -> Callable:
    """The registered batch runner for ``kind``.

    The lookup :func:`repro.bundle.replay` uses to re-execute a bundled
    batch inline: a unit-batch bundle names its kind in the trial spec,
    and the replay engine resolves it here rather than pickling the
    callable into the bundle.
    """
    runner = _RUNNERS.get(kind)
    if runner is None:
        raise InjectionError(
            f"unknown unit kind {kind!r}; registered kinds: "
            f"{sorted(_RUNNERS)}")
    return runner


def _empty_counts() -> Dict[str, int]:
    counts = dict.fromkeys(OUTCOMES, 0)
    counts.update(dict.fromkeys(EXTRA_OUTCOMES, 0))
    return counts


def run_gate_batch(params: Dict[str, Any], context: Any,
                   batch: BatchSpec) -> Dict[str, Any]:
    """One batch of a gate-level unit campaign (Hamartia methodology).

    Without a ``scheme`` the monitored proportion is the unmasked-error
    rate (all unmasked errors are SDCs on unprotected hardware); with a
    ``scheme`` it is the detection rate among unmasked errors, the
    quantity Figure 11 bounds.  Detection is classified for the whole
    batch in one vectorized decoder pass
    (:func:`~repro.inject.classify.detection_outcomes`) rather than one
    scalar decode per trial.
    """
    trace = context.get("trace") if isinstance(context, dict) else None
    result = run_unit_campaign(
        params["unit"], sample_count=batch.size,
        site_count=params.get("site_count"), seed=batch.seed, trace=trace)
    counts = _empty_counts()
    scheme_spec = params.get("scheme")
    scheme = make_scheme(scheme_spec) if scheme_spec else None
    masked = sum(1 for record in result.chosen if record is None)
    counts["masked"] = masked
    if scheme is None:
        counts["sdc"] = len(result.records)
        trials = result.sample_count
        successes = len(result.records)
    else:
        detected = int(detection_outcomes(scheme, result).sum())
        counts["due"] = detected
        counts["sdc"] = len(result.records) - detected
        trials = len(result.records)
        successes = detected
    return {"trials": trials, "successes": successes, "counts": counts,
            "payload": result.to_dict()}


def _tally_gpu_outcome(counts: Dict[str, int], state: Any, outcome: str,
                       verify: Callable[[], bool]):
    """Bin one GPU fault trial; returns its (trials, successes) increment.

    The single classification used by the scalar loop, the batched
    tensor path, and its scalar fallback reruns — one code path is what
    keeps `tensor=True` count-identical to `tensor=False`.  ``outcome``
    is ``"hang"``/``"crash"`` for runs that died, anything else for runs
    that returned a state; ``verify`` is only called when the memory
    image actually decides the bin (fault fired, nothing detected).
    """
    if outcome == "hang":
        counts["hang"] += 1
        return 1, 1
    if outcome == "crash":
        counts["crash"] += 1
        return 1, 1
    if state.detected:
        kind = "trap" if any(event.kind == "trap"
                             for event in state.events) else "due"
        counts[kind] += 1
        return 1, 1
    if not state.fault_fired:
        counts["not_hit"] += 1
        return 0, 0
    if verify():
        if any(event.kind == "corrected" for event in state.events):
            counts["corrected_in_place"] += 1
        counts["masked"] += 1
        return 1, 0
    counts["sdc"] += 1
    return 1, 0


def _scalar_gpu_trial(kernel, launch, instance, state, max_steps):
    """Run one scalar oracle trial; returns (outcome, memory)."""
    from repro.gpu.device import run_functional

    memory = instance.fresh_memory()
    try:
        run_functional(kernel, launch, memory, state, max_steps=max_steps)
    except HangError:
        return "hang", memory
    except SimulationError:
        return "crash", memory
    return "ok", memory


def _run_trials_tensor(instance, kernel, launch, plans, fresh_state,
                       max_steps: int, trial_batch: int) -> Dict[str, Any]:
    """Run a plan list through the trial-batched tensor executor.

    Chunks the plans into ``trial_batch``-sized
    :func:`repro.gpu.tensor.run_trials` sweeps and classifies each trial
    with the same tally as the scalar loop.  Trials the batched executor
    flags ``fallback`` (cross-trial divergent barrier arrival, or a
    batch that died at union level) rerun through the scalar oracle with
    a fresh state, so the returned counts are exactly what the scalar
    loop would have produced — the batched path is an optimization, not
    an approximation.
    """
    from repro.gpu.tensor import run_trials

    counts = _empty_counts()
    trials = 0
    successes = 0
    fallbacks = 0
    fallback_reasons: Dict[str, int] = {}
    # Swap schemes are immutable after construction (per-trial state
    # lives in ResilienceState/TaintTracker), so one codec instance
    # serves every trial — constructing one per trial would dominate
    # the batched runtime.
    shared_scheme = fresh_state(None).scheme
    for start in range(0, len(plans), max(1, trial_batch)):
        chunk = plans[start:start + max(1, trial_batch)]
        states = [fresh_state(plan, shared_scheme) for plan in chunk]
        result = run_trials(kernel, launch, instance.memory.words, states,
                            max_steps=max_steps)
        for index, plan in enumerate(chunk):
            outcome = result.outcomes[index]
            state = result.states[index]
            if outcome == "fallback":
                fallbacks += 1
                reasons = getattr(result, "fallback_reasons", None) or []
                reason = (reasons[index] if index < len(reasons)
                          else None) or "unattributed"
                fallback_reasons[reason] = \
                    fallback_reasons.get(reason, 0) + 1
                state = fresh_state(plan)
                outcome, memory = _scalar_gpu_trial(
                    kernel, launch, instance, state, max_steps)
                verify = (lambda memory=memory:
                          instance.verify(memory))
            else:
                verify = (lambda index=index:
                          instance.verify(result.memory.space_of(index)))
            t_inc, s_inc = _tally_gpu_outcome(counts, state, outcome,
                                              verify)
            trials += t_inc
            successes += s_inc
    payload: Dict[str, Any] = {"executor": "tensor",
                               "fallbacks": fallbacks}
    if fallback_reasons:
        # Per-cause attribution (divergent_barrier / union_error /
        # union_deadlock) so campaign reports show *why* the batched
        # path punted trials to the scalar oracle.
        payload["fallback_reasons"] = dict(sorted(
            fallback_reasons.items()))
    return {"trials": trials, "successes": successes, "counts": counts,
            "payload": payload}


def run_gpu_batch(params: Dict[str, Any], context: Any,
                  batch: BatchSpec) -> Dict[str, Any]:
    """One batch of a GPU-level FaultPlan sweep over a workload kernel.

    Each trial injects one random single-bit datapath transient
    (:class:`~repro.gpu.resilience.FaultPlan`) into a fresh run and
    classifies the outcome; the monitored proportion is the detection
    rate (DUE + trap + crash) among architecturally visible faults.
    With ``recovery_attempts > 1`` every detection is additionally
    re-executed from the checkpoint image to confirm containment
    (tallied under ``recovered``).

    By default the batch runs through the trial-batched tensor executor
    (:mod:`repro.gpu.tensor`), ``trial_batch`` plans per sweep;
    ``tensor=False`` forces the scalar per-trial loop.  Both paths draw
    identical fault plans from the batch seed and bin identically —
    pinned by the equivalence tests in ``tests/gpu/test_tensor.py``.
    Recovery confirmation (``recovery_attempts > 1``) always takes the
    scalar path.
    """
    from repro.compiler import compile_for_scheme, resilience_mode
    from repro.gpu.device import run_functional
    from repro.gpu.recovery import run_with_recovery
    from repro.gpu.resilience import FaultPlan, ResilienceState
    from repro.workloads import get_workload

    instance = context.get("instance") if isinstance(context, dict) else None
    if instance is None:
        instance = get_workload(params["workload"]).build(
            scale=params.get("scale", 0.25),
            seed=params.get("build_seed", 1))
    scheme = params.get("compile_scheme", "swap-ecc")
    compiled = compile_for_scheme(instance.kernel, instance.launch, scheme)
    launch = compiled.adjust_launch(instance.launch)
    mode = resilience_mode(scheme)
    code = params.get("code", "secded-dp")
    recovery_attempts = params.get("recovery_attempts", 0)
    occurrence_max = params.get("occurrence_max", 60)
    where = params.get("where", "result")
    max_steps = params.get("max_steps", 50_000_000)

    rng = random.Random(batch.seed)
    plans = [FaultPlan(
        cta_index=rng.randrange(instance.launch.grid_ctas),
        warp_index=rng.randrange(instance.launch.warps_per_cta),
        occurrence=rng.randrange(occurrence_max),
        lane=rng.randrange(min(32, instance.launch.threads_per_cta)),
        bit=rng.randrange(32), where=where)
        for _ in range(batch.size)]

    def fresh_state(fault: Optional[FaultPlan],
                    scheme_instance: Any = None) -> ResilienceState:
        if mode != "swap":
            scheme_instance = None
        elif scheme_instance is None:
            scheme_instance = make_scheme(code)
        return ResilienceState(mode=mode, scheme=scheme_instance,
                               fault=fault)

    if params.get("tensor", True) and recovery_attempts <= 1:
        return _run_trials_tensor(
            instance, compiled.kernel, launch, plans, fresh_state,
            max_steps, params.get("trial_batch", 2048))

    counts = _empty_counts()
    trials = 0
    successes = 0
    for plan in plans:
        state = fresh_state(plan)
        memory = instance.fresh_memory()
        try:
            run_functional(compiled.kernel, launch, memory, state,
                           max_steps=max_steps)
        except HangError:
            counts["hang"] += 1
            trials += 1
            successes += 1
            continue
        except SimulationError:
            counts["crash"] += 1
            trials += 1
            successes += 1
            continue
        if state.detected:
            kind = "trap" if any(event.kind == "trap"
                                 for event in state.events) else "due"
            counts[kind] += 1
            trials += 1
            successes += 1
            if recovery_attempts > 1:
                struck = [plan]
                outcome = run_with_recovery(
                    compiled.kernel, launch, instance.memory,
                    lambda: fresh_state(struck.pop() if struck else None),
                    max_attempts=recovery_attempts)
                if instance.verify(outcome.memory):
                    counts["recovered"] += 1
        elif not state.fault_fired:
            counts["not_hit"] += 1
        elif instance.verify(memory):
            if any(event.kind == "corrected" for event in state.events):
                counts["corrected_in_place"] += 1
            counts["masked"] += 1
            trials += 1
        else:
            counts["sdc"] += 1
            trials += 1
    return {"trials": trials, "successes": successes, "counts": counts}


def run_gpu_recovery_batch(params: Dict[str, Any], context: Any,
                           batch: BatchSpec) -> Dict[str, Any]:
    """One batch of end-to-end recovery-ladder trials over a workload.

    Each trial injects one :class:`~repro.gpu.resilience.FaultPlan`
    (datapath ``result`` or register-file ``storage`` strike, per
    ``where``) and runs the kernel under
    :func:`~repro.gpu.recovery.run_with_ladder` with a
    :class:`~repro.gpu.recovery.ContainmentAuditor` attached.  Trials
    tally into mutually exclusive bins — ``not_hit`` / ``masked`` /
    ``corrected_in_place`` / ``cta_replayed`` / ``kernel_replayed`` /
    ``due`` / ``hang`` / ``sdc`` — and the monitored proportion is
    *recovery coverage*: the fraction of architecturally visible faults
    that end with verified-correct memory.  ``persistent=True`` re-arms
    the fault on every replay (a stuck-at cell), which must exhaust the
    ladder and surface a DUE rather than loop.  A containment violation
    raises, crashing the batch: detected errors leaking to DRAM is a
    campaign-stopping correctness failure, not an outcome bin.
    """
    from repro.compiler import compile_for_scheme, resilience_mode
    from repro.gpu.recovery import (ContainmentAuditor, LadderConfig,
                                    run_with_ladder)
    from repro.gpu.resilience import FaultPlan, ResilienceState
    from repro.gpu.watchdog import WatchdogConfig
    from repro.workloads import get_workload

    instance = context.get("instance") if isinstance(context, dict) else None
    if instance is None:
        instance = get_workload(params["workload"]).build(
            scale=params.get("scale", 0.25),
            seed=params.get("build_seed", 1))
    tamper = params.get("tamper")
    if tamper is not None:
        # a deliberately mis-scheduled pass (repro.compiler.tamper):
        # how the acceptance tests prove the auditor catches late checks
        from repro.compiler.tamper import compile_tampered
        compiled = compile_tampered(instance.kernel, tamper)
        mode = params.get("mode", "swdup")
        scheme = None
    else:
        scheme = params.get("compile_scheme", "swap-ecc")
        compiled = compile_for_scheme(instance.kernel, instance.launch,
                                      scheme)
        mode = resilience_mode(scheme)
    launch = compiled.adjust_launch(instance.launch)
    code = params.get("code", "secded-dp")
    where = params.get("where", "result")
    persistent = params.get("persistent", False)
    occurrence_max = params.get("occurrence_max", 60)
    ladder = LadderConfig(
        max_cta_replays=params.get("max_cta_replays", 1),
        max_kernel_replays=params.get("max_kernel_replays", 2),
        watchdog=WatchdogConfig(
            max_steps=params.get("max_steps", 2_000_000),
            max_warp_steps=params.get("max_warp_steps")))

    rng = random.Random(batch.seed)
    counts = _empty_counts()
    trials = 0
    successes = 0
    replayed_instructions = 0
    total_instructions = 0
    detections = 0
    audits = 0
    for trial_index in range(batch.size):
        plan = FaultPlan(
            cta_index=rng.randrange(instance.launch.grid_ctas),
            warp_index=rng.randrange(instance.launch.warps_per_cta),
            occurrence=rng.randrange(occurrence_max),
            lane=rng.randrange(min(32, instance.launch.threads_per_cta)),
            bit=rng.randrange(32), where=where)
        armed = [plan] if not persistent else None

        def make_state() -> ResilienceState:
            if persistent:
                fault = plan  # a stuck-at cell strikes every attempt
            else:
                fault = armed.pop() if armed else None
            return ResilienceState(
                mode=mode,
                scheme=make_scheme(code) if mode == "swap" else None,
                fault=fault)

        auditor = ContainmentAuditor(compiled.kernel, launch)
        try:
            report = run_with_ladder(compiled.kernel, launch,
                                     instance.memory, make_state,
                                     config=ladder, auditor=auditor)
        except ContainmentViolation as exc:
            # enrich the auditor's diagnosis with the exact trial inputs
            # so the engine-side capture hook can export a bundle that
            # replays this one strike from the manifest alone
            context = dict(getattr(exc, "context", {}) or {})
            context.update({
                "seed": batch.seed, "batch": batch.index,
                "trial": trial_index, "plan": plan.to_dict()})
            if isinstance(params.get("workload"), str):
                context["workload"] = params["workload"]
            raise ContainmentViolation(str(exc), context=context) from exc
        total_instructions += report.total_instructions
        replayed_instructions += report.replayed_instructions
        detections += report.detections
        audits += report.audits
        if report.faults_fired == 0:
            counts["not_hit"] += 1
            continue
        trials += 1
        if report.succeeded:
            correct = instance.verify(report.memory)
            if not correct:
                counts["sdc"] += 1
                continue
            successes += 1
            bins = {"ok": "masked", "corrected": "corrected_in_place",
                    "cta_replayed": "cta_replayed",
                    "kernel_replayed": "kernel_replayed"}
            counts[bins[report.outcome]] += 1
        else:
            counts[report.outcome] += 1
    return {"trials": trials, "successes": successes, "counts": counts,
            "payload": {"replayed_instructions": replayed_instructions,
                        "total_instructions": total_instructions,
                        "detections": detections, "audits": audits,
                        "violations": 0}}


def run_certify_batch(params: Dict[str, Any], context: Any,
                      batch: BatchSpec) -> Dict[str, Any]:
    """One guarantee-certification sweep as a campaign work unit.

    Runs :func:`repro.certify.certify_scheme` (or certifies a prebuilt
    scheme passed via ``context["scheme"]`` — how the tamper tests push a
    known-broken code through the engine) and folds the claim sweep into
    the campaign taxonomy: every claim check that held tallies under
    ``masked`` (the strike was contained as promised) and every violated
    check under ``sdc`` (a broken guarantee is a silent-corruption
    escape, not a detected one).  The monitored proportion is therefore
    the claim-check pass rate — 1.0 for a certified scheme — and the full
    certificate dict rides along as the batch payload so journals and
    artifacts retain verdicts, swept spaces, and counterexamples.
    """
    from repro.certify import Certifier, certify_scheme
    mode = params.get("mode", "fast")
    only = params.get("claims")  # claim subset: incremental recert sweep
    prebuilt = context.get("scheme") if isinstance(context, dict) else None
    if prebuilt is None and params.get("tamper") is not None:
        # a JSON tamper spec survives the journal (unlike a prebuilt
        # scheme object), so tampered certification units resume and
        # export as repro bundles like any other
        from repro.certify.tamper import build_tampered_scheme
        prebuilt = build_tampered_scheme(params["tamper"])
    if prebuilt is not None:
        certificate = Certifier(mode=mode, seed=batch.seed).certify(
            prebuilt, name=params.get("scheme"), only=only)
    else:
        certificate = certify_scheme(params["scheme"], mode=mode,
                                     seed=batch.seed, only=only)
    counts = _empty_counts()
    trials = 0
    violations = 0
    for report in certificate.claims.values():
        trials += report.swept
        violations += report.violations
    counts["sdc"] = violations
    counts["masked"] = trials - violations
    return {"trials": trials, "successes": trials - violations,
            "counts": counts, "payload": certificate.to_dict()}


def run_mbu_sweep_batch(params: Dict[str, Any], context: Any,
                        batch: BatchSpec) -> Dict[str, Any]:
    """One batch of multi-bit-upset trials at a fixed strike multiplicity.

    The MBU analogue of :func:`run_gpu_batch`: each trial injects one
    :class:`~repro.gpu.resilience.FaultPlan` whose strike is
    ``multiplicity`` bits wide — contiguous when ``pattern`` is
    ``"burst"``, independently drawn when ``"random"`` — optionally
    correlated across ``lane_spread`` adjacent-drawn lanes of the struck
    warp (the row/column MBU shape).  Outcomes classify exactly as in
    the single-bit sweep, so the monitored proportion is the detection
    rate among architecturally visible faults and its degradation from
    multiplicity 1 upward is directly comparable.  Like the single-bit
    sweep, trials run through the trial-batched tensor executor by
    default (``tensor=False`` pins the scalar loop; counts identical).
    """
    from repro.compiler import compile_for_scheme, resilience_mode
    from repro.gpu.device import run_functional
    from repro.gpu.resilience import FaultPlan, ResilienceState
    from repro.workloads import get_workload

    multiplicity = params.get("multiplicity", 1)
    if not isinstance(multiplicity, int) or not 1 <= multiplicity <= 32:
        raise InjectionError(
            f"multiplicity must be an int in [1, 32], got {multiplicity!r}")
    pattern = params.get("pattern", "random")
    if pattern not in ("random", "burst"):
        raise InjectionError(
            f"pattern must be 'random' or 'burst', got {pattern!r}")
    lane_spread = params.get("lane_spread", 1)
    instance = context.get("instance") if isinstance(context, dict) else None
    if instance is None:
        instance = get_workload(params["workload"]).build(
            scale=params.get("scale", 0.25),
            seed=params.get("build_seed", 1))
    scheme = params.get("compile_scheme", "swap-ecc")
    compiled = compile_for_scheme(instance.kernel, instance.launch, scheme)
    launch = compiled.adjust_launch(instance.launch)
    mode = resilience_mode(scheme)
    code = params.get("code", "secded-dp")
    occurrence_max = params.get("occurrence_max", 60)
    where = params.get("where", "storage")
    max_steps = params.get("max_steps", 50_000_000)
    lane_count = min(32, instance.launch.threads_per_cta)
    if not isinstance(lane_spread, int) \
            or not 1 <= lane_spread <= lane_count:
        raise InjectionError(
            f"lane_spread must be an int in [1, {lane_count}], "
            f"got {lane_spread!r}")

    rng = random.Random(batch.seed)
    plans = []
    for _ in range(batch.size):
        if pattern == "burst":
            start = rng.randrange(33 - multiplicity)
            bits = tuple(range(start, start + multiplicity))
        else:
            bits = tuple(sorted(rng.sample(range(32), multiplicity)))
        lanes = tuple(sorted(rng.sample(range(lane_count), lane_spread)))
        plans.append(FaultPlan(
            cta_index=rng.randrange(instance.launch.grid_ctas),
            warp_index=rng.randrange(instance.launch.warps_per_cta),
            occurrence=rng.randrange(occurrence_max),
            lane=lanes[0], bit=bits[0], bits=bits, lanes=lanes,
            where=where))

    def fresh_state(fault: Optional[FaultPlan],
                    scheme_instance: Any = None) -> ResilienceState:
        if mode != "swap":
            scheme_instance = None
        elif scheme_instance is None:
            scheme_instance = make_scheme(code)
        return ResilienceState(mode=mode, scheme=scheme_instance,
                               fault=fault)

    payload = {"multiplicity": multiplicity, "pattern": pattern,
               "lane_spread": lane_spread, "where": where}
    if params.get("tensor", True):
        report = _run_trials_tensor(
            instance, compiled.kernel, launch, plans, fresh_state,
            max_steps, params.get("trial_batch", 2048))
        report["payload"].update(payload)
        return report

    counts = _empty_counts()
    trials = 0
    successes = 0
    for plan in plans:
        state = fresh_state(plan)
        memory = instance.fresh_memory()
        try:
            run_functional(compiled.kernel, launch, memory, state,
                           max_steps=max_steps)
        except HangError:
            counts["hang"] += 1
            trials += 1
            successes += 1
            continue
        except SimulationError:
            counts["crash"] += 1
            trials += 1
            successes += 1
            continue
        if state.detected:
            kind = "trap" if any(event.kind == "trap"
                                 for event in state.events) else "due"
            counts[kind] += 1
            trials += 1
            successes += 1
        elif not state.fault_fired:
            counts["not_hit"] += 1
        elif instance.verify(memory):
            if any(event.kind == "corrected" for event in state.events):
                counts["corrected_in_place"] += 1
            counts["masked"] += 1
            trials += 1
        else:
            counts["sdc"] += 1
            trials += 1
    return {"trials": trials, "successes": successes, "counts": counts,
            "payload": payload}


register_unit_kind("gate", run_gate_batch)
register_unit_kind("gpu", run_gpu_batch)
register_unit_kind("gpu-recovery", run_gpu_recovery_batch)
register_unit_kind("certify", run_certify_batch)
register_unit_kind("mbu-sweep", run_mbu_sweep_batch)


def gate_work_unit(name: str, site_count: Optional[int] = 300,
                   seed: int = 0, scheme: Optional[str] = None,
                   trace: Any = None,
                   unit_id: Optional[str] = None) -> WorkUnit:
    """A gate-level campaign work unit for one Figure 10 arithmetic unit."""
    params: Dict[str, Any] = {"unit": name, "site_count": site_count,
                              "seed": seed}
    if scheme is not None:
        params["scheme"] = scheme
    return WorkUnit(unit_id=unit_id or name, kind="gate", params=params,
                    context={"trace": trace} if trace is not None else None)


def gpu_work_unit(workload: str, compile_scheme: str = "swap-ecc",
                  scale: float = 0.25, build_seed: int = 1, seed: int = 0,
                  code: str = "secded-dp", occurrence_max: int = 60,
                  recovery_attempts: int = 0, where: str = "result",
                  tensor: bool = True, trial_batch: int = 2048,
                  unit_id: Optional[str] = None) -> WorkUnit:
    """A GPU-level FaultPlan sweep work unit over one workload kernel.

    ``tensor`` selects the trial-batched executor (``trial_batch``
    plans per sweep); ``tensor=False`` pins the scalar per-trial loop.
    Counts are identical either way — see :func:`run_gpu_batch`.
    """
    params = {"workload": workload, "compile_scheme": compile_scheme,
              "scale": scale, "build_seed": build_seed, "seed": seed,
              "code": code, "occurrence_max": occurrence_max,
              "recovery_attempts": recovery_attempts, "where": where,
              "tensor": tensor, "trial_batch": trial_batch}
    return WorkUnit(unit_id=unit_id or f"{workload}/{compile_scheme}",
                    kind="gpu", params=params)


def gpu_recovery_work_unit(workload: str, compile_scheme: str = "swap-ecc",
                           scale: float = 0.25, build_seed: int = 1,
                           seed: int = 0, code: str = "secded-dp",
                           where: str = "result", persistent: bool = False,
                           occurrence_max: int = 60,
                           max_cta_replays: int = 1,
                           max_kernel_replays: int = 2,
                           max_steps: int = 2_000_000,
                           max_warp_steps: Optional[int] = None,
                           unit_id: Optional[str] = None) -> WorkUnit:
    """A recovery-ladder sweep work unit (see :func:`run_gpu_recovery_batch`).

    ``where`` picks the strike site (``"result"`` pipeline faults vs
    ``"storage"`` register-file upsets), ``persistent`` re-arms the fault
    on every replay to model a stuck-at cell.
    """
    params = {"workload": workload, "compile_scheme": compile_scheme,
              "scale": scale, "build_seed": build_seed, "seed": seed,
              "code": code, "where": where, "persistent": persistent,
              "occurrence_max": occurrence_max,
              "max_cta_replays": max_cta_replays,
              "max_kernel_replays": max_kernel_replays,
              "max_steps": max_steps, "max_warp_steps": max_warp_steps}
    return WorkUnit(
        unit_id=unit_id or f"{workload}/{code}/{where}",
        kind="gpu-recovery", params=params)


def certify_work_unit(scheme: str, mode: str = "fast", seed: int = 0,
                      scheme_instance: Any = None,
                      claims: Optional[Sequence[str]] = None,
                      unit_id: Optional[str] = None) -> WorkUnit:
    """A guarantee-certification work unit (see :func:`run_certify_batch`).

    ``scheme_instance`` overrides the registry lookup with a prebuilt
    :class:`~repro.ecc.swap.SwapScheme` — the route for certifying
    tampered schemes through the engine; it rides in ``context`` so the
    journaled params stay JSON-serializable.  ``claims`` restricts the
    sweep to a claim subset — the partial unit the certificate store's
    incremental recertification launches; the subset is journaled in
    ``params`` so a resumed partial sweep re-checks the same claims.
    """
    params = {"scheme": scheme, "mode": mode, "seed": seed}
    suffix = ""
    if claims is not None:
        params["claims"] = sorted(claims)
        suffix = f"/claims-{len(params['claims'])}"
    context = {"scheme": scheme_instance} \
        if scheme_instance is not None else None
    return WorkUnit(unit_id=unit_id or f"certify/{scheme}/{mode}{suffix}",
                    kind="certify", params=params, context=context)


def mbu_sweep_work_unit(workload: str, multiplicity: int,
                        compile_scheme: str = "swap-ecc",
                        scale: float = 0.25, build_seed: int = 1,
                        seed: int = 0, code: str = "secded-dp",
                        occurrence_max: int = 60, where: str = "storage",
                        pattern: str = "random", lane_spread: int = 1,
                        tensor: bool = True, trial_batch: int = 2048,
                        unit_id: Optional[str] = None) -> WorkUnit:
    """A multi-bit-upset sweep unit (see :func:`run_mbu_sweep_batch`)."""
    params = {"workload": workload, "multiplicity": multiplicity,
              "compile_scheme": compile_scheme, "scale": scale,
              "build_seed": build_seed, "seed": seed, "code": code,
              "occurrence_max": occurrence_max, "where": where,
              "pattern": pattern, "lane_spread": lane_spread,
              "tensor": tensor, "trial_batch": trial_batch}
    return WorkUnit(
        unit_id=unit_id or f"{workload}/{code}/m{multiplicity}",
        kind="mbu-sweep", params=params)


# ---------------------------------------------------------------------------
# crash-isolated execution

#: spacing between batch seeds so batch 0 reproduces the legacy
#: single-shot campaign exactly while later batches stay uncorrelated
_BATCH_SEED_STRIDE = 1000003


def _batch_seed(params: Dict[str, Any], index: int) -> int:
    return params.get("seed", 0) + index * _BATCH_SEED_STRIDE


#: spacing between *shard* seed bases — wide enough that every batch
#: seed a shard can derive (``max_batches`` strides of
#: ``_BATCH_SEED_STRIDE``) stays disjoint from its neighbors'
SHARD_SEED_STRIDE = _BATCH_SEED_STRIDE * 4096


def shard_unit_id(unit_id: str, shard_index: int) -> str:
    """The shard-aware id of ``unit_id``'s clone on shard ``shard_index``."""
    return f"{unit_id}@s{shard_index}"


def shard_work_unit(unit: WorkUnit, shard_index: int, shard_count: int,
                    stride: int = SHARD_SEED_STRIDE) -> WorkUnit:
    """Clone ``unit`` for one shard of a fleet-wide scale-out sweep.

    The clone gets a shard-aware unit id (``<id>@s<k>``) and a seed base
    offset by ``shard_index * stride``, so the fleet samples ``shard_count``
    disjoint deterministic seed ranges of the same campaign — the shape
    the fabric's *global* Wilson early-stop estimates over.
    """
    if not 0 <= shard_index < shard_count:
        raise InjectionError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}")
    params = dict(unit.params)
    params["seed"] = params.get("seed", 0) + shard_index * stride
    return WorkUnit(unit_id=shard_unit_id(unit.unit_id, shard_index),
                    kind=unit.kind, params=params, context=unit.context)


def _retry_delay(config: "EngineConfig", seed: int, attempts: int) -> float:
    """Capped exponential backoff with deterministic seed-derived jitter.

    The exponential curve saturates at ``backoff_max_s`` (unbounded
    growth once stalled whole campaigns for hours on flaky hosts), and
    the jitter fraction is drawn from a PRNG keyed on the batch seed —
    itself a pure function of the unit seed — so sharded re-executions
    of the same unit desynchronize their retry storms identically on
    every replay.
    """
    capped = min(config.backoff_s * (2 ** (attempts - 1)),
                 config.backoff_max_s)
    fraction = random.Random(seed * 1000003 + attempts).random()
    return capped * (0.5 + 0.5 * fraction)


def _heartbeat_loop(conn, interval: float) -> None:
    """Daemon thread in the worker: beat until the process dies."""
    try:
        while True:
            conn.send_bytes(b".")
            time.sleep(interval)
    except Exception:  # parent went away or pipe closed: just stop
        pass


def _failure(exc: BaseException) -> Dict[str, Any]:
    """The JSON-serializable failure description shipped to the engine.

    :class:`~repro.errors.ReproError` failures additionally carry their
    full typed record (code, severity, recoverable, context), so the
    engine-side bundle capture and quarantine dead-letters keep the
    structured diagnosis, not just the formatted message.
    """
    failure: Dict[str, Any] = {
        "message": f"{type(exc).__name__}: {exc}",
        "traceback": _traceback.format_exc()}
    if isinstance(exc, ReproError):
        failure["error"] = exc.to_record()
    return failure


def _worker_entry(runner, params, context, batch, queue, budget=None,
                  heartbeat=None) -> None:
    """Subprocess entry: apply the budget, run one batch, ship the result.

    Budget trips — ``MemoryError`` from the address-space cap,
    :class:`~repro.errors.ResourceExhausted` from the CPU cap's SIGXCPU
    handler — are reported as the distinct ``resource_exhausted``
    outcome; everything else stays a generic ``error``.
    """
    try:
        if budget is not None:
            budget.apply()
        if heartbeat is not None:
            threading.Thread(
                target=_heartbeat_loop,
                args=(heartbeat, budget.heartbeat_interval_s),
                daemon=True).start()
        queue.put(("ok", runner(params, context, batch)))
    except (MemoryError, ResourceExhausted) as exc:
        try:
            queue.put(("resource_exhausted", _failure(exc)))
        except Exception:
            os._exit(71)
    except BaseException as exc:  # noqa: BLE001 — isolation boundary
        try:
            queue.put(("error", _failure(exc)))
        except Exception:
            os._exit(70)


def _failure_detail(payload: Any) -> str:
    """Human-readable one-liner for a failure payload (dict or string)."""
    if isinstance(payload, dict):
        return str(payload.get("message", payload))
    return str(payload)


def _failure_traceback(payload: Any) -> str:
    if isinstance(payload, dict):
        return str(payload.get("traceback", ""))
    return ""


def _drain_beats(conn, last_beat: float, now: float) -> float:
    """Consume queued heartbeats; returns the newest beat timestamp."""
    try:
        while conn.poll(0):
            conn.recv_bytes()
            last_beat = now
    except (EOFError, OSError):
        pass  # worker exited; the liveness poll below settles it
    return last_beat


#: how a terminal batch failure lands in the outcome tally / unit status
_FAILURE_BINS = {"hung": "hang", "resource_exhausted": "resource_exhausted"}
_FAILURE_STATUS = {"hung": "hung",
                   "resource_exhausted": "resource_exhausted"}


class CampaignEngine:
    """Runs work units to completion with isolation, retry, and resume.

    An optional :class:`~repro.inject.supervisor.CampaignSupervisor`
    adds resource-governed workers, poison-unit quarantine, and
    signal-safe drains; without one the engine behaves exactly as in
    PR 1 (first failed batch ends the unit, signals kill the process).
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 supervisor: Any = None,
                 drain_hook: Optional[Callable[[], Optional[str]]] = None):
        self.config = config if config is not None else EngineConfig()
        self.supervisor = supervisor
        #: the fabric's drain *broadcast* hook: polled at every safe
        #: point, a non-empty return value (the drain reason — e.g. the
        #: coordinator's global early-stop verdict) drains this engine
        #: exactly like a supervised signal would
        self.drain_hook = drain_hook
        self._hook_reason = ""

    # -- public API --------------------------------------------------------

    def run(self, units: Sequence[WorkUnit],
            journal_path: Optional[str] = None,
            journal_header: Optional[Dict[str, Any]] = None
            ) -> CampaignReport:
        """Run ``units`` in order, journaling to ``journal_path``.

        With a journal path, a prior journal at that path is replayed
        first: units it records as done are skipped (their reports are
        reconstructed from the journal), quarantined units stay
        dead-lettered, and partially-swept units resume after their
        last completed batch.  A drain request (supervised SIGTERM/
        SIGINT) stops the campaign at the next safe point, journals
        ``campaign_paused``, and returns a report with ``paused=True``.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise InjectionError(f"duplicate unit ids in campaign: {ids}")
        state = JournalState.load(journal_path,
                                  salvage=self.config.salvage) \
            if journal_path else JournalState()
        self._check_config(state)
        journal = Journal(journal_path, fsync=self.config.journal_fsync,
                          salvage=self.config.salvage,
                          header=journal_header) \
            if journal_path else NullJournal()
        if journal_path and state.config is None:
            journal.append({"type": "config",
                            "config": self.config.to_dict()})
        reports: Dict[str, UnitReport] = {}
        paused = False
        in_flight: Optional[str] = None
        pending: List[str] = []
        try:
            for position, unit in enumerate(units):
                if self._draining():
                    paused = True
                    pending = [u.unit_id for u in units[position:]]
                    break
                if unit.unit_id in state.finished:
                    state.check_params(unit.unit_id, unit.params)
                    reports[unit.unit_id] = self._replay_unit(unit, state)
                    continue
                report = self._run_unit(unit, state, journal)
                reports[unit.unit_id] = report
                if report.status == "paused":
                    paused = True
                    in_flight = unit.unit_id
                    pending = [u.unit_id for u in units[position + 1:]]
                    break
            if paused:
                journal.campaign_paused(self._drain_reason(), in_flight,
                                        pending)
        finally:
            journal.close()
        salvage_events = list(state.salvage_events)
        if journal.salvage_event is not None:
            salvage_events.append(journal.salvage_event)
        return CampaignReport(units=reports, journal_path=journal_path,
                              paused=paused,
                              drain_reason=self._drain_reason(),
                              pending=pending,
                              salvage_events=salvage_events)

    # -- supervisor plumbing -----------------------------------------------

    def _draining(self) -> bool:
        if self.drain_hook is not None and not self._hook_reason:
            reason = self.drain_hook()
            if reason:
                self._hook_reason = reason
                if self.supervisor is not None:
                    self.supervisor.request_drain(reason)
        if self._hook_reason:
            return True
        return self.supervisor is not None and self.supervisor.draining

    def _drain_reason(self) -> str:
        if not self._draining():
            return ""
        if self.supervisor is not None and self.supervisor.draining:
            return self.supervisor.drain_reason
        return self._hook_reason

    def _quarantine_after(self) -> Optional[int]:
        if self.supervisor is None:
            return None
        return self.supervisor.config.quarantine_after

    def _budget(self):
        if self.supervisor is None:
            return None
        return self.supervisor.config.budget

    #: config fields that shape the statistics a journal accumulates;
    #: operational knobs (timeouts, retries, isolation) may change freely
    #: between resumptions
    _STATISTICAL_KNOBS = ("batch_size", "max_batches", "ci_half_width",
                          "min_trials", "z")

    def _check_config(self, state: JournalState) -> None:
        """Refuse to resume a journal swept under a different design."""
        if state.config is None:
            return
        current = self.config.to_dict()
        for knob in self._STATISTICAL_KNOBS:
            if knob in state.config and state.config[knob] != current[knob]:
                raise InjectionError(
                    f"journal {state.path!r} was recorded with "
                    f"{knob}={state.config[knob]!r} but this run uses "
                    f"{knob}={current[knob]!r}; use a fresh journal path "
                    f"for a reconfigured campaign")

    # -- unit execution ----------------------------------------------------

    def _replay_unit(self, unit: WorkUnit,
                     state: JournalState) -> UnitReport:
        """Rebuild a finished unit's report from its journal records.

        Quarantined units replay with their dead-letter record's
        captured failures, so resumed campaigns still report the
        tracebacks that condemned them.
        """
        done = state.finished[unit.unit_id]
        summary = done.get("summary", {})
        counts = _empty_counts()
        counts.update(summary.get("counts", {}))
        trials = summary.get("trials", 0)
        successes = summary.get("successes", 0)
        payloads = [record["payload"]
                    for record in state.batches.get(unit.unit_id, [])
                    if "payload" in record]
        return UnitReport(
            unit_id=unit.unit_id, kind=unit.kind, status=done["status"],
            counts=counts, trials=trials, successes=successes,
            batches=summary.get("batches", 0),
            retries=summary.get("retries", 0),
            stopped_early=summary.get("stopped_early", False),
            resumed=True,
            estimate=wilson_interval(successes, trials, self.config.z),
            detail=summary.get("detail", ""), payloads=payloads,
            failures=done.get("failures", []))

    def _run_unit(self, unit: WorkUnit, state: JournalState,
                  journal: Journal) -> UnitReport:
        if unit.kind not in _RUNNERS:
            raise InjectionError(
                f"unknown unit kind {unit.kind!r}; registered: "
                f"{sorted(_RUNNERS)}")
        runner = _RUNNERS[unit.kind]
        config = self.config
        state.check_params(unit.unit_id, unit.params)
        if unit.unit_id not in state.started:
            journal.unit_started(unit.unit_id, unit.kind, unit.params)

        counts = _empty_counts()
        trials = 0
        successes = 0
        retries = 0
        payloads: List[Dict[str, Any]] = []
        resumed = False
        for record in state.batches.get(unit.unit_id, []):
            resumed = True
            trials += record["trials"]
            successes += record["successes"]
            for outcome, count in record["counts"].items():
                counts[outcome] = counts.get(outcome, 0) + count
            if "payload" in record:
                payloads.append(record["payload"])
        batches_done = state.next_batch_index(unit.unit_id)

        quarantine_after = self._quarantine_after()
        status = "completed"
        detail = ""
        stopped_early = False
        streak = 0  # consecutive failed attempts, reset by any success
        failure_log: List[Dict[str, Any]] = []
        while batches_done < config.max_batches:
            if self._draining():
                status = "paused"
                break
            if self._interval_tight_enough(successes, trials):
                stopped_early = True
                break
            batch = BatchSpec(index=batches_done, size=config.batch_size,
                              seed=_batch_seed(unit.params, batches_done))
            attempt_budget = None if quarantine_after is None else \
                max(1, quarantine_after - streak)
            outcome, payload, attempts, failures = \
                self._run_batch_with_retry(runner, unit, batch,
                                           attempt_budget)
            retries += attempts - 1
            failure_log.extend(failures)
            if outcome == "paused":
                status = "paused"
                break
            if outcome == "ok":
                streak = 0
                counts_in = payload.get("counts", {})
                for key, count in counts_in.items():
                    counts[key] = counts.get(key, 0) + count
                trials += payload["trials"]
                successes += payload["successes"]
                journal.batch(unit.unit_id, batch.index, payload["trials"],
                              payload["successes"], counts_in, attempts,
                              payload.get("payload"))
                if payload.get("payload") is not None:
                    payloads.append(payload["payload"])
                    self._capture_certificate(unit, batch,
                                              payload["payload"])
                batches_done += 1
                continue
            # every attempt of this batch failed
            streak += len(failures)
            if quarantine_after is not None and streak < quarantine_after:
                continue  # supervised: re-attempt the same batch index
            detail = _failure_detail(payload)
            counts[_FAILURE_BINS.get(outcome, "crash")] += 1
            if quarantine_after is not None:
                status = "quarantined"
            else:
                status = _FAILURE_STATUS.get(outcome, "crashed")
            break

        report = UnitReport(
            unit_id=unit.unit_id, kind=unit.kind, status=status,
            counts=counts, trials=trials, successes=successes,
            batches=batches_done, retries=retries,
            stopped_early=stopped_early, resumed=resumed,
            estimate=wilson_interval(successes, trials, config.z),
            detail=detail, payloads=payloads, failures=failure_log)
        if status == "paused":
            pass  # no terminal record: a resume finishes the sweep
        elif status == "quarantined":
            journal.unit_quarantined(unit.unit_id, report.summary(),
                                     failure_log)
        else:
            journal.unit_done(unit.unit_id, status, report.summary())
        if report.failed and status != "paused":
            out_dir = self.config.bundle_dir
            point = f"engine.{status}"
            if status == "quarantined" and self.supervisor is not None \
                    and self.supervisor.config.bundle_dir is not None:
                out_dir = self.supervisor.config.bundle_dir
                point = "supervisor.quarantine"
            self._capture_failure_bundle(unit, batch, status, failure_log,
                                         state, out_dir, point)
        return report

    def _capture_certificate(self, unit: WorkUnit, batch: BatchSpec,
                             payload: Any) -> None:
        """Export a repro bundle for a FAILED certificate (best-effort).

        A violated guarantee never crashes the batch — the certificate
        rides along as an ordinary payload — so the capture hook watches
        completed certify batches rather than the failure path.
        """
        if self.config.bundle_dir is None or unit.kind != "certify":
            return
        if not isinstance(payload, dict) or payload.get("passed", True):
            return
        try:
            from repro.bundle import capture_bundle, certificate_outcome
            from repro.errors import ClaimViolation
            outcome = certificate_outcome(payload)
            error = ClaimViolation(outcome["message"],
                                   context=outcome["context"])
            trial: Dict[str, Any] = {
                "kind": "certify",
                "scheme": unit.params.get("scheme"),
                "mode": unit.params.get("mode", "fast"),
                "seed": batch.seed,
                "certificate_schema": payload.get("version"),
            }
            if unit.params.get("tamper") is not None:
                trial["tamper"] = unit.params["tamper"]
            capture_bundle(
                error, capture_point="engine.certify",
                out_dir=self.config.bundle_dir, trial=trial,
                seed=batch.seed, outcome=outcome, scheme=payload)
        except Exception:
            pass  # a lost bundle must never take down the campaign

    def _capture_failure_bundle(self, unit: WorkUnit, batch: BatchSpec,
                                status: str,
                                failure_log: List[Dict[str, Any]],
                                state: JournalState,
                                out_dir: Optional[str] = None,
                                capture_point: Optional[str] = None,
                                ) -> None:
        """Export a repro bundle for a terminally failed unit.

        Containment violations from gpu-recovery units (whose enriched
        context carries the exact :class:`FaultPlan`) become replayable
        ``ladder`` bundles with a scalar/tensor cross-check spec; every
        other failure becomes a ``unit-batch`` bundle that re-runs the
        recorded batch runner inline.  Best-effort: capture never raises
        over the failure it records.
        """
        if out_dir is None:
            out_dir = self.config.bundle_dir
        if capture_point is None:
            capture_point = f"engine.{status}"
        if out_dir is None:
            return
        try:
            from repro.bundle import capture_bundle
            record = None
            for entry in reversed(failure_log):
                if isinstance(entry.get("error"), dict):
                    record = entry["error"]
                    break
            if record is None:
                # an untyped failure: no registered code to match on, so
                # the replay compares message fingerprints alone
                record = {"code": None,
                          "message": failure_log[-1].get("detail", status)
                          if failure_log else status,
                          "severity": "degraded", "recoverable": False,
                          "context": {}}
            context = dict(record.get("context") or {})
            params = unit.params
            plan = context.get("plan")
            fault_plan = plan if isinstance(plan, dict) else None
            if fault_plan is not None and unit.kind == "gpu-recovery" \
                    and isinstance(params.get("workload"), str):
                trial = self._ladder_trial(params, context)
                workload = {"workload": params["workload"],
                            "scale": params.get("scale", 0.25),
                            "build_seed": params.get("build_seed", 1)}
            else:
                trial = {"kind": "unit-batch", "unit_kind": unit.kind,
                         "params": dict(params),
                         "batch": {"index": batch.index,
                                   "size": batch.size,
                                   "seed": batch.seed}}
                workload = None
            capture_bundle(
                record, capture_point=capture_point, out_dir=out_dir,
                trial=trial, seed=batch.seed, fault_plan=fault_plan,
                workload=workload,
                journal_records=state.batches.get(unit.unit_id, []))
        except Exception:
            pass  # a lost bundle must never take down the campaign

    @staticmethod
    def _ladder_trial(params: Dict[str, Any],
                      context: Dict[str, Any]) -> Dict[str, Any]:
        """The replayable single-trial spec behind a ladder failure."""
        overlay = {key: context[key] for key in
                   ("seed", "batch", "trial", "plan", "workload")
                   if key in context}
        trial: Dict[str, Any] = {
            "kind": "ladder",
            "workload": params["workload"],
            "scale": params.get("scale", 0.25),
            "build_seed": params.get("build_seed", 1),
            "code": params.get("code", "secded-dp"),
            "persistent": params.get("persistent", False),
            "ladder": {
                "max_cta_replays": params.get("max_cta_replays", 1),
                "max_kernel_replays": params.get("max_kernel_replays", 2),
                "max_steps": params.get("max_steps", 2_000_000),
                "max_warp_steps": params.get("max_warp_steps"),
            },
            "context": overlay,
        }
        rebuild = {"workload": trial["workload"], "scale": trial["scale"],
                   "build_seed": trial["build_seed"], "code": trial["code"],
                   "max_steps": trial["ladder"]["max_steps"]}
        if params.get("tamper") is not None:
            trial["tamper"] = rebuild["tamper"] = params["tamper"]
            trial["mode"] = rebuild["mode"] = params.get("mode", "swdup")
        else:
            trial["compile_scheme"] = rebuild["compile_scheme"] = \
                params.get("compile_scheme", "swap-ecc")
        trial["cross_check"] = rebuild
        return trial

    def _interval_tight_enough(self, successes: int, trials: int) -> bool:
        config = self.config
        if config.ci_half_width is None or trials < config.min_trials:
            return False
        estimate = wilson_interval(successes, trials, config.z)
        return estimate.half_width <= config.ci_half_width

    # -- batch isolation ---------------------------------------------------

    def _run_batch_with_retry(self, runner, unit: WorkUnit,
                              batch: BatchSpec,
                              attempt_budget: Optional[int] = None):
        """Returns ``(outcome, payload_or_detail, attempts, failures)``.

        ``failures`` carries one record per failed attempt (outcome,
        message, traceback) for quarantine dead-letter journaling.
        ``attempt_budget`` caps total attempts below the configured
        retry allowance — the supervisor passes the distance to its
        quarantine threshold so the streak lands exactly on it.
        """
        config = self.config
        max_attempts = config.max_retries + 1
        if attempt_budget is not None:
            max_attempts = min(max_attempts, attempt_budget)
        attempts = 0
        failures: List[Dict[str, Any]] = []
        while True:
            attempts += 1
            outcome, payload = self._run_batch_once(runner, unit, batch)
            if outcome in ("ok", "paused"):
                return outcome, payload, attempts, failures
            failure = {
                "batch": batch.index, "attempt": attempts,
                "outcome": outcome,
                "detail": _failure_detail(payload),
                "traceback": _failure_traceback(payload)}
            if isinstance(payload, dict) and \
                    isinstance(payload.get("error"), dict):
                # keep the typed ReproError record (code, severity,
                # context) alongside the formatted message
                failure["error"] = payload["error"]
            failures.append(failure)
            retryable = outcome in ("error", "crashed",
                                    "resource_exhausted") or \
                (outcome == "hung" and config.retry_on_hang)
            if not retryable or attempts >= max_attempts or \
                    self._draining():
                return outcome, payload, attempts, failures
            time.sleep(_retry_delay(config, batch.seed, attempts))

    def _run_batch_once(self, runner, unit: WorkUnit, batch: BatchSpec):
        if self.config.isolation == "inline":
            try:
                return "ok", runner(unit.params, unit.context, batch)
            except (MemoryError, ResourceExhausted) as exc:
                return "resource_exhausted", _failure(exc)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                return "error", _failure(exc)
        context = multiprocessing.get_context(self.config.start_method)
        queue = context.Queue()
        budget = self._budget()
        heartbeat_rx = heartbeat_tx = None
        if budget is not None and budget.monitors_heartbeat:
            heartbeat_rx, heartbeat_tx = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_entry,
            args=(runner, unit.params, unit.context, batch, queue,
                  budget, heartbeat_tx),
            daemon=True)
        process.start()
        if heartbeat_tx is not None:
            heartbeat_tx.close()  # keep only the worker's write end open
        try:
            return self._await_worker(process, queue, heartbeat_rx, budget)
        finally:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
            queue.close()
            if heartbeat_rx is not None:
                heartbeat_rx.close()

    def _await_worker(self, process, queue, heartbeat=None, budget=None):
        timeout = self.config.timeout_s
        deadline = None if timeout is None else time.monotonic() + timeout
        last_beat = time.monotonic()
        drain_deadline = None
        while True:
            now = time.monotonic()
            if drain_deadline is None and self._draining():
                # Let the in-flight batch finish, but not indefinitely:
                # past the drain deadline the worker is killed and the
                # batch is left unjournaled for the resume to re-derive.
                grace = self.supervisor.config.drain_deadline_s \
                    if self.supervisor is not None else 10.0
                drain_deadline = now + grace
            if drain_deadline is not None and now >= drain_deadline:
                return "paused", (f"drain deadline reached with batch "
                                  f"in flight (pid {process.pid})")
            if deadline is not None and now >= deadline:
                return "hung", (f"no result within {timeout:.1f}s "
                                f"(pid {process.pid})")
            if heartbeat is not None:
                last_beat = max(last_beat, _drain_beats(heartbeat,
                                                        last_beat, now))
                if now - last_beat > budget.heartbeat_timeout_s:
                    return "resource_exhausted", (
                        f"worker (pid {process.pid}) stopped "
                        f"heartbeating for "
                        f"{budget.heartbeat_timeout_s:.1f}s")
            try:
                return queue.get(timeout=0.05)
            except Empty:
                if not process.is_alive():
                    # Drain the race where the worker wrote its result
                    # and exited before our poll saw it.
                    try:
                        return queue.get(timeout=0.25)
                    except Empty:
                        return self._dead_worker_verdict(process)

    def _dead_worker_verdict(self, process):
        """Classify a worker that died without reporting a result."""
        exitcode = process.exitcode
        if exitcode is not None and exitcode < 0 and \
                -exitcode in (_signal.SIGXCPU, _signal.SIGKILL) and \
                self._budget() is not None and \
                self._budget().max_cpu_s is not None:
            # RLIMIT_CPU teeth: SIGXCPU at the soft limit, the kernel's
            # SIGKILL backstop at the hard limit one second later.
            return "resource_exhausted", (
                f"worker killed by {_signal.Signals(-exitcode).name} "
                f"(CPU budget {self._budget().max_cpu_s}s)")
        return "crashed", (f"worker died with exit code "
                           f"{exitcode} before reporting")


def merged_gate_results(report: CampaignReport) -> Dict[str, CampaignResult]:
    """Reassemble per-unit :class:`CampaignResult`s from gate payloads.

    Units that crashed or hung before producing any batch are omitted —
    callers see exactly the campaigns that have data, mirroring how the
    engine degrades instead of aborting.
    """
    results: Dict[str, CampaignResult] = {}
    for unit_id, unit_report in report.units.items():
        if unit_report.kind != "gate" or not unit_report.payloads:
            continue
        results[unit_id] = merge_results(
            [CampaignResult.from_dict(payload)
             for payload in unit_report.payloads])
    return results
