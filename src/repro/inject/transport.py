"""Message-framed transports for the campaign coordinator service.

The coordinator/worker protocol (:mod:`repro.inject.coordinator`,
:mod:`repro.inject.worker`) is transport-agnostic: peers exchange JSON
*messages* over a :class:`Connection`, and everything above this module
assumes only at-least-once, possibly-reordered delivery.  This module
provides the three concrete transports:

* :class:`InProcessTransport` — queue-backed connections inside one
  process (tests, the ``service=`` path of ``run_full_campaign``).
  Messages still round-trip through the wire encoding, so in-process
  runs exercise the exact frame codec the socket path uses.
* :class:`UnixSocketListener` / :func:`unix_connect` — a Unix-domain
  stream socket transport for workers attaching from other processes.
* :class:`ChaosConnection` / :class:`ChaosDialer` — a seed-deterministic
  fault-injection wrapper that drops, duplicates, reorders, and delays
  messages, imposes one-way partitions, and severs connections, for
  chaos-testing the protocol's idempotence guarantees.

Wire format — one frame per message::

    MAGIC(4) | LENGTH(4, big-endian) | CRC32(4, big-endian) | PAYLOAD

where ``PAYLOAD`` is the canonical-JSON (sorted keys, compact
separators) UTF-8 encoding of a JSON object and ``CRC32`` covers the
payload bytes.  A frame that fails any structural check raises
:class:`~repro.errors.FrameError`; the connection that produced it can
no longer be assumed in sync and is closed (recovery is a fresh
connection plus fencing re-validation, exactly like a lease steal).
"""

import json
import os
import queue
import random
import socket
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import FrameError, InvalidArgument, TransportClosed

__all__ = [
    "FRAME_MAGIC", "MAX_FRAME_BYTES", "encode_frame", "FrameDecoder",
    "Connection", "InProcessTransport", "UnixSocketListener",
    "unix_connect", "ChaosConfig", "ChaosConnection", "ChaosDialer",
]

#: frame preamble; a stream that does not start every frame with this is
#: not speaking the protocol.
FRAME_MAGIC = b"RFB1"

#: refuse absurd frames before allocating for them (a torn length
#: prefix would otherwise read as a multi-gigabyte allocation).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER_BYTES = len(FRAME_MAGIC) + 4 + 4


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Encode one message as a length-prefixed CRC32-checked frame."""
    if not isinstance(message, dict):
        raise FrameError(
            f"transport messages must be JSON objects, got "
            f"{type(message).__name__}")
    try:
        payload = json.dumps(message, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"message is not JSON-encodable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return (FRAME_MAGIC + len(payload).to_bytes(4, "big")
            + crc.to_bytes(4, "big") + payload)


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks; complete messages come back in order.  Any
    structural violation (bad magic, oversized length, CRC mismatch,
    non-object payload) raises :class:`~repro.errors.FrameError` and
    poisons the decoder — once a stream has torn, no later byte of it
    can be trusted to re-synchronize.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every message completed by it."""
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier bad frame")
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            message = self._next_message()
            if message is None:
                return messages
            messages.append(message)

    def _next_message(self) -> Optional[Dict[str, Any]]:
        if len(self._buffer) < _HEADER_BYTES:
            return None
        magic = bytes(self._buffer[:len(FRAME_MAGIC)])
        if magic != FRAME_MAGIC:
            self._poisoned = True
            raise FrameError(
                f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})")
        length = int.from_bytes(
            self._buffer[len(FRAME_MAGIC):len(FRAME_MAGIC) + 4], "big")
        if length > MAX_FRAME_BYTES:
            self._poisoned = True
            raise FrameError(
                f"frame length {length} exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap")
        if len(self._buffer) < _HEADER_BYTES + length:
            return None
        crc_expected = int.from_bytes(
            self._buffer[len(FRAME_MAGIC) + 4:_HEADER_BYTES], "big")
        payload = bytes(self._buffer[_HEADER_BYTES:_HEADER_BYTES + length])
        del self._buffer[:_HEADER_BYTES + length]
        crc_actual = zlib.crc32(payload) & 0xFFFFFFFF
        if crc_actual != crc_expected:
            self._poisoned = True
            raise FrameError(
                f"frame CRC mismatch: header says {crc_expected:#010x}, "
                f"payload hashes to {crc_actual:#010x}")
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._poisoned = True
            raise FrameError(
                f"frame payload is not valid JSON: {exc}") from exc
        if not isinstance(message, dict):
            self._poisoned = True
            raise FrameError(
                f"frame payload must be a JSON object, got "
                f"{type(message).__name__}")
        return message


class Connection:
    """One bidirectional message channel between two protocol peers.

    The contract every implementation (and every chaos wrapper) honors:

    * :meth:`send` either enqueues the message for the peer or raises
      :class:`~repro.errors.TransportClosed` — there is no partial send.
    * :meth:`recv` returns the next message, ``None`` on timeout, or
      raises :class:`~repro.errors.TransportClosed` when the peer (or
      this side) has closed.  A corrupt frame raises
      :class:`~repro.errors.FrameError` after closing the connection.
    * :meth:`close` is idempotent and thread-safe.
    """

    def send(self, message: Dict[str, Any]) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


_CLOSE_SENTINEL = object()


class _QueueConnection(Connection):
    """One endpoint of an in-process connection pair.

    Messages cross as encoded frames and are decoded on receipt, so the
    in-process transport exercises the same codec (and the same "only
    JSON-encodable objects travel" restriction) as the socket path, and
    a received message is always a deep copy of the sent one.
    """

    def __init__(self, inbox: "queue.Queue", peer_inbox: "queue.Queue"):
        self._inbox = inbox
        self._peer_inbox = peer_inbox
        self._closed = threading.Event()

    def send(self, message: Dict[str, Any]) -> None:
        if self._closed.is_set():
            raise TransportClosed("send on a closed in-process connection")
        self._peer_inbox.put(encode_frame(message))

    def recv(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        if self._closed.is_set():
            raise TransportClosed("recv on a closed in-process connection")
        try:
            item = self._inbox.get(timeout=timeout) if timeout is None \
                or timeout > 0 else self._inbox.get_nowait()
        except queue.Empty:
            return None
        if item is _CLOSE_SENTINEL:
            self._closed.set()
            raise TransportClosed("peer closed the in-process connection")
        decoded = FrameDecoder().feed(item)
        return decoded[0]

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._peer_inbox.put(_CLOSE_SENTINEL)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class InProcessTransport:
    """A listener/dialer pair living inside one process.

    The coordinator calls :meth:`accept`; each :meth:`connect` call
    manufactures a fresh connection pair and hands the server end to
    the accept queue.  Used by the ``service=`` campaign path and by
    every protocol test that does not need a real socket.
    """

    def __init__(self):
        self._accept_queue: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()

    def connect(self) -> Connection:
        """Dial the listener; returns the client end of a new pair."""
        if self._closed.is_set():
            raise TransportClosed("connect on a closed in-process "
                                  "transport")
        client_inbox: "queue.Queue" = queue.Queue()
        server_inbox: "queue.Queue" = queue.Queue()
        client = _QueueConnection(client_inbox, server_inbox)
        server = _QueueConnection(server_inbox, client_inbox)
        self._accept_queue.put(server)
        return client

    def accept(self, timeout: Optional[float] = None
               ) -> Optional[Connection]:
        """Next inbound connection, or ``None`` on timeout."""
        if self._closed.is_set():
            raise TransportClosed("accept on a closed in-process "
                                  "transport")
        try:
            return self._accept_queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._closed.set()


class _SocketConnection(Connection):
    """A Unix-domain-socket connection speaking the frame protocol."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._decoder = FrameDecoder()
        self._pending: Deque[Dict[str, Any]] = deque()
        self._send_lock = threading.Lock()
        self._closed = threading.Event()

    def send(self, message: Dict[str, Any]) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            if self._closed.is_set():
                raise TransportClosed("send on a closed socket connection")
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                self.close()
                raise TransportClosed(
                    f"socket send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._pending:
                return self._pending.popleft()
            if self._closed.is_set():
                raise TransportClosed("recv on a closed socket connection")
            remaining: Optional[float] = None
            if deadline is not None:
                # timeout=0 (or an expired deadline) degrades to one
                # non-blocking poll: settimeout(0) makes the socket
                # non-blocking, where an empty buffer raises
                # BlockingIOError rather than socket.timeout.
                remaining = max(0.0, deadline - time.monotonic())
            try:
                self._sock.settimeout(remaining)
                data = self._sock.recv(65536)
            except (socket.timeout, BlockingIOError):
                return None
            except OSError as exc:
                self.close()
                raise TransportClosed(
                    f"socket recv failed: {exc}") from exc
            if not data:
                self.close()
                raise TransportClosed("peer closed the socket")
            try:
                self._pending.extend(self._decoder.feed(data))
            except FrameError:
                self.close()
                raise

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class UnixSocketListener:
    """A Unix-domain-socket listener accepting framed connections."""

    def __init__(self, path: str, backlog: int = 32):
        self.path = path
        if os.path.exists(path):
            os.unlink(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(backlog)
        self._closed = threading.Event()

    def accept(self, timeout: Optional[float] = None
               ) -> Optional[Connection]:
        """Next inbound connection, or ``None`` on timeout."""
        if self._closed.is_set():
            raise TransportClosed("accept on a closed listener")
        try:
            self._sock.settimeout(timeout)
            sock, _ = self._sock.accept()
        except (socket.timeout, BlockingIOError):
            # timeout=0 is a non-blocking poll (BlockingIOError when no
            # connection is waiting), matching recv(timeout=0).
            return None
        except OSError as exc:
            if self._closed.is_set():
                raise TransportClosed("listener closed") from exc
            raise TransportClosed(
                f"socket accept failed: {exc}") from exc
        sock.settimeout(None)
        return _SocketConnection(sock)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass


def unix_connect(path: str, timeout: Optional[float] = None) -> Connection:
    """Dial a :class:`UnixSocketListener` at ``path``."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(path)
    except socket.timeout as exc:
        sock.close()
        raise TransportClosed(
            f"connect to {path} timed out") from exc
    except OSError as exc:
        sock.close()
        raise TransportClosed(
            f"connect to {path} failed: {exc}") from exc
    sock.settimeout(None)
    return _SocketConnection(sock)


@dataclass(frozen=True)
class ChaosConfig:
    """A seeded schedule of transport faults.

    Every per-message decision derives from
    ``random.Random(f"chaos:{seed}:{label}:{direction}:{index}")``, so a
    chaos run is exactly reproducible from ``(seed, connection label,
    message index)`` — no decision depends on wall-clock timing or on
    any other message's fate.

    :param seed: master seed for the decision stream.
    :param drop: probability a message is silently discarded.
    :param dup: probability a message is delivered twice.
    :param reorder: probability a message is held back and delivered
        after its successor (adjacent swap).
    :param delay: probability a message delivery sleeps first.
    :param delay_max_s: upper bound of the uniform chaos sleep.
    :param partition: optional ``(start, stop)`` message-index span in
        which every message of the partitioned direction is dropped —
        a deterministic one-way partition.
    :param partition_window_s: optional ``(start, stop)`` seconds since
        connection creation during which the partitioned direction
        drops everything — a timed one-way partition.
    :param partition_direction: which direction the partition severs
        (``"send"`` or ``"recv"``); the other keeps flowing.
    :param sever_every: forcibly close the connection after every N
        sends (exercises the reconnect/refence path).
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    delay_max_s: float = 0.0
    partition: Optional[Tuple[int, int]] = None
    partition_window_s: Optional[Tuple[float, float]] = None
    partition_direction: str = "send"
    sever_every: Optional[int] = None

    def __post_init__(self):
        for name in ("drop", "dup", "reorder", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidArgument(
                    f"ChaosConfig.{name} must be a probability in "
                    f"[0, 1], got {value!r}")
        if self.delay_max_s < 0:
            raise InvalidArgument(
                f"ChaosConfig.delay_max_s must be >= 0, got "
                f"{self.delay_max_s!r}")
        if self.partition_direction not in ("send", "recv"):
            raise InvalidArgument(
                f"ChaosConfig.partition_direction must be 'send' or "
                f"'recv', got {self.partition_direction!r}")
        if self.sever_every is not None and self.sever_every <= 0:
            raise InvalidArgument(
                f"ChaosConfig.sever_every must be positive, got "
                f"{self.sever_every!r}")


class ChaosConnection(Connection):
    """A connection wrapper injecting a seeded schedule of faults.

    Chaos is applied on this side only — the wrapped peer sees ordinary
    frames — which is what makes the faults composable: wrap the worker
    end and the coordinator needs no cooperation.  Reordering holds a
    message back until the next send flushes it (or :meth:`close` does),
    so no message is lost to reordering alone.
    """

    def __init__(self, inner: Connection, config: ChaosConfig,
                 label: str = "conn0"):
        self._inner = inner
        self._config = config
        self._label = label
        self._send_index = 0
        self._recv_index = 0
        self._holdback: Deque[Dict[str, Any]] = deque()
        self._recv_dups: Deque[Dict[str, Any]] = deque()
        self._born = time.monotonic()
        self._lock = threading.Lock()

    def _rng(self, direction: str, index: int) -> random.Random:
        return random.Random(
            f"chaos:{self._config.seed}:{self._label}:{direction}:{index}")

    def _partitioned(self, direction: str, index: int) -> bool:
        config = self._config
        if config.partition_direction != direction:
            return False
        if config.partition is not None:
            start, stop = config.partition
            if start <= index < stop:
                return True
        if config.partition_window_s is not None:
            start_s, stop_s = config.partition_window_s
            age = time.monotonic() - self._born
            if start_s <= age < stop_s:
                return True
        return False

    def send(self, message: Dict[str, Any]) -> None:
        with self._lock:
            index = self._send_index
            self._send_index += 1
            config = self._config
            if config.sever_every is not None and index > 0 \
                    and index % config.sever_every == 0:
                self._flush_holdback()
                self._inner.close()
                raise TransportClosed(
                    f"chaos severed connection {self._label} at send "
                    f"index {index}")
            rng = self._rng("send", index)
            # Draw every decision unconditionally so each message's fate
            # is independent of the config knobs enabled around it.
            r_drop, r_dup, r_reorder, r_delay, r_sleep = (
                rng.random(), rng.random(), rng.random(), rng.random(),
                rng.random())
            if self._partitioned("send", index) or r_drop < config.drop:
                return
            if r_delay < config.delay and config.delay_max_s > 0:
                time.sleep(r_sleep * config.delay_max_s)
            copies = 2 if r_dup < config.dup else 1
            if r_reorder < config.reorder:
                for _ in range(copies):
                    self._holdback.append(message)
                return
            for _ in range(copies):
                self._inner.send(message)
            self._flush_holdback()

    def _flush_holdback(self) -> None:
        while self._holdback:
            held = self._holdback.popleft()
            try:
                self._inner.send(held)
            except TransportClosed:
                self._holdback.clear()
                return

    def recv(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._recv_dups:
                return self._recv_dups.popleft()
            remaining: Optional[float] = None
            if deadline is not None:
                # clamp instead of bailing out so timeout=0 still makes
                # one non-blocking poll of the inner connection
                remaining = max(0.0, deadline - time.monotonic())
            message = self._inner.recv(remaining)
            if message is None:
                return None
            index = self._recv_index
            self._recv_index += 1
            config = self._config
            rng = self._rng("recv", index)
            r_drop, r_dup, r_delay, r_sleep = (
                rng.random(), rng.random(), rng.random(), rng.random())
            if self._partitioned("recv", index) or r_drop < config.drop:
                continue
            if r_delay < config.delay and config.delay_max_s > 0:
                time.sleep(r_sleep * config.delay_max_s)
            if r_dup < config.dup:
                self._recv_dups.append(message)
            return message

    def close(self) -> None:
        with self._lock:
            self._flush_holdback()
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class ChaosDialer:
    """Wrap a dialer so every connection it makes is chaos-injected.

    Each connection gets a distinct label (``conn0``, ``conn1``, ...),
    so reconnects do not replay the previous connection's fault
    schedule — but the whole sequence is still a pure function of the
    config seed.
    """

    def __init__(self, dial: Callable[[], Connection],
                 config: ChaosConfig):
        self._dial = dial
        self._config = config
        self._count = 0
        self._lock = threading.Lock()

    def __call__(self) -> Connection:
        with self._lock:
            label = f"conn{self._count}"
            self._count += 1
        return ChaosConnection(self._dial(), self._config, label=label)
