"""Gate-level fault injection: the Hamartia analog plus Figure 10/11 math."""

from repro.inject.campaign import (UNIT_ORDER, build_unit, run_full_campaign,
                                   run_unit_campaign, unit_inputs)
from repro.inject.classify import (DETECTION_CLASSES, RECOVERY_CLASSES,
                                   Estimate, detection_coverage,
                                   detection_outcomes, record_is_detected,
                                   recovery_coverage, sdc_risk,
                                   sdc_risk_sweep, severity_distribution,
                                   split_into_registers)
from repro.inject.hamartia import (SEVERITY_CLASSES, CampaignResult,
                                   FaultInjector, InjectionRecord,
                                   classify_severity, merge_results)
from repro.inject.operands import (OPERAND_KINDS, OperandTrace,
                                   synthetic_operands)
from repro.inject.engine import (OUTCOMES, CampaignEngine, CampaignReport,
                                 EngineConfig, UnitReport, WilsonEstimate,
                                 WorkUnit, certify_work_unit, gate_work_unit,
                                 gpu_recovery_work_unit, gpu_work_unit,
                                 make_scheme, mbu_sweep_work_unit,
                                 merged_gate_results, register_unit_kind,
                                 wilson_interval)
from repro.inject.fabric import (CampaignFabric, FabricConfig, FabricReport,
                                 partition_units, replicate_units,
                                 run_fabric_campaign)
from repro.inject.journal import Journal, JournalCursor, JournalState
from repro.inject.lease import Lease, LeaseTable, rebase_journal
from repro.inject.merge import (MergedCampaign, ShardSource,
                                merge_fabric_dir, merge_shard_journals,
                                write_merged_report)
from repro.inject.supervisor import (CampaignSupervisor, LeaseHeartbeat,
                                     ResourceBudget, SupervisorConfig,
                                     read_heartbeat)

__all__ = [
    "UNIT_ORDER", "build_unit", "run_full_campaign", "run_unit_campaign",
    "unit_inputs",
    "DETECTION_CLASSES", "RECOVERY_CLASSES", "Estimate",
    "detection_coverage", "detection_outcomes",
    "record_is_detected", "recovery_coverage", "sdc_risk",
    "sdc_risk_sweep", "severity_distribution", "split_into_registers",
    "SEVERITY_CLASSES", "CampaignResult", "FaultInjector", "InjectionRecord",
    "classify_severity", "merge_results",
    "OPERAND_KINDS", "OperandTrace", "synthetic_operands",
    "OUTCOMES", "CampaignEngine", "CampaignReport", "EngineConfig",
    "UnitReport", "WilsonEstimate", "WorkUnit", "certify_work_unit",
    "gate_work_unit", "gpu_recovery_work_unit", "gpu_work_unit",
    "make_scheme", "mbu_sweep_work_unit", "merged_gate_results",
    "register_unit_kind", "wilson_interval",
    "CampaignFabric", "FabricConfig", "FabricReport", "partition_units",
    "replicate_units", "run_fabric_campaign",
    "Journal", "JournalCursor", "JournalState",
    "Lease", "LeaseTable", "rebase_journal",
    "MergedCampaign", "ShardSource", "merge_fabric_dir",
    "merge_shard_journals", "write_merged_report",
    "CampaignSupervisor", "LeaseHeartbeat", "ResourceBudget",
    "SupervisorConfig", "read_heartbeat",
]
