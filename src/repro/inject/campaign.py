"""The six-unit injection campaign behind Figures 10 and 11."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InjectionError
from repro.gates.float_units import (FP32, FP64, build_fp_add_unit,
                                     build_fp_mad_unit)
from repro.gates.multiplier import build_add_unit, build_mad_unit
from repro.gates.netlist import Netlist
from repro.inject.hamartia import CampaignResult, FaultInjector
from repro.inject.operands import OperandTrace, synthetic_operands

#: the six arithmetic units of Figure 10, in the paper's display order
UNIT_ORDER = ("fxp-add-32", "fxp-mad-32", "fp-add-32", "fp-mad-32",
              "fp-add-64", "fp-mad-64")

_UNIT_SPECS: Dict[str, Tuple[Callable[[], Netlist], str, Sequence[str]]] = {
    "fxp-add-32": (lambda: build_add_unit(32), "int_add", ("a", "b")),
    "fxp-mad-32": (lambda: build_mad_unit(32), "int_mad", ("a", "b", "c")),
    "fp-add-32": (lambda: build_fp_add_unit(FP32), "fp32_add", ("x", "y")),
    "fp-mad-32": (lambda: build_fp_mad_unit(FP32), "fp32_mad",
                  ("a", "b", "c")),
    "fp-add-64": (lambda: build_fp_add_unit(FP64), "fp64_add", ("x", "y")),
    "fp-mad-64": (lambda: build_fp_mad_unit(FP64), "fp64_mad",
                  ("a", "b", "c")),
}


def build_unit(name: str) -> Netlist:
    """Instantiate one of the Figure 10 arithmetic units by name."""
    if name not in _UNIT_SPECS:
        raise InjectionError(
            f"unknown unit {name!r}; choose from {UNIT_ORDER}")
    builder, __, __ = _UNIT_SPECS[name]
    return builder()


def unit_inputs(name: str, count: int, seed: int = 0,
                trace: Optional[OperandTrace] = None
                ) -> Dict[str, List[int]]:
    """Operand samples for one unit, traced if available else synthetic."""
    if name not in _UNIT_SPECS:
        raise InjectionError(
            f"unknown unit {name!r}; choose from {UNIT_ORDER}")
    if count <= 0:
        raise InjectionError(
            f"operand count must be positive, got {count}; an empty "
            f"operand set would make the campaign vacuously masked")
    __, kind, buses = _UNIT_SPECS[name]
    if trace is not None:
        tuples = trace.sample(kind, count, seed)
    else:
        tuples = synthetic_operands(kind, count, seed)
    return {bus: [t[index] for t in tuples]
            for index, bus in enumerate(buses)}


def run_unit_campaign(name: str, sample_count: int = 1000,
                      site_count: Optional[int] = 300, seed: int = 0,
                      trace: Optional[OperandTrace] = None
                      ) -> CampaignResult:
    """One unit's single-event campaign (Section IV-A's 10k-pair study).

    ``sample_count`` plays the role of the paper's 10,000 input pairs and
    ``site_count`` bounds how many fault sites are swept (None = all).
    """
    unit = build_unit(name)
    samples = unit_inputs(name, sample_count, seed, trace)
    injector = FaultInjector(unit)
    return injector.run(samples, site_count=site_count, seed=seed)


def run_full_campaign(sample_count: int = 1000,
                      site_count: Optional[int] = 300, seed: int = 0,
                      trace: Optional[OperandTrace] = None,
                      units: Sequence[str] = UNIT_ORDER, *,
                      journal_path: Optional[str] = None,
                      journal_fsync: bool = False,
                      engine_config=None, supervisor=None,
                      salvage: bool = False,
                      shards: Optional[int] = None,
                      fabric_dir: Optional[str] = None,
                      lease_ttl_s: float = 30.0,
                      steal: bool = True,
                      fabric_config=None,
                      bundle_dir: Optional[str] = None,
                      service: bool = False
                      ) -> Dict[str, CampaignResult]:
    """Campaigns for every Figure 10 unit, keyed by unit name.

    Runs through the resilient campaign engine: each unit sweeps in a
    crash-isolated worker and, given ``journal_path``, streams its
    batches to a JSONL journal so an interrupted campaign resumes where
    it stopped.  Per-trial ECC classification inside each batch is
    vectorized (one :func:`~repro.inject.classify.detection_outcomes`
    decoder pass per batch, not one scalar decode per trial).  The default configuration reproduces the legacy
    single-shot sweep exactly (one batch of ``sample_count`` samples per
    unit, no early stopping); pass ``engine_config`` (an
    :class:`~repro.inject.engine.EngineConfig`) for batched sweeps with
    Wilson-interval early stopping, timeouts, and retries — then
    ``engine_config.batch_size``/``max_batches`` bound the work and
    ``sample_count`` is ignored.

    Units that crash or hang are recorded in the engine journal and
    omitted from the returned dict instead of aborting the campaign.
    ``journal_fsync=True`` fsyncs the journal after every record —
    slower, but a ``kill -9`` mid-campaign loses at most one torn final
    line, which :meth:`~repro.inject.journal.JournalState.load`
    tolerates on resume.

    The sweep runs under a
    :class:`~repro.inject.supervisor.CampaignSupervisor` by default:
    SIGTERM/SIGINT drain gracefully (journal a ``campaign_paused``
    record and return the units finished so far; re-invoking with the
    same journal resumes to identical final counts), crash-looping
    units are quarantined instead of retried forever, and any
    configured worker resource budget is enforced.  Pass a
    :class:`~repro.inject.supervisor.SupervisorConfig` (or a prebuilt
    supervisor) as ``supervisor`` to tune the policy, or
    ``supervisor=False`` for the bare PR 1 engine.  ``salvage=True``
    truncates a corrupt journal at its first bad record (detected by
    per-record CRC32) instead of raising, re-deriving the lost batches
    from their deterministic seeds.

    ``shards=N`` opts the campaign into the distributed fabric
    (:mod:`repro.inject.fabric`): the units are partitioned across ``N``
    leased shard processes under ``fabric_dir`` (defaults to
    ``<journal_path>.fabric`` when a journal path is given), each with
    its own supervised engine and tamper-evident journal; dead shards
    are re-leased under fresh fencing tokens (``steal``), a crashed
    coordinator resumes from its own journal, and the per-shard
    journals merge deterministically.  ``lease_ttl_s`` bounds how long
    a shard may go without a heartbeat before its lease is stolen.
    Pass a full :class:`~repro.inject.fabric.FabricConfig` as
    ``fabric_config`` for fleet-level knobs (replicated mode, global
    Wilson early-stop); ``supervisor`` is ignored in fabric mode —
    every shard runs under its own supervisor.

    ``bundle_dir`` names a directory where every terminal failure —
    crashed/hung/quarantined units, lease-grant refusals, merge
    conflicts — exports a deterministic repro bundle
    (:mod:`repro.bundle`) alongside the campaign journal.

    ``service=True`` (with ``shards``/``fabric_config``) runs the
    sharded campaign through the network-attached coordinator
    (:mod:`repro.inject.coordinator`) instead of the forking fabric:
    shard workers attach over an in-process message transport, lease
    shards under the same fencing tokens, and the merged report is
    byte-identical to the forking deployment.  Requires
    ``trace=None`` — service-mode work units ship over the transport
    and must be context-free.
    """
    import dataclasses

    from repro.inject.engine import (CampaignEngine, EngineConfig,
                                     gate_work_unit, merged_gate_results)
    from repro.inject.supervisor import coerce_supervisor
    if engine_config is None:
        engine_config = EngineConfig(
            batch_size=sample_count, max_batches=1, ci_half_width=None,
            timeout_s=None, journal_fsync=journal_fsync, salvage=salvage,
            bundle_dir=bundle_dir)
    else:
        overrides = {}
        if journal_fsync and not engine_config.journal_fsync:
            overrides["journal_fsync"] = True
        if salvage and not engine_config.salvage:
            overrides["salvage"] = True
        if bundle_dir is not None and engine_config.bundle_dir is None:
            overrides["bundle_dir"] = bundle_dir
        if overrides:
            engine_config = dataclasses.replace(engine_config, **overrides)
    work = [gate_work_unit(name, site_count=site_count, seed=seed + index,
                           trace=trace)
            for index, name in enumerate(units)]
    if shards is not None or fabric_config is not None:
        from repro.inject.fabric import FabricConfig, run_fabric_campaign
        if fabric_dir is None:
            if journal_path is None:
                raise InjectionError(
                    "a sharded campaign needs a fabric_dir (or a "
                    "journal_path to derive one from)")
            fabric_dir = f"{journal_path}.fabric"
        if fabric_config is None:
            fabric_config = FabricConfig(
                shards=shards, lease_ttl_s=lease_ttl_s, steal=steal,
                engine=engine_config, bundle_dir=bundle_dir)
        if service:
            from repro.inject.coordinator import run_service_campaign
            fabric_report = run_service_campaign(work, fabric_dir,
                                                 fabric_config)
        else:
            fabric_report = run_fabric_campaign(work, fabric_dir,
                                                fabric_config)
        merged = merged_gate_results(fabric_report.report)
        return {name: merged[name] for name in units if name in merged}
    supervisor = coerce_supervisor(supervisor)
    engine = CampaignEngine(engine_config, supervisor=supervisor)
    if supervisor is None:
        report = engine.run(work, journal_path)
    else:
        with supervisor:
            report = engine.run(work, journal_path)
    merged = merged_gate_results(report)
    return {name: merged[name] for name in units if name in merged}
