"""Network-attached campaign coordinator (jobs, grants, chaos-safe protocol).

The forking :class:`~repro.inject.fabric.CampaignFabric` owns its shard
holders: it spawns them, reads their heartbeat files, and reaps their
exit codes.  :class:`CoordinatorService` decouples the two halves — the
coordinator listens on a :mod:`repro.inject.transport` endpoint and any
number of :class:`~repro.inject.worker.ShardWorker` processes *attach*
over message-framed connections, lease shards, stream progress, and
complete them.  Everything durable stays identical to the local fabric
(same ``coordinator.jsonl``, same per-lease shard journals, same
salvage-aware deterministic merge), which is what makes the merged
report byte-identical between the two deployments.

**The protocol is idempotent under at-least-once delivery.**  The
transport may drop, duplicate, reorder, or delay any frame (that is
exactly what :class:`~repro.inject.transport.ChaosTransport` does in the
tests), so every message is safe to re-deliver:

* every worker request carries a ``req`` nonce; replies echo it in
  ``re`` so a worker can discard stale replies after a resend;
* every shard-scoped message carries the shard id **and the fencing
  token**; anything under a superseded token is rejected with the same
  :class:`~repro.errors.StaleFencingToken` /
  :class:`~repro.errors.LeaseExpired` semantics as the
  :class:`~repro.inject.lease.LeaseTable` itself;
* a duplicated ``attach`` from a worker that already holds an active
  lease re-sends the *same* grant (no token bump — the reply, not the
  request, was lost);
* a duplicated ``complete`` for an already-completed lease is
  acknowledged and dropped;
* ``progress`` events are absorbed into the global Wilson estimator
  keyed by ``(unit, batch index)`` — the same dedup the merge applies —
  so replays never double-count.

Message kinds (worker → coordinator): ``attach``, ``reattach``,
``heartbeat``, ``progress``, ``complete``, ``goodbye``.  Coordinator →
worker: ``grant``, ``wait``, ``done``, ``drain``, ``ok``, ``reject``.

A ``progress`` frame also carries a batch *fingerprint*; if two holders
ever report conflicting counts for the same ``(unit, index)`` the
coordinator raises :class:`~repro.errors.ProtocolError`, exports the
offending frame as a repro bundle, and keeps serving — the terminal
merge (which would raise the same conflict from the journals) stays the
authority on counts.
"""

from __future__ import annotations

import json
import os
import queue
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (FabricConfigError, FabricError, ProtocolError,
                          StaleFencingToken, LeaseExpired, TransportClosed,
                          FrameError)
from repro.inject.engine import WorkUnit
from repro.inject.fabric import (CampaignFabric, FabricConfig, FabricReport,
                                 _GlobalEstimator, build_plan,
                                 capture_lease_failure, finalize_fabric_merge,
                                 lease_header, lease_journal_path,
                                 record_or_check_plan,
                                 replay_coordinator_state)
from repro.inject.journal import (Journal, JournalCursor, atomic_write_text)
from repro.inject.lease import COMPLETED, LeaseTable, rebase_journal
from repro.inject.merge import fabric_journal_paths

#: how many frames one attachment may deliver per poll tick (fairness cap)
_PUMP_BUDGET = 64


def wire_unit(unit: WorkUnit) -> Dict[str, Any]:
    """Encode one work unit for a grant frame (context-free by contract)."""
    return {"unit_id": unit.unit_id, "kind": unit.kind,
            "params": dict(unit.params)}


def unwire_unit(encoded: Dict[str, Any]) -> WorkUnit:
    """Decode a grant frame's work unit."""
    return WorkUnit(unit_id=encoded["unit_id"], kind=encoded["kind"],
                    params=dict(encoded.get("params") or {}), context=None)


def batch_fingerprint(record: Dict[str, Any]) -> str:
    """The canonical identity of one batch record's counts.

    Batches are pure functions of ``(unit params, batch index)``, so two
    honest holders always produce the same fingerprint for the same key;
    a mismatch is evidence of divergent execution, not chaos.
    """
    return json.dumps(
        {"trials": record.get("trials"),
         "successes": record.get("successes"),
         "counts": record.get("counts")},
        sort_keys=True, separators=(",", ":"))


class _Attachment:
    """One live worker connection and what the coordinator granted it."""

    def __init__(self, conn):
        self.conn = conn
        self.worker: Optional[str] = None
        #: (shard, token) of the grant this attachment currently holds;
        #: kept so a duplicated attach re-sends the same grant instead
        #: of burning a fencing token on a lost reply
        self.granted: Optional[Tuple[str, int]] = None


class JobHandle:
    """A submitted job: a live event stream plus the eventual report.

    Events are plain dicts with an ``event`` key (``job_started``,
    ``lease_granted``, ``progress``, ``lease_expired``,
    ``lease_completed``, ``lease_paused``, ``lease_rejected``,
    ``protocol_conflict``, ``worker_reattached``, ``drain``,
    ``global_stop``, ``job_done``, ``job_failed``) — the observable
    per-shard progress stream the CLI renders.
    """

    _TERMINAL = ("job_done", "job_failed")

    def __init__(self, service: "CoordinatorService"):
        self._service = service
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue()

    def _push(self, event: Dict[str, Any]) -> None:
        self._queue.put(event)

    def events(self, timeout: Optional[float] = None):
        """Yield events until the job ends (or ``timeout`` of silence)."""
        while True:
            try:
                event = self._queue.get(timeout=timeout)
            except queue.Empty:
                return
            yield event
            if event.get("event") in self._TERMINAL:
                return

    def drain_events(self) -> List[Dict[str, Any]]:
        """Every event queued so far, without blocking."""
        drained: List[Dict[str, Any]] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return drained

    @property
    def result(self) -> Optional[FabricReport]:
        """The merged report once :meth:`CoordinatorService.serve` returns."""
        return self._service._result


class CoordinatorService:
    """Job-oriented coordinator for workers attaching over a transport.

    Single-threaded poll loop, same cadence and exit conditions as
    :meth:`CampaignFabric._loop`; the only concurrency is the transport
    itself (worker pump threads on the other end of each connection).
    Durable layout under ``fabric_dir`` is identical to the local
    fabric, so resuming a service job with ``CampaignFabric`` — or the
    other way around — is supported by construction.
    """

    def __init__(self, fabric_dir: str,
                 config: Optional[FabricConfig] = None,
                 listener=None):
        self.config = config if config is not None else FabricConfig()
        self.fabric_dir = fabric_dir
        self.listener = listener
        self.table = LeaseTable(ttl_s=self.config.lease_ttl_s)
        self.plan: Dict[str, List[WorkUnit]] = {}
        self._attachments: List[_Attachment] = []
        self._cursors: Dict[str, JournalCursor] = {}
        self._paused_shards: Set[str] = set()
        self._fingerprints: Dict[Tuple[str, int], str] = {}
        self._estimator = _GlobalEstimator(
            self.config.global_ci_half_width,
            self.config.global_min_trials, self.config.z)
        self._stopped_globally = False
        self._drain_reason = ""
        self._drain_requested: Optional[str] = None
        self._drain_announced = False
        self._journal: Optional[Journal] = None
        self._job: Optional[JobHandle] = None
        self._result: Optional[FabricReport] = None

    # -- job API -----------------------------------------------------------

    def submit(self, units: Sequence[WorkUnit]) -> JobHandle:
        """Plan a campaign as this service's job (one job per service)."""
        if self._job is not None:
            raise FabricConfigError(
                "coordinator service already has a submitted job; "
                "start a fresh service per job")
        for unit in units:
            if unit.context is not None:
                raise FabricConfigError(
                    f"work unit {unit.unit_id!r} carries a non-wire "
                    f"context; service mode ships units over the "
                    f"transport, so units must be context-free "
                    f"(context=None)")
        self.plan = build_plan(units, self.config)
        self._job = JobHandle(self)
        return self._job

    def run_job(self, units: Sequence[WorkUnit]) -> FabricReport:
        """Submit + serve in one call (the CLI entry point)."""
        self.submit(units)
        return self.serve()

    def request_drain(self, reason: str = "drain requested") -> None:
        """Ask the serve loop to drain the fleet (thread-safe)."""
        if self._drain_requested is None:
            self._drain_requested = reason

    # -- paths / helpers ---------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.fabric_dir, name)

    def _emit(self, event: str, **fields: Any) -> None:
        if self._job is not None:
            self._job._push({"event": event, **fields})

    def _watch(self, journal_path: str) -> None:
        if journal_path not in self._cursors:
            self._cursors[journal_path] = JournalCursor(journal_path)

    def _open_shards(self) -> List[str]:
        return [shard for shard in self.plan
                if not self.table.completed(shard)
                and shard not in self._paused_shards]

    # -- serve loop --------------------------------------------------------

    def serve(self) -> FabricReport:
        """Serve the submitted job to attaching workers, then merge."""
        if self._job is None:
            raise FabricConfigError(
                "no job submitted; call submit(units) before serve()")
        os.makedirs(self.fabric_dir, exist_ok=True)
        self._journal = Journal(self._path(CampaignFabric.COORDINATOR_JOURNAL),
                                salvage=True,
                                header={"role": "fabric-coordinator"})
        try:
            replay = replay_coordinator_state(
                self._path(CampaignFabric.COORDINATOR_JOURNAL), self.table)
            record_or_check_plan(self._journal, replay["planned"],
                                 self.plan, self.config.mode,
                                 self.fabric_dir)
            if replay["global_stop"] is not None:
                self._stopped_globally = True
                self._set_drain(replay["global_stop"].get(
                    "reason", "global early-stop"))
            for path in fabric_journal_paths(self.fabric_dir):
                self._watch(path)
            self._emit("job_started", shards=sorted(self.plan),
                       mode=self.config.mode)
            self._loop()
            report = finalize_fabric_merge(
                self.fabric_dir, z=self.config.z,
                stopped_globally=self._stopped_globally, table=self.table,
                plan=self.plan, paused_shards=self._paused_shards,
                journal=self._journal, bundle_dir=self.config.bundle_dir)
            self._result = report
            self._emit("job_done", paused=report.paused,
                       stopped_globally=report.stopped_globally,
                       shard_status=dict(report.shard_status))
            return report
        except BaseException as exc:
            self._emit("job_failed", error=str(exc),
                       code=getattr(exc, "code", None))
            raise
        finally:
            self._farewell()
            self._journal.close()
            self._journal = None

    def _loop(self) -> None:
        while True:
            if self._drain_requested is not None:
                self._set_drain(self._drain_requested)
            if not self._open_shards():
                return
            if self._drain_reason and not self.table.active_shards():
                return
            self._accept_new()
            self._pump()
            self._expire_stalled()
            self._tick_estimator()
            time.sleep(self.config.poll_interval_s)

    def _farewell(self) -> None:
        """Best-effort goodbye so attached workers exit promptly."""
        reason = "job finished" if self._result is not None \
            else "coordinator stopped"
        for att in list(self._attachments):
            try:
                att.conn.send({"type": "done", "reason": reason})
            except (TransportClosed, FrameError, OSError):
                pass
            try:
                att.conn.close()
            except OSError:
                pass
        self._attachments.clear()

    # -- transport plumbing ------------------------------------------------

    def _accept_new(self) -> None:
        if self.listener is None:
            return
        while True:
            try:
                conn = self.listener.accept(timeout=0)
            except TransportClosed:
                return
            if conn is None:
                return
            self._attachments.append(_Attachment(conn))

    def _pump(self) -> None:
        for att in list(self._attachments):
            for _ in range(_PUMP_BUDGET):
                try:
                    message = att.conn.recv(timeout=0)
                except (TransportClosed, FrameError):
                    self._detach(att)
                    break
                if message is None:
                    break
                self._handle(att, message)
                if att not in self._attachments:
                    break

    def _detach(self, att: _Attachment) -> None:
        """Drop a dead connection; its lease stays and the TTL decides."""
        try:
            att.conn.close()
        except OSError:
            pass
        if att in self._attachments:
            self._attachments.remove(att)

    def _send(self, att: _Attachment, message: Dict[str, Any]) -> bool:
        try:
            att.conn.send(message)
            return True
        except (TransportClosed, FrameError):
            self._detach(att)
            return False

    # -- message handlers --------------------------------------------------

    def _handle(self, att: _Attachment, message: Dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == "attach":
            self._handle_attach(att, message)
        elif kind == "reattach":
            self._handle_reattach(att, message)
        elif kind == "heartbeat":
            self._handle_heartbeat(att, message)
        elif kind == "progress":
            self._handle_progress(att, message)
        elif kind == "complete":
            self._handle_complete(att, message)
        elif kind == "goodbye":
            self._detach(att)
        # unknown kinds are ignored: an older coordinator must not die
        # on a newer worker's optional extensions

    def _grant_message(self, shard: str, token: int,
                       req: Any) -> Dict[str, Any]:
        return {
            "type": "grant", "re": req, "shard": shard, "token": token,
            "units": [wire_unit(unit) for unit in self.plan[shard]],
            "journal": lease_journal_path(self.fabric_dir, shard, token),
            "header": lease_header(shard, token, len(self.plan)),
            "engine": self.config.shard_engine_config().to_dict(),
            "heartbeat_interval_s": self.config.heartbeat_interval_s}

    def _handle_attach(self, att: _Attachment,
                       message: Dict[str, Any]) -> None:
        req = message.get("req")
        att.worker = message.get("worker") or att.worker
        if self._drain_reason:
            self._send(att, {"type": "drain", "re": req,
                             "reason": self._drain_reason})
            return
        if att.granted is not None:
            # Duplicated attach (the grant reply was lost): re-send the
            # same grant while its lease is still current — burning a
            # token here would turn every dropped reply into a steal.
            shard, token = att.granted
            lease = self.table.current(shard)
            if lease is not None and lease.active and \
                    lease.token == token:
                self._send(att, self._grant_message(shard, token, req))
                return
            att.granted = None
        open_shards = self._open_shards()
        if not open_shards:
            self._send(att, {"type": "done", "re": req,
                             "reason": "all shards completed"})
            return
        grantable = [shard for shard in open_shards
                     if self.table.current(shard) is None
                     or not self.table.current(shard).active]
        if not grantable:
            self._send(att, {"type": "wait", "re": req,
                             "retry_s": max(
                                 self.config.poll_interval_s * 4,
                                 self.config.heartbeat_interval_s)})
            return
        self._grant(att, grantable[0], req)

    def _grant(self, att: _Attachment, shard: str, req: Any) -> None:
        previous = self.table.current(shard)
        if previous is not None:
            if not self.config.steal and previous.reason \
                    not in CampaignFabric._BENIGN_EXPIRY:
                raise capture_lease_failure(FabricError(
                    f"shard {shard!r} lost lease token {previous.token} "
                    f"({previous.reason or 'expired'}) and work stealing "
                    f"is disabled (steal=False)",
                    context={"shard": shard, "token": previous.token}),
                    shard, self.fabric_dir, self.config.bundle_dir)
            if self.table.token(shard) >= self.config.max_lease_attempts:
                raise capture_lease_failure(FabricError(
                    f"shard {shard!r} exhausted its "
                    f"{self.config.max_lease_attempts} lease attempts; "
                    f"poison shard — inspect its lease journals under "
                    f"{self.fabric_dir!r}",
                    context={"shard": shard,
                             "token": self.table.token(shard)}),
                    shard, self.fabric_dir, self.config.bundle_dir)
        lease = self.table.grant(shard)
        journal_path = lease_journal_path(self.fabric_dir, shard,
                                          lease.token)
        self._journal.append({
            "type": "lease_granted", "shard": shard, "token": lease.token,
            "ttl_s": lease.ttl_s,
            "journal": os.path.basename(journal_path),
            "worker": att.worker})
        sources = [lease_journal_path(self.fabric_dir, shard, token)
                   for token in range(1, lease.token)]
        rebase_journal(sources, journal_path,
                       header=lease_header(shard, lease.token,
                                           len(self.plan)))
        self._watch(journal_path)
        att.granted = (shard, lease.token)
        self._emit("lease_granted", shard=shard, token=lease.token,
                   worker=att.worker)
        self._send(att, self._grant_message(shard, lease.token, req))

    def _handle_reattach(self, att: _Attachment,
                         message: Dict[str, Any]) -> None:
        req = message.get("req")
        shard = message.get("shard")
        token = int(message.get("token", 0))
        att.worker = message.get("worker") or att.worker
        try:
            # the same gate renew/complete go through: current token of
            # an active lease, or the holder has been superseded
            self.table._checked(shard, token, "reattach")
        except FabricError as exc:
            self._send(att, {
                "type": "reject", "for": "reattach", "re": req,
                "shard": shard, "token": token, "code": exc.code,
                "reason": str(exc)})
            return
        att.granted = (shard, token)
        for other in self._attachments:
            if other is not att and other.granted == (shard, token):
                other.granted = None  # the old connection is superseded
        self._send(att, {"type": "ok", "for": "reattach", "re": req,
                         "shard": shard, "token": token})
        if self._drain_reason:
            self._send(att, {"type": "drain",
                             "reason": self._drain_reason})
        self._emit("worker_reattached", shard=shard, token=token,
                   worker=att.worker)

    def _handle_heartbeat(self, att: _Attachment,
                          message: Dict[str, Any]) -> None:
        shard = message.get("shard")
        token = int(message.get("token", 0))
        try:
            self.table.renew(shard, token, int(message.get("beat", 0)))
        except FabricError as exc:
            # an active zombie: tell it immediately instead of letting
            # it burn a full shard's work before the complete is refused
            self._send(att, {
                "type": "reject", "for": "heartbeat", "shard": shard,
                "token": token, "code": exc.code, "reason": str(exc)})

    def _handle_progress(self, att: _Attachment,
                         message: Dict[str, Any]) -> None:
        shard = message.get("shard")
        unit = message.get("unit")
        index = int(message.get("index", 0))
        record = {"type": "batch", "unit": unit, "index": index,
                  "trials": int(message.get("trials", 0)),
                  "successes": int(message.get("successes", 0)),
                  "counts": message.get("counts")}
        fingerprint = batch_fingerprint(record)
        key = (unit, index)
        previous = self._fingerprints.get(key)
        if previous is not None and previous != fingerprint:
            self._protocol_conflict(att, message, key, previous,
                                    fingerprint)
            return
        self._fingerprints[key] = fingerprint
        # Absorption ignores token staleness on purpose: a zombie's
        # batches are identical by determinism (the fingerprint above
        # proves it), and the estimator dedupes by (unit, index) anyway.
        self._estimator.absorb(record)
        self._emit("progress", shard=shard, unit=unit, index=index,
                   trials=record["trials"],
                   successes=record["successes"])

    def _protocol_conflict(self, att: _Attachment,
                           message: Dict[str, Any],
                           key: Tuple[str, int], expected: str,
                           got: str) -> None:
        """Divergent batch counts: bundle the evidence, reject, serve on."""
        unit, index = key
        error = ProtocolError(
            f"conflicting progress for unit {unit!r} batch {index}: "
            f"fingerprint {got} contradicts previously accepted "
            f"{expected} — deterministic batches cannot diverge between "
            f"honest holders",
            context={"unit": unit, "batch": index,
                     "shard": message.get("shard"),
                     "token": int(message.get("token", 0))})
        if self.config.bundle_dir is not None:
            try:
                from repro.bundle import capture_bundle, protocol_outcome
                shard = message.get("shard")
                journals = {
                    os.path.basename(path): path
                    for path in fabric_journal_paths(self.fabric_dir)
                    if shard and os.path.basename(path).startswith(shard)}
                capture_bundle(
                    error, capture_point="coordinator.protocol",
                    out_dir=self.config.bundle_dir,
                    outcome=protocol_outcome(
                        error, message=message,
                        expected={"fingerprint": expected}),
                    journal_files=journals or None)
            except Exception:
                pass  # a lost bundle must never mask the conflict
        self._journal.append({
            "type": "protocol_conflict", "shard": message.get("shard"),
            "token": int(message.get("token", 0)), "unit": unit,
            "index": index})
        self._send(att, {
            "type": "reject", "for": "progress",
            "shard": message.get("shard"),
            "token": int(message.get("token", 0)), "code": error.code,
            "reason": str(error)})
        self._emit("protocol_conflict", unit=unit, index=index,
                   shard=message.get("shard"))

    def _handle_complete(self, att: _Attachment,
                         message: Dict[str, Any]) -> None:
        req = message.get("req")
        shard = message.get("shard")
        token = int(message.get("token", 0))
        paused = bool(message.get("paused", False))
        ack = {"type": "ok", "for": "complete", "re": req,
               "shard": shard, "token": token}
        lease = self.table.current(shard)
        accepted_already = lease is not None and lease.token == token \
            and (lease.state == COMPLETED
                 or (not lease.active and shard in self._paused_shards))
        if accepted_already:
            # Duplicated complete (at-least-once delivery): this exact
            # transition was already accepted — acknowledge and drop.
            # A lease that merely TTL-expired does NOT take this path:
            # it falls through to the fencing gate and is rejected.
            if att.granted == (shard, token):
                att.granted = None
            self._send(att, ack)
            return
        if paused and not self._stopped_globally:
            # An interruption pause (not the global early-stop): release
            # the lease cleanly so a resume re-grants it.  Pauses go
            # through the same fencing gate as completions — a
            # superseded or TTL-expired holder cannot even pause.
            try:
                self.table._checked(shard, token, "pause")
            except FabricError as exc:
                self._journal.append({
                    "type": "lease_rejected", "shard": shard,
                    "token": token, "code": exc.code,
                    "reason": str(exc)})
                if att.granted == (shard, token):
                    att.granted = None
                self._send(att, {
                    "type": "reject", "for": "complete", "re": req,
                    "shard": shard, "token": token, "code": exc.code,
                    "reason": str(exc)})
                self._emit("lease_rejected", shard=shard, token=token,
                           code=exc.code)
                return
            self.table.expire(shard, "drained (paused)")
            self._journal.append({"type": "lease_paused",
                                  "shard": shard, "token": token})
            self._paused_shards.add(shard)
            if att.granted == (shard, token):
                att.granted = None
            self._send(att, ack)
            self._emit("lease_paused", shard=shard, token=token)
            return
        try:
            self.table.complete(shard, token)
        except (StaleFencingToken, LeaseExpired) as exc:
            self._journal.append({
                "type": "lease_rejected", "shard": shard, "token": token,
                "code": exc.code, "reason": str(exc)})
            if att.granted == (shard, token):
                att.granted = None
            self._send(att, {
                "type": "reject", "for": "complete", "re": req,
                "shard": shard, "token": token, "code": exc.code,
                "reason": str(exc)})
            self._emit("lease_rejected", shard=shard, token=token,
                       code=exc.code)
            return
        except FabricError as exc:
            self._send(att, {
                "type": "reject", "for": "complete", "re": req,
                "shard": shard, "token": token, "code": exc.code,
                "reason": str(exc)})
            return
        self._journal.append({"type": "lease_completed", "shard": shard,
                              "token": token, "paused": paused})
        if att.granted == (shard, token):
            att.granted = None
        self._send(att, ack)
        self._emit("lease_completed", shard=shard, token=token,
                   paused=paused)

    # -- lease TTL / global stop -------------------------------------------

    def _expire_stalled(self) -> None:
        for shard in self.table.expired_shards():
            lease = self.table.current(shard)
            reason = (f"no heartbeat for {self.config.lease_ttl_s:.1f}s "
                      f"(token {lease.token})")
            self.table.expire(shard, reason)
            self._journal.append({"type": "lease_expired", "shard": shard,
                                  "token": lease.token, "reason": reason})
            for att in self._attachments:
                if att.granted == (shard, lease.token):
                    att.granted = None
            self._emit("lease_expired", shard=shard, token=lease.token,
                       reason=reason)

    def _tick_estimator(self) -> None:
        for cursor in self._cursors.values():
            for record in cursor.poll():
                self._estimator.absorb(record)
        if not self._stopped_globally and self._estimator.tight:
            estimate = self._estimator.estimate
            reason = (f"global early-stop: detection rate {estimate} "
                      f"after {estimate.trials} fleet-wide trials")
            self._stopped_globally = True
            self._journal.append({
                "type": "global_stop", "reason": reason,
                "estimate": {
                    "rate": estimate.rate, "low": estimate.low,
                    "high": estimate.high, "trials": estimate.trials,
                    "successes": estimate.successes}})
            self._emit("global_stop", reason=reason,
                       trials=estimate.trials)
            self._set_drain(reason)

    def _set_drain(self, reason: str) -> None:
        if not self._drain_reason:
            self._drain_reason = reason
        drain_path = self._path(CampaignFabric.DRAIN_FILE)
        if not os.path.exists(drain_path):
            atomic_write_text(drain_path, self._drain_reason)
        for att in list(self._attachments):
            self._send(att, {"type": "drain",
                             "reason": self._drain_reason})
        if not self._drain_announced:
            self._drain_announced = True
            self._emit("drain", reason=self._drain_reason)


def run_service_campaign(units: Sequence[WorkUnit], fabric_dir: str,
                         config: Optional[FabricConfig] = None,
                         worker_count: Optional[int] = None
                         ) -> FabricReport:
    """One-process service deployment: coordinator + attached workers.

    The drop-in service twin of
    :func:`~repro.inject.fabric.run_fabric_campaign`: same ``fabric_dir``
    layout, same merged report bytes — but the shards run in
    :class:`~repro.inject.worker.ShardWorker` threads attached over an
    in-process transport instead of forked holder processes.  Mostly a
    stepping stone to the socket deployment
    (``examples/fabric_service.py``) and the chaos tests, where the
    transport between the same two endpoints gets hostile.
    """
    from repro.inject.transport import InProcessTransport
    from repro.inject.worker import ShardWorker, WorkerConfig
    import threading

    transport = InProcessTransport()
    service = CoordinatorService(fabric_dir, config=config,
                                 listener=transport)
    service.submit(units)
    count = worker_count if worker_count is not None \
        else len(service.plan)
    workers = [ShardWorker(transport.connect,
                           worker_id=f"worker-{index:02d}",
                           config=WorkerConfig(seed=index))
               for index in range(max(1, count))]
    threads = [threading.Thread(target=worker.run,
                                name=worker.worker_id, daemon=True)
               for worker in workers]
    for thread in threads:
        thread.start()
    try:
        return service.serve()
    finally:
        transport.close()
        for thread in threads:
            thread.join(timeout=30.0)
