"""Supervision layer hardening the campaign engine for unattended runs.

The field study on long GPU error-measurement campaigns (PAPERS.md) found
that the *harness* — not the device under test — dominates lost trials:
runaway jobs, kill signals, crash-looping work, corrupted logs.  This
module supplies the campaign-side defenses, wired into
:class:`~repro.inject.engine.CampaignEngine` via its ``supervisor``
argument and switched on by default in every study entry point
(:func:`~repro.inject.campaign.run_full_campaign`,
:func:`~repro.experiments.figures_inject.run_injection_study`,
:func:`~repro.experiments.recovery_coverage.run_recovery_coverage_study`):

**Resource-governed workers.**  :class:`ResourceBudget` caps each batch
worker with ``resource.setrlimit`` — an address-space cap that turns
memory hogs into ``MemoryError`` and a CPU-seconds cap whose SIGXCPU
handler raises :class:`~repro.errors.ResourceExhausted` — and an optional
heartbeat pipe: a worker that stops beating (frozen, swapped out,
SIGSTOPped) is killed.  All three trip paths bin as the distinct
``resource_exhausted`` outcome instead of a generic crash.

**Poison-unit quarantine.**  A unit whose batch attempts fail
``quarantine_after`` consecutive times (counting retries) is moved to a
dead-letter list: the engine journals ``unit_quarantined`` with every
captured traceback, the campaign *continues* with the remaining units,
and :class:`~repro.inject.engine.CampaignReport` lists quarantined work
separately.  A later resume keeps dead-lettered units parked instead of
crash-looping them again.

**Signal-safe shutdown.**  :meth:`CampaignSupervisor.install` hooks
SIGTERM/SIGINT to request a *drain*: the in-flight batch gets
``drain_deadline_s`` seconds to finish (then its worker is killed and
nothing partial is journaled), a ``campaign_paused`` record is written,
and the engine returns a report with ``paused=True``.  Because batch
seeds are pure functions of ``(unit params, batch index)``, a resumed
campaign reaches final counts identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import math
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.errors import InjectionError, ResourceExhausted
from repro.inject.journal import atomic_write_text

_MB = 1024 * 1024


class LeaseHeartbeat:
    """Background thread renewing one fabric lease by beating to a file.

    A leased shard process proves liveness by atomically rewriting its
    heartbeat file every ``interval_s`` with a monotonically increasing
    beat counter, its fencing ``token``, and its pid.  The coordinator
    reads the counter (not wall-clock mtimes, which lie across clock
    steps) and expires the lease when it stops advancing for longer
    than the lease TTL; a beat carrying a superseded token is ignored
    outright, so a zombie holder can never keep its old lease alive.

    Atomicity comes from write-to-temp + ``os.replace`` — the reader
    sees either the previous beat or the new one, never a torn file.
    Use as a context manager so the thread always stops::

        with LeaseHeartbeat(path, token=3, interval_s=0.25):
            ...  # run the shard's campaign
    """

    def __init__(self, path: str, token: int, interval_s: float = 0.25):
        if interval_s <= 0:
            raise InjectionError(
                f"heartbeat interval_s must be positive, got {interval_s}")
        self.path = path
        self.token = token
        self.interval_s = interval_s
        self._beat = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def beats(self) -> int:
        """Beats written so far (monotonically increasing)."""
        return self._beat

    def beat_once(self) -> None:
        """Write one beat synchronously (also used by the loop)."""
        self._beat += 1
        payload = {"beat": self._beat, "token": self.token,
                   "pid": os.getpid()}
        # fsync=False: a beat lost to a crash is indistinguishable from
        # a beat never written, and the next interval rewrites it — the
        # durability tax would buy nothing.
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True),
                          fsync=False)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.beat_once()
            except OSError:
                pass  # a vanished fabric dir must not kill the shard
            self._stop.wait(self.interval_s)

    def start(self) -> "LeaseHeartbeat":
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop, daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LeaseHeartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def read_heartbeat(path: str) -> Optional[Dict[str, Any]]:
    """The latest beat payload at ``path``, or None if absent/torn."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


@dataclass(frozen=True)
class ResourceBudget:
    """Per-worker resource caps, applied inside the worker subprocess.

    ``max_rss_mb`` bounds the worker's address space (``RLIMIT_AS`` —
    the enforceable proxy for RSS on Linux, where ``RLIMIT_RSS`` is a
    no-op): allocations past the cap fail with ``MemoryError`` instead
    of dragging the host into swap.  ``max_cpu_s`` bounds CPU seconds
    (``RLIMIT_CPU``): the soft limit's SIGXCPU raises
    :class:`~repro.errors.ResourceExhausted` in the worker, and a hard
    limit one second later is the kernel's SIGKILL backstop.
    ``heartbeat_timeout_s`` (None disables monitoring) arms a heartbeat
    pipe: a daemon thread in the worker beats every
    ``heartbeat_interval_s``, and the engine kills any worker silent
    for longer than the timeout.  Budgets are a no-op under
    ``isolation="inline"`` (there is no subprocess to govern) and on
    platforms without the ``resource`` module.
    """

    max_rss_mb: Optional[float] = None
    max_cpu_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    heartbeat_interval_s: float = 0.05

    def __post_init__(self):
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise InjectionError(
                f"max_rss_mb must be positive (or None), got "
                f"{self.max_rss_mb}")
        if self.max_cpu_s is not None and self.max_cpu_s <= 0:
            raise InjectionError(
                f"max_cpu_s must be positive (or None), got "
                f"{self.max_cpu_s}")
        if self.heartbeat_interval_s <= 0:
            raise InjectionError(
                f"heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}")
        if self.heartbeat_timeout_s is not None and \
                self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise InjectionError(
                f"heartbeat_timeout_s ({self.heartbeat_timeout_s}) must "
                f"exceed heartbeat_interval_s "
                f"({self.heartbeat_interval_s})")

    @property
    def monitors_heartbeat(self) -> bool:
        return self.heartbeat_timeout_s is not None

    def apply(self) -> None:
        """Install the caps in the calling (worker) process."""
        try:
            import resource
        except ImportError:  # non-POSIX: budgets degrade to no-ops
            return
        if self.max_rss_mb is not None:
            _cap_rlimit(resource, resource.RLIMIT_AS,
                        int(self.max_rss_mb * _MB))
        if self.max_cpu_s is not None:
            soft = max(1, int(math.ceil(self.max_cpu_s)))
            _cap_rlimit(resource, resource.RLIMIT_CPU, soft, soft + 1)
            signal.signal(signal.SIGXCPU, _raise_cpu_exhausted)


def _cap_rlimit(resource, which: int, soft: int,
                hard: Optional[int] = None) -> None:
    """Lower ``which`` to ``soft`` without exceeding the current hard cap."""
    __, current_hard = resource.getrlimit(which)
    wanted_hard = soft if hard is None else hard
    if current_hard != resource.RLIM_INFINITY:
        wanted_hard = min(wanted_hard, current_hard)
        soft = min(soft, current_hard)
    resource.setrlimit(which, (soft, wanted_hard))


def _raise_cpu_exhausted(signum, frame) -> None:
    raise ResourceExhausted(
        "CPU budget exhausted (SIGXCPU from RLIMIT_CPU)")


@dataclass
class SupervisorConfig:
    """Policy knobs for one :class:`CampaignSupervisor`."""

    #: per-worker resource caps (None = ungoverned workers)
    budget: Optional[ResourceBudget] = None
    #: dead-letter a unit after this many consecutive failed batch
    #: attempts, counting retries (None = never quarantine: the first
    #: failed batch ends the unit as crashed/hung, PR 1 behavior)
    quarantine_after: Optional[int] = 5
    #: seconds an in-flight batch may keep running after a drain request
    #: before its worker is killed
    drain_deadline_s: float = 10.0
    #: hook SIGTERM/SIGINT while the supervisor is active (skipped
    #: automatically off the main thread, where CPython forbids it)
    install_signal_handlers: bool = True
    #: directory quarantine dead-letters are exported to as
    #: :mod:`repro.bundle` repro bundles (None = no capture; takes
    #: precedence over the engine's own ``bundle_dir`` for quarantines)
    bundle_dir: Optional[str] = None
    #: which signals request a drain
    signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)

    def __post_init__(self):
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise InjectionError(
                f"quarantine_after must be >= 1 (or None), got "
                f"{self.quarantine_after}")
        if self.drain_deadline_s <= 0:
            raise InjectionError(
                f"drain_deadline_s must be positive, got "
                f"{self.drain_deadline_s}")


class CampaignSupervisor:
    """Drain coordination + hardening policy for one or more engine runs.

    Use as a context manager (or via :meth:`run`) so the signal hooks
    are installed for exactly the supervised window and the previous
    handlers are always restored::

        supervisor = CampaignSupervisor(SupervisorConfig(
            budget=ResourceBudget(max_rss_mb=2048, max_cpu_s=300,
                                  heartbeat_timeout_s=30.0)))
        report = supervisor.run(units, journal_path="campaign.jsonl")
        if report.paused:
            ...  # re-invoke with the same journal to resume

    The supervisor is reusable: a drained instance can be
    :meth:`reset` and run again (the resume path of pause/resume tests
    does exactly that).
    """

    def __init__(self, config: Optional[SupervisorConfig] = None):
        self.config = config if config is not None else SupervisorConfig()
        self._drain = threading.Event()
        self._drain_reason = ""
        self._drained_at: Optional[float] = None
        self._previous: dict = {}

    # -- drain state -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once a drain was requested; the engine stops starting work."""
        return self._drain.is_set()

    @property
    def drain_reason(self) -> str:
        return self._drain_reason

    @property
    def drained_at(self) -> Optional[float]:
        """``time.monotonic()`` timestamp of the drain request, if any."""
        return self._drained_at

    def request_drain(self, reason: str = "drain requested") -> None:
        """Ask the engine to stop after the in-flight batch (idempotent)."""
        if not self._drain.is_set():
            self._drain_reason = reason
            self._drained_at = time.monotonic()
            self._drain.set()

    def reset(self) -> None:
        """Clear a previous drain so this supervisor can run again."""
        self._drain.clear()
        self._drain_reason = ""
        self._drained_at = None

    # -- lease heartbeats --------------------------------------------------

    def lease_heartbeat(self, path: str, token: int,
                        interval_s: float = 0.25) -> LeaseHeartbeat:
        """A started :class:`LeaseHeartbeat` proving this shard's liveness.

        The heartbeat keeps beating through a drain — liveness and
        progress are different claims, and a draining shard must not be
        mistaken for a dead one and have its lease stolen mid-pause.
        """
        return LeaseHeartbeat(path, token, interval_s).start()

    # -- signal hooks ------------------------------------------------------

    def _handle_signal(self, signum, frame) -> None:
        self.request_drain(f"signal {signal.Signals(signum).name}")

    def install(self) -> "CampaignSupervisor":
        """Hook the configured signals, remembering the old handlers."""
        if not self.config.install_signal_handlers:
            return self
        try:
            for signum in self.config.signals:
                self._previous[signum] = signal.signal(
                    signum, self._handle_signal)
        except ValueError:
            # signal.signal outside the main thread: run unhooked —
            # quarantine and resource budgets still apply, and callers
            # can request_drain() programmatically.
            for signum, handler in self._previous.items():
                signal.signal(signum, handler)  # pragma: no cover
            self._previous.clear()
        return self

    def uninstall(self) -> None:
        """Restore whatever handlers :meth:`install` displaced."""
        while self._previous:
            signum, handler = self._previous.popitem()
            signal.signal(signum, handler)

    def __enter__(self) -> "CampaignSupervisor":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- convenience -------------------------------------------------------

    def run(self, units: Sequence[Any], journal_path: Optional[str] = None,
            engine_config: Any = None):
        """Run ``units`` on a fresh supervised engine; returns its report."""
        from repro.inject.engine import CampaignEngine
        engine = CampaignEngine(engine_config, supervisor=self)
        with self:
            return engine.run(units, journal_path)


def coerce_supervisor(value: Union[None, bool, SupervisorConfig,
                                   CampaignSupervisor]
                      ) -> Optional[CampaignSupervisor]:
    """Normalize the ``supervisor=`` argument study entry points accept.

    ``None`` builds the default supervisor (every entry point is
    hardened for free), ``False`` disables supervision outright, a
    :class:`SupervisorConfig` is wrapped, and an existing
    :class:`CampaignSupervisor` passes through (so one supervisor can
    span several studies and share a single drain flag).
    """
    if value is None:
        return CampaignSupervisor()
    if value is False:
        return None
    if isinstance(value, SupervisorConfig):
        return CampaignSupervisor(value)
    if isinstance(value, CampaignSupervisor):
        return value
    raise InjectionError(
        f"supervisor must be None, False, a SupervisorConfig, or a "
        f"CampaignSupervisor, got {type(value).__name__}")
