"""Operand streams for fault injection (the "arithmetic value tracer").

Error severity depends on the data flowing through a unit (Section IV-A),
so the paper extracts operand traces from Rodinia with binary
instrumentation.  Here the GPU simulator's tracer
(:mod:`repro.gpu.tracing`) plays that role; this module defines the
trace container plus synthetic fallback streams with realistic value
distributions for running campaigns without a simulator trace.
"""

from __future__ import annotations

import math
import random
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import InjectionError

#: operand tuple kinds the six Figure 10 units consume
OPERAND_KINDS = ("int_add", "int_mad", "fp32_add", "fp32_mad",
                 "fp64_add", "fp64_mad")


@dataclass
class OperandTrace:
    """Recorded operand tuples per operation kind."""

    values: Dict[str, List[Tuple[int, ...]]] = field(default_factory=dict)

    def add(self, kind: str, operands: Tuple[int, ...]) -> None:
        if kind not in OPERAND_KINDS:
            raise InjectionError(f"unknown operand kind {kind!r}")
        self.values.setdefault(kind, []).append(operands)

    def sample(self, kind: str, count: int, seed: int = 0,
               fallback: bool = True) -> List[Tuple[int, ...]]:
        """Draw ``count`` random tuples of ``kind`` (with replacement)."""
        pool = self.values.get(kind, [])
        if not pool:
            if not fallback:
                raise InjectionError(f"no traced operands of kind {kind!r}")
            return synthetic_operands(kind, count, seed)
        rng = random.Random(seed)
        return [pool[rng.randrange(len(pool))] for _ in range(count)]

    def merge(self, other: "OperandTrace") -> None:
        for kind, tuples in other.values.items():
            self.values.setdefault(kind, []).extend(tuples)

    def __len__(self) -> int:
        return sum(len(tuples) for tuples in self.values.values())


def _float32_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _float64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _random_float(rng: random.Random) -> float:
    """A mixed-magnitude float: mostly moderate values, some extremes."""
    kind = rng.randrange(8)
    if kind == 0:
        return 0.0
    if kind == 1:
        return float(rng.randrange(-1000, 1000))
    if kind == 2:
        return rng.uniform(-1.0, 1.0)
    magnitude = math.exp(rng.uniform(-12.0, 12.0))
    return magnitude if rng.randrange(2) else -magnitude


def _random_int(rng: random.Random) -> int:
    """A mixed int: loop indices, addresses, and raw random words."""
    kind = rng.randrange(4)
    if kind == 0:
        return rng.randrange(0, 4096)  # index-like
    if kind == 1:
        return rng.randrange(0, 1 << 30) & ~0x3  # address-like
    if kind == 2:
        return rng.getrandbits(16)
    return rng.getrandbits(32)


def synthetic_operands(kind: str, count: int,
                       seed: int = 0) -> List[Tuple[int, ...]]:
    """Generate ``count`` operand tuples with workload-like distributions."""
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which would give every process a different
    # operand stream for the same seed and break cross-process
    # campaign reproducibility (journal resume, shard merges).
    rng = random.Random((zlib.crc32(kind.encode("ascii")) & 0xFFFF) ^ seed)
    out: List[Tuple[int, ...]] = []
    for _ in range(count):
        if kind == "int_add":
            out.append((_random_int(rng), _random_int(rng)))
        elif kind == "int_mad":
            out.append((_random_int(rng) & 0xFFFF, _random_int(rng),
                        _random_int(rng) | (_random_int(rng) << 32)))
        elif kind == "fp32_add":
            out.append((_float32_bits(_random_float(rng)),
                        _float32_bits(_random_float(rng))))
        elif kind == "fp32_mad":
            out.append(tuple(_float32_bits(_random_float(rng))
                             for _ in range(3)))
        elif kind == "fp64_add":
            out.append((_float64_bits(_random_float(rng)),
                        _float64_bits(_random_float(rng))))
        elif kind == "fp64_mad":
            out.append(tuple(_float64_bits(_random_float(rng))
                             for _ in range(3)))
        else:
            raise InjectionError(f"unknown operand kind {kind!r}")
    return out
