"""Attachable shard worker for the network-attached campaign coordinator.

The service-mode counterpart of :func:`~repro.inject.fabric._shard_entry`:
instead of being forked by the coordinator, a :class:`ShardWorker` *dials*
a :mod:`repro.inject.transport` endpoint, attaches, and runs whatever
shard it is granted under the existing supervised
:class:`~repro.inject.engine.CampaignEngine` — same lease journal, same
drain semantics, same durable records, which is what keeps the service
deployment's merged report byte-identical to the local fabric's.

Chaos-hardening lives here, not in the engine:

* **Reconnect with capped, jittered backoff.**  Every dial failure or
  dropped connection retries through the engine's own
  :func:`~repro.inject.engine._retry_delay` curve (``backoff_s``
  doubling to ``backoff_max_s``, jitter a pure function of
  ``(seed, attempt)``), so a fleet of workers losing the same
  coordinator desynchronizes its reconnect storm deterministically.
* **Fencing re-validation after every reconnect.**  A worker that comes
  back mid-shard sends ``reattach`` with its shard + token; only an
  ``ok`` resumes streaming.  A ``reject`` means the lease was stolen
  while it was gone — the worker abandons the shard (drains its engine
  at the next safe point and never sends a completion), exactly the
  zombie the fencing rule exists for.
* **Resume from its own journal.**  The engine replays the lease
  journal before running, so a reconnect-resume (or a re-grant of the
  same shard to this worker under a fresh token, rebased from its prior
  journal) redoes no completed batch.

The worker also leaves a durable trace of its connection history in the
lease journal: a ``worker_attached`` record (with the dial attempt count
that grant cost) before the engine starts, and a ``worker_detached``
record (with cumulative reconnect attempts) after it stops.  Both are
ignored by replay/rebase/merge — forensic, not load-bearing.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (FabricConfigError, FrameError, TransportClosed,
                          TransportError)
from repro.inject.coordinator import unwire_unit
from repro.inject.engine import (CampaignEngine, EngineConfig, _retry_delay)
from repro.inject.journal import Journal, JournalCursor
from repro.inject.supervisor import CampaignSupervisor, SupervisorConfig


@dataclass
class WorkerConfig:
    """Policy knobs for one attachable shard worker."""

    #: deterministic jitter seed for the reconnect backoff curve
    seed: int = 0
    #: first reconnect delay; doubles per attempt (engine retry curve)
    backoff_s: float = 0.05
    #: backoff saturation — no reconnect ever waits longer than this
    backoff_max_s: float = 2.0
    #: give up on the coordinator after this many consecutive failed
    #: dial-or-reattach attempts
    max_reconnect_attempts: int = 5
    #: how long to wait for a reply before resending a request
    request_timeout_s: float = 2.0
    #: resend a request this many times before treating the connection
    #: as lost (at-least-once delivery against frame drops)
    max_request_resends: int = 3
    #: fallback heartbeat cadence when a grant does not specify one
    heartbeat_interval_s: float = 0.25
    #: pump-thread poll cadence (inbound frames + journal cursor)
    poll_interval_s: float = 0.05
    #: supervisor policy for the engine runs (None = defaults)
    supervisor: Optional[SupervisorConfig] = None

    def __post_init__(self):
        if self.backoff_s <= 0 or self.backoff_max_s <= 0:
            raise FabricConfigError(
                f"worker backoff_s/backoff_max_s must be positive, got "
                f"{self.backoff_s}/{self.backoff_max_s}")
        if self.max_reconnect_attempts < 1:
            raise FabricConfigError(
                f"max_reconnect_attempts must be >= 1, got "
                f"{self.max_reconnect_attempts}")
        if self.request_timeout_s <= 0:
            raise FabricConfigError(
                f"request_timeout_s must be positive, got "
                f"{self.request_timeout_s}")
        if self.max_request_resends < 1:
            raise FabricConfigError(
                f"max_request_resends must be >= 1, got "
                f"{self.max_request_resends}")


@dataclass
class WorkerReport:
    """What one worker did before detaching."""

    worker_id: str
    #: one entry per grant handled: shard, token, outcome
    #: ("completed" / "paused" / "abandoned" / "rejected" / "lost")
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: cumulative dial attempts across the worker's lifetime
    reconnect_attempts: int = 0
    #: why the worker stopped attaching
    reason: str = ""
    #: True when the worker stopped with shard work left unfinished
    paused: bool = False


class ShardWorker:
    """One attachable lease holder: dial, attach, run, complete, repeat.

    ``dial`` is any zero-argument callable returning a
    :class:`~repro.inject.transport.Connection` — ``transport.connect``
    for the in-process transport, ``lambda: unix_connect(path)`` for a
    socket, or a :class:`~repro.inject.transport.ChaosDialer` wrapping
    either in the chaos tests.
    """

    def __init__(self, dial: Callable[[], Any], worker_id: str = "worker-0",
                 config: Optional[WorkerConfig] = None):
        self.dial = dial
        self.worker_id = worker_id
        self.config = config if config is not None else WorkerConfig()
        self._conn = None
        self._nonces = itertools.count(1)
        #: cumulative dial attempts (surfaced in worker_detached records
        #: and the final WorkerReport)
        self.reconnect_attempts = 0
        #: dial attempts the most recent successful connection cost
        self._last_connect_attempts = 0

    # -- connection management ---------------------------------------------

    def _nonce(self) -> str:
        return f"{self.worker_id}:{next(self._nonces)}"

    def _sleep_backoff(self, attempt: int) -> None:
        time.sleep(_retry_delay(self.config, self.config.seed, attempt))

    def _connect_with_backoff(self) -> bool:
        """(Re)dial the coordinator; False when attempts are exhausted."""
        if self._conn is not None and not self._conn.closed:
            return True
        for attempt in range(1, self.config.max_reconnect_attempts + 1):
            self.reconnect_attempts += 1
            if attempt > 1:
                self._sleep_backoff(attempt - 1)
            try:
                self._conn = self.dial()
                self._last_connect_attempts = attempt
                return True
            except (TransportError, OSError):
                self._conn = None
        return False

    def _request(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Send a request at-least-once and await its reply.

        Each resend carries a fresh ``req`` nonce and only a reply
        echoing the *current* nonce (or a broadcast ``done``/``drain``,
        which ends the conversation regardless) is accepted — stale
        replies to earlier resends are discarded.  Returns ``None``
        when the connection died or every resend went unanswered.
        """
        if self._conn is None or self._conn.closed:
            return None
        for _ in range(self.config.max_request_resends):
            req = self._nonce()
            framed = dict(message)
            framed["req"] = req
            try:
                self._conn.send(framed)
            except (TransportClosed, FrameError):
                return None
            deadline = time.monotonic() + self.config.request_timeout_s
            while time.monotonic() < deadline:
                try:
                    reply = self._conn.recv(
                        timeout=self.config.poll_interval_s)
                except (TransportClosed, FrameError):
                    return None
                if reply is None:
                    continue
                kind = reply.get("type")
                if kind in ("done", "drain"):
                    return reply
                if reply.get("re") == req:
                    return reply
                # a reply to a superseded resend, or an unsolicited
                # frame (late ok/reject): drop and keep waiting
        return None

    # -- main loop ---------------------------------------------------------

    def run(self) -> WorkerReport:
        """Attach and run granted shards until the coordinator is done."""
        report = WorkerReport(worker_id=self.worker_id)
        unanswered = 0
        try:
            while True:
                if not self._connect_with_backoff():
                    report.reason = "coordinator unreachable"
                    report.paused = bool(self._open_outcomes(report))
                    break
                reply = self._request({"type": "attach",
                                       "worker": self.worker_id})
                if reply is None:
                    # dialable but mute (e.g. a coordinator that exited
                    # between our dial and our attach): bounded retries,
                    # not an infinite re-dial loop
                    unanswered += 1
                    if self._conn is not None:
                        try:
                            self._conn.close()
                        except OSError:
                            pass
                        self._conn = None
                    if unanswered > self.config.max_reconnect_attempts:
                        report.reason = "coordinator unresponsive"
                        report.paused = bool(self._open_outcomes(report))
                        break
                    continue
                unanswered = 0
                kind = reply.get("type")
                if kind == "done":
                    report.reason = reply.get("reason", "job done")
                    break
                if kind == "drain":
                    report.reason = reply.get("reason", "fleet drain")
                    report.paused = True
                    break
                if kind == "wait":
                    time.sleep(float(reply.get(
                        "retry_s", self.config.poll_interval_s)))
                    continue
                if kind != "grant":
                    continue
                outcome, drain_reason = self._run_shard(reply)
                report.shards.append({
                    "shard": reply.get("shard"),
                    "token": int(reply.get("token", 0)),
                    "outcome": outcome})
                if outcome == "lost":
                    report.reason = drain_reason or "coordinator lost"
                    report.paused = True
                    break
                if outcome == "paused":
                    report.reason = drain_reason or "fleet drain"
                    report.paused = True
                    break
        finally:
            self._goodbye()
        report.reconnect_attempts = self.reconnect_attempts
        return report

    @staticmethod
    def _open_outcomes(report: WorkerReport) -> List[Dict[str, Any]]:
        return [entry for entry in report.shards
                if entry["outcome"] not in ("completed",)]

    def _goodbye(self) -> None:
        if self._conn is None:
            return
        try:
            self._conn.send({"type": "goodbye",
                             "worker": self.worker_id})
        except (TransportClosed, FrameError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self._conn = None

    # -- one granted shard -------------------------------------------------

    def _run_shard(self, grant: Dict[str, Any]):
        """Run one granted shard to its terminal outcome.

        Returns ``(outcome, drain_reason)`` where outcome is
        ``completed`` (the coordinator acknowledged the completion) /
        ``paused`` (a coordinator drain stopped it) / ``abandoned``
        (lease lost to a steal, or the job ended without acknowledging
        this shard's completion) / ``rejected`` (completion refused by
        the fencing gate) / ``lost`` (coordinator unreachable).
        """
        shard = grant["shard"]
        token = int(grant["token"])
        journal_path = grant["journal"]
        header = dict(grant.get("header") or {})
        units = [unwire_unit(encoded) for encoded in grant["units"]]
        engine_config = EngineConfig(**dict(grant["engine"]))
        interval = float(grant.get("heartbeat_interval_s",
                                   self.config.heartbeat_interval_s))
        # durable connection forensics: which worker ran this lease and
        # how many dial attempts the grant cost (ignored by replay,
        # rebase, and merge — the records are not in their vocabulary)
        journal = Journal(journal_path, header=header)
        journal.append({"type": "worker_attached",
                        "worker": self.worker_id, "shard": shard,
                        "token": token,
                        "attempts": self._last_connect_attempts})
        journal.close()
        state = {"drain": None, "lost": False, "stop": False}
        supervisor = CampaignSupervisor(
            self.config.supervisor if self.config.supervisor is not None
            else SupervisorConfig(install_signal_handlers=False))
        engine = CampaignEngine(engine_config, supervisor=supervisor,
                                drain_hook=lambda: state["drain"])
        pump = threading.Thread(
            target=self._pump, name=f"{self.worker_id}-pump",
            args=(shard, token, journal_path, interval, state),
            daemon=True)
        pump.start()
        try:
            with supervisor:
                engine_report = engine.run(units, journal_path,
                                           journal_header=header)
        finally:
            state["stop"] = True
            pump.join(timeout=30.0)
        journal = Journal(journal_path, header=header)
        journal.append({"type": "worker_detached",
                        "worker": self.worker_id, "shard": shard,
                        "token": token,
                        "reconnects": self.reconnect_attempts})
        journal.close()
        if state["lost"]:
            # Fencing told us mid-run that the lease is gone: the shard
            # belongs to someone else now.  Every durable batch stays in
            # our journal for the thief's rebase; claiming completion
            # would only be rejected.
            return "abandoned", state["drain"]
        reply = self._request({"type": "complete", "shard": shard,
                               "token": token,
                               "paused": bool(engine_report.paused)})
        if reply is None:
            # one full reconnect cycle before giving the shard up
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None
            if self._connect_with_backoff():
                reply = self._request({"type": "complete", "shard": shard,
                                       "token": token,
                                       "paused": bool(
                                           engine_report.paused)})
        if reply is None:
            return "lost", state["drain"]
        kind = reply.get("type")
        if kind == "reject":
            return "rejected", state["drain"]
        if kind in ("done", "drain"):
            # The job ended before (or instead of) acknowledging this
            # completion — e.g. the lease was silently stolen while we
            # were partitioned and the thief finished the job.  Whether
            # our batches were credited is the merge's business; only a
            # coordinator-acknowledged ``ok`` may claim "completed".
            state["drain"] = state["drain"] or reply.get("reason") or kind
            return "abandoned", state["drain"]
        if engine_report.paused:
            return "paused", state["drain"]
        return "completed", state["drain"]

    # -- the pump thread ---------------------------------------------------

    def _progress_message(self, shard: str, token: int,
                          record: Dict[str, Any]) -> Dict[str, Any]:
        return {"type": "progress", "shard": shard, "token": token,
                "unit": record.get("unit"),
                "index": record.get("index"),
                "trials": record.get("trials", 0),
                "successes": record.get("successes", 0),
                "counts": record.get("counts")}

    def _pump(self, shard: str, token: int, journal_path: str,
              interval: float, state: Dict[str, Any]) -> None:
        """Heartbeats out, progress out, drain/reject in — while the
        engine runs in the main thread.

        Owns ``self._conn`` for the duration: on a torn connection it
        re-dials with capped backoff and **re-validates the fencing
        token** with a ``reattach`` before resuming; a rejection flips
        ``state['lost']`` and drains the engine at its next safe point.
        """
        cursor = JournalCursor(journal_path)
        beat = 0
        next_beat = 0.0
        while not state["stop"]:
            now = time.monotonic()
            try:
                if now >= next_beat:
                    beat += 1
                    self._conn.send({"type": "heartbeat", "shard": shard,
                                     "token": token, "beat": beat})
                    next_beat = now + interval
                for record in cursor.poll():
                    if record.get("type") == "batch":
                        self._conn.send(self._progress_message(
                            shard, token, record))
                message = self._conn.recv(
                    timeout=min(interval, self.config.poll_interval_s))
            except (TransportClosed, FrameError):
                if not self._reestablish(shard, token, state):
                    return
                continue
            if message is None:
                continue
            kind = message.get("type")
            if kind == "drain":
                state["drain"] = message.get("reason") \
                    or "coordinator drain"
            elif kind == "done":
                state["drain"] = message.get("reason") or "job done"
            elif kind == "reject":
                if message.get("shard") == shard and \
                        int(message.get("token", -1)) == token:
                    state["drain"] = (f"lease lost: "
                                      f"{message.get('reason')}")
                    state["lost"] = True
                    return
            # ok / anything else: ignore

    def _reestablish(self, shard: str, token: int,
                     state: Dict[str, Any]) -> bool:
        """Reconnect mid-shard and re-validate our fencing token."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        for attempt in range(1, self.config.max_reconnect_attempts + 1):
            if state["stop"]:
                return False
            self.reconnect_attempts += 1
            self._sleep_backoff(attempt)
            try:
                conn = self.dial()
            except (TransportError, OSError):
                continue
            req = self._nonce()
            try:
                conn.send({"type": "reattach", "worker": self.worker_id,
                           "shard": shard, "token": token, "req": req})
            except (TransportClosed, FrameError):
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            reply = self._await_reply(conn, req)
            if reply is None:
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            kind = reply.get("type")
            if kind == "ok":
                self._conn = conn
                self._last_connect_attempts = attempt
                return True
            if kind in ("done", "drain"):
                state["drain"] = reply.get("reason") or "fleet drain"
                self._conn = conn
                return True
            if kind == "reject":
                # fencing re-validation failed: the lease was stolen
                # while we were gone — abandon the shard, keep the
                # connection for the next attach
                state["drain"] = f"lease lost: {reply.get('reason')}"
                state["lost"] = True
                self._conn = conn
                return False
        state["drain"] = "reconnect attempts exhausted"
        state["lost"] = True
        return False

    def _await_reply(self, conn, req: str) -> Optional[Dict[str, Any]]:
        deadline = time.monotonic() + self.config.request_timeout_s
        while time.monotonic() < deadline:
            try:
                reply = conn.recv(timeout=self.config.poll_interval_s)
            except (TransportClosed, FrameError):
                return None
            if reply is None:
                continue
            if reply.get("type") in ("done", "drain") or \
                    reply.get("re") == req:
                return reply
        return None
