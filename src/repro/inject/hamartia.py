"""Hamartia-style gate-level single-event fault injection (Section IV-A).

The paper's methodology: for every input pair, randomly inject single-event
transients (one gate or flip-flop output flip) until one corrupts the unit
output — i.e. study the distribution of *unmasked* errors, one per input
pair, with the fault site uniform over the sites that are unmasked for that
input.

The bit-parallel simulator lets us evaluate one fault site across every
input sample in a single fan-out-cone sweep, so the campaign loops over
(possibly subsampled) fault sites and maintains, per input sample, a
uniform reservoir over the unmasked sites seen — exactly the conditional
distribution the paper samples, computed for all inputs at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import InjectionError
from repro.gates.netlist import Netlist


@dataclass(frozen=True)
class InjectionRecord:
    """One unmasked injection: where it struck and what it did."""

    site: int
    pattern: int  # XOR of faulty vs golden output
    golden: int   # fault-free output value


@dataclass
class CampaignResult:
    """Outcome of a fault-injection campaign over one arithmetic unit."""

    unit_name: str
    output_bits: int
    sample_count: int
    sites_evaluated: int
    #: per input sample, one unmasked injection (None if every evaluated
    #: site was masked for that input)
    chosen: List[Optional[InjectionRecord]]
    #: per input sample, number of evaluated sites that were unmasked
    unmasked_site_counts: List[int]
    #: per input sample, counts of unmasked patterns by severity class
    class_counts: List[Dict[str, int]]

    @property
    def records(self) -> List[InjectionRecord]:
        """The unmasked injections, one per input pair that produced one."""
        return [record for record in self.chosen if record is not None]

    @property
    def masked_input_fraction(self) -> float:
        """Inputs for which every evaluated site was masked."""
        if not self.chosen:
            return 0.0
        missing = sum(1 for record in self.chosen if record is None)
        return missing / len(self.chosen)

    def to_dict(self) -> Dict:
        """JSON-serializable form (the campaign engine journals these)."""
        return {
            "unit_name": self.unit_name,
            "output_bits": self.output_bits,
            "sample_count": self.sample_count,
            "sites_evaluated": self.sites_evaluated,
            "chosen": [None if record is None
                       else [record.site, record.pattern, record.golden]
                       for record in self.chosen],
            "unmasked_site_counts": list(self.unmasked_site_counts),
            "class_counts": [dict(counts) for counts in self.class_counts],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignResult":
        return cls(
            unit_name=payload["unit_name"],
            output_bits=payload["output_bits"],
            sample_count=payload["sample_count"],
            sites_evaluated=payload["sites_evaluated"],
            chosen=[None if item is None else InjectionRecord(*item)
                    for item in payload["chosen"]],
            unmasked_site_counts=list(payload["unmasked_site_counts"]),
            class_counts=[dict(counts)
                          for counts in payload["class_counts"]])


def merge_results(parts: Sequence[CampaignResult]) -> CampaignResult:
    """Concatenate per-batch campaign results over the same unit.

    Batches sweep independently subsampled fault-site sets, so the merged
    ``sites_evaluated`` reports the largest single-batch sweep while the
    per-sample statistics simply concatenate.
    """
    if not parts:
        raise InjectionError("cannot merge zero campaign results")
    first = parts[0]
    for part in parts[1:]:
        if part.unit_name != first.unit_name or \
                part.output_bits != first.output_bits:
            raise InjectionError(
                f"cannot merge campaigns over different units: "
                f"{first.unit_name!r} vs {part.unit_name!r}")
    return CampaignResult(
        unit_name=first.unit_name,
        output_bits=first.output_bits,
        sample_count=sum(part.sample_count for part in parts),
        sites_evaluated=max(part.sites_evaluated for part in parts),
        chosen=[record for part in parts for record in part.chosen],
        unmasked_site_counts=[count for part in parts
                              for count in part.unmasked_site_counts],
        class_counts=[dict(counts) for part in parts
                      for counts in part.class_counts])


def classify_severity(pattern: int) -> str:
    """Figure 10's three severity classes, by erroneous output bit count."""
    bits = pattern.bit_count()
    if bits == 0:
        raise InjectionError("masked pattern has no severity class")
    if bits == 1:
        return "1"
    if bits <= 3:
        return "2-3"
    return ">=4"


SEVERITY_CLASSES = ("1", "2-3", ">=4")


class FaultInjector:
    """Runs single-event injection campaigns on one netlist output."""

    def __init__(self, netlist: Netlist, output: str = None):
        self.netlist = netlist
        if output is None:
            if len(netlist.output_buses) != 1:
                raise InjectionError(
                    f"netlist has outputs {sorted(netlist.output_buses)}; "
                    f"specify one")
            output = next(iter(netlist.output_buses))
        if output not in netlist.output_buses:
            raise InjectionError(f"unknown output bus {output!r}")
        self.output = output
        self.output_bus = netlist.output_buses[output]

    def run(self, samples: Dict[str, Sequence[int]],
            site_count: Optional[int] = None,
            seed: int = 0) -> CampaignResult:
        """Inject at (up to) ``site_count`` random sites across all samples.

        ``samples`` maps input bus names to equal-length value sequences.
        ``site_count=None`` evaluates every fault site (exact conditional
        distribution); smaller counts subsample sites uniformly, which is
        how large units stay tractable.
        """
        rng = random.Random(seed)
        packed = self.netlist.pack_inputs(samples)
        baseline = self.netlist.evaluate(packed)
        sample_count = packed.sample_count

        sites = self.netlist.fault_sites()
        if site_count is not None and site_count < len(sites):
            sites = rng.sample(sites, site_count)

        chosen: List[Optional[InjectionRecord]] = [None] * sample_count
        unmasked_counts = [0] * sample_count
        class_counts = [dict.fromkeys(SEVERITY_CLASSES, 0)
                        for _ in range(sample_count)]
        golden = [self.netlist.read_bus(baseline, self.output_bus, index)
                  for index in range(sample_count)]
        output_set = set(self.output_bus)

        for site in sites:
            changed = self.netlist.evaluate_with_fault(packed, baseline, site)
            if not output_set.intersection(changed):
                continue
            # Per-bit delta masks tell us which samples saw which flipped
            # output bits.
            affected = 0
            deltas = []
            for net in self.output_bus:
                delta = changed.get(net, baseline[net]) ^ baseline[net]
                deltas.append(delta)
                affected |= delta
            index = 0
            remaining = affected
            while remaining:
                if remaining & 1:
                    pattern = 0
                    for bit, delta in enumerate(deltas):
                        if (delta >> index) & 1:
                            pattern |= 1 << bit
                    unmasked_counts[index] += 1
                    class_counts[index][classify_severity(pattern)] += 1
                    # Reservoir sampling: keep each unmasked site with
                    # probability 1/n so the kept site is uniform.
                    if rng.randrange(unmasked_counts[index]) == 0:
                        chosen[index] = InjectionRecord(
                            site=site, pattern=pattern, golden=golden[index])
                remaining >>= 1
                index += 1

        return CampaignResult(
            unit_name=self.netlist.name,
            output_bits=len(self.output_bus),
            sample_count=sample_count,
            sites_evaluated=len(sites),
            chosen=chosen,
            unmasked_site_counts=unmasked_counts,
            class_counts=class_counts)
