"""Append-only, tamper-evident JSONL journal behind the campaign engine.

Every work-unit lifecycle event — ``unit_started``, one ``batch`` per
completed batch of injections, a terminal ``unit_done`` (or
``unit_quarantined`` for dead-lettered units), and ``campaign_paused``
when a drain request stops the run — is appended as one JSON line and
flushed immediately, so a campaign killed at any point leaves a prefix of
valid records (plus at most one torn final line, which replay ignores).
Re-running the engine against the same journal path replays that prefix:
finished units are skipped outright and a unit interrupted mid-sweep
resumes after its last journaled batch.

Two integrity fields make the journal *tamper-evident* rather than merely
append-only:

``rix``
    a running record index (0 for the campaign header, incrementing by
    one per record).  A gap or repeat means records were dropped,
    reordered, or spliced in.
``crc``
    the CRC32 of the record's canonical JSON serialization (sorted keys,
    ``rix`` included, ``crc`` itself excluded).  One flipped byte in a
    record fails the check.

:meth:`JournalState.load` streams the file line by line (multi-GB
journals never load into memory) and verifies both fields on every
record that carries them; records written before the fields existed are
accepted unverified, so old journals stay resumable.  Anomalies on the
*final* line are the expected signature of a kill mid-append and are
tolerated; anomalies earlier in the file raise ``InjectionError`` with
the offending ``file:line`` — unless ``salvage=True``, which truncates
the replayed state at the first bad record so one flipped byte costs the
batches after it rather than the whole campaign (the engine's
deterministic batch seeds re-derive the lost records exactly).

The journal is the single source of truth for resume; the engine never
keeps checkpoint state anywhere else.

The distributed fabric (:mod:`repro.inject.fabric`) layers two additions
on the same format: the campaign header can carry *shard identity*
fields (``shard``, ``token``, ``shard_count``) that a writer refuses to
append across, and :class:`JournalCursor` tails a growing shard journal
incrementally so the coordinator's global estimator never re-reads
records it already verified.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import InjectionError

#: journal schema version, bumped on incompatible record changes
#: (``crc``/``rix`` are additive and verified only when present, so they
#: did not bump the version)
JOURNAL_VERSION = 1


def _canonical(record: Dict[str, Any]) -> str:
    """The serialization the CRC is computed over (and what is written)."""
    return json.dumps(record, sort_keys=True)


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (temp + ``os.replace``).

    The shared primitive behind every small control file the fabric
    readers poll concurrently — drain broadcasts, lease heartbeats: a
    reader sees either the previous content or the new content, never a
    torn write.  With ``fsync`` (the default) the data is flushed to
    disk before the rename, so a crash straddling the replace cannot
    publish an empty file under the final name.
    """
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(temp, path)


@dataclass
class _ScanResult:
    """What one streaming pass over a journal file found."""

    #: complete, verified records seen (== the next record's ``rix``)
    records: int = 0
    #: lines that failed JSON decoding or an integrity check
    corrupt_lines: int = 0
    #: byte offset where a torn/corrupt tail starts (writer repair point)
    truncate_at: Optional[int] = None
    #: 1-based line number where a salvage stop happened, if any
    salvaged_line: Optional[int] = None
    #: journal lines lost to a salvage truncation (the bad line plus
    #: everything after it; 0 when no salvage stop happened)
    dropped_lines: int = 0
    #: whether the file's last byte is a newline (safe to append after)
    ends_with_newline: bool = True


def _scan_journal(path: str, salvage: bool = False,
                  absorb: Optional[Callable[[Dict[str, Any]], None]] = None
                  ) -> _ScanResult:
    """Stream ``path`` once, verifying and optionally absorbing records.

    Raises :class:`InjectionError` (with ``file:line``) on a mid-file
    anomaly unless ``salvage`` is set, in which case the scan stops at
    the first bad record and reports where.  Final-line anomalies — the
    torn tail a kill mid-append leaves — are tolerated in both modes.
    """
    result = _ScanResult()
    with open(path, "rb") as handle:
        pending: Optional[tuple] = None
        offset = 0
        number = 0
        for raw in handle:
            if pending is not None:
                if not _scan_line(path, result, salvage, absorb,
                                  *pending, is_last=False):
                    # salvage stop: tally what the truncation costs (the
                    # bad line itself plus every line after it)
                    result.dropped_lines = 1 + (1 if raw.strip() else 0) \
                        + sum(1 for rest in handle if rest.strip())
                    return result
            pending = (number, offset, raw)
            offset += len(raw)
            number += 1
        if pending is not None:
            result.ends_with_newline = pending[2].endswith(b"\n")
            _scan_line(path, result, salvage, absorb, *pending,
                       is_last=True)
    return result


def _scan_line(path: str, result: _ScanResult, salvage: bool,
               absorb: Optional[Callable[[Dict[str, Any]], None]],
               number: int, offset: int, raw: bytes,
               is_last: bool) -> bool:
    """Verify one line; returns False when a salvage stop should end the scan."""
    text = raw.decode("utf-8", errors="replace").strip()
    if not text:
        return True

    def bad(what: str) -> bool:
        result.corrupt_lines += 1
        if is_last:
            # The expected signature of a kill mid-append: tolerate and
            # remember where the tail starts so a writer can repair it.
            result.truncate_at = offset
            return True
        if salvage:
            result.salvaged_line = number + 1
            result.truncate_at = offset
            return False
        raise InjectionError(
            f"{path}:{number + 1}: {what} before the final line; "
            f"pass salvage=True to resume from the last good record")

    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return bad("corrupt journal record")
    if not isinstance(record, dict):
        return bad("non-object journal record")
    stored_crc = record.pop("crc", None)
    if stored_crc is not None and \
            stored_crc != zlib.crc32(_canonical(record).encode("utf-8")):
        return bad("journal record failed its CRC32 check")
    rix = record.get("rix")
    if rix is not None and rix != result.records:
        return bad(f"journal record index {rix} != expected "
                   f"{result.records} (records dropped or spliced)")
    if absorb is not None:
        absorb(record)
    result.records += 1
    return True


class Journal:
    """Append-only writer for one campaign's JSONL journal.

    Opening an existing non-empty journal validates it before the first
    append: the header (``campaign``/version record) must parse and match
    :data:`JOURNAL_VERSION`, every record's CRC/index must verify (with
    ``salvage=True`` the file is physically truncated at the first bad
    record instead), and a torn final line left by a kill mid-append is
    truncated away so new records never merge into it.
    """

    def __init__(self, path: str, fsync: bool = False,
                 salvage: bool = False,
                 header: Optional[Dict[str, Any]] = None):
        self.path = path
        self.fsync = fsync
        self.header = dict(header) if header else {}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._rix = 0
        needs_newline = False
        #: the typed ``journal_salvaged`` event this writer appended when
        #: opening truncated complete records away (None = clean open or
        #: only a torn final line, which costs nothing)
        self.salvage_event: Optional[Dict[str, Any]] = None
        salvage_event: Optional[Dict[str, Any]] = None
        if not fresh:
            scan = self._validate_existing(salvage)
            self._rix = scan.records
            if scan.truncate_at is not None:
                os.truncate(path, scan.truncate_at)
            elif not scan.ends_with_newline:
                needs_newline = True
            if scan.salvaged_line is not None:
                salvage_event = {
                    "dropped_records": scan.dropped_lines,
                    "last_good_rix": scan.records - 1,
                    "corrupt_line": scan.salvaged_line}
        self._handle = open(path, "a", encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
        if fresh:
            self.append({"type": "campaign", "version": JOURNAL_VERSION,
                         **self.header})
        elif salvage_event is not None:
            # a durable account of the data loss: how many records the
            # truncation dropped and where the replayable prefix ends,
            # so reports (and merges) can surface the salvage instead of
            # silently re-deriving the lost batches
            self.salvage_event = dict(salvage_event)
            self.append({"type": "journal_salvaged", **salvage_event})

    def _validate_existing(self, salvage: bool) -> _ScanResult:
        header: List[Dict[str, Any]] = []

        def check_header(record: Dict[str, Any]) -> None:
            if header:
                return
            header.append(record)
            if record.get("type") != "campaign":
                raise InjectionError(
                    f"{self.path}: not a campaign journal (first record "
                    f"is {record.get('type')!r}, expected 'campaign'); "
                    f"refusing to append")
            version = record.get("version")
            if version != JOURNAL_VERSION:
                raise InjectionError(
                    f"{self.path}: journal schema version {version!r} "
                    f"does not match this engine's {JOURNAL_VERSION}; "
                    f"refusing to append mixed-schema records")
            for key, wanted in self.header.items():
                if record.get(key) != wanted:
                    # Shard/fencing identity is part of the header: a
                    # writer opened for lease token t must never append
                    # into another lease's journal.
                    raise InjectionError(
                        f"{self.path}: journal header {key}="
                        f"{record.get(key)!r} does not match this "
                        f"writer's {key}={wanted!r}; refusing to append "
                        f"across shard/lease identities")

        return _scan_journal(self.path, salvage=salvage,
                             absorb=check_header)

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a CRC-sealed JSON line and flush it."""
        if "type" not in record:
            raise InjectionError("journal records need a 'type' field")
        record = dict(record)
        record["rix"] = self._rix
        record["crc"] = zlib.crc32(_canonical(record).encode("utf-8"))
        self._handle.write(_canonical(record) + "\n")
        self._handle.flush()
        self._rix += 1
        if self.fsync:
            os.fsync(self._handle.fileno())

    def unit_started(self, unit_id: str, kind: str,
                     params: Dict[str, Any]) -> None:
        self.append({"type": "unit_started", "unit": unit_id, "kind": kind,
                     "params": params})

    def batch(self, unit_id: str, index: int, trials: int, successes: int,
              counts: Dict[str, int], attempts: int,
              payload: Optional[Dict[str, Any]] = None) -> None:
        record = {"type": "batch", "unit": unit_id, "index": index,
                  "trials": trials, "successes": successes,
                  "counts": counts, "attempts": attempts}
        if payload is not None:
            record["payload"] = payload
        self.append(record)

    def unit_done(self, unit_id: str, status: str,
                  summary: Dict[str, Any]) -> None:
        self.append({"type": "unit_done", "unit": unit_id, "status": status,
                     "summary": summary})

    def unit_quarantined(self, unit_id: str, summary: Dict[str, Any],
                         failures: List[Dict[str, Any]]) -> None:
        """Dead-letter a poison unit, keeping its captured tracebacks."""
        self.append({"type": "unit_quarantined", "unit": unit_id,
                     "status": "quarantined", "summary": summary,
                     "failures": failures})

    def campaign_paused(self, reason: str, in_flight: Optional[str],
                        pending: List[str]) -> None:
        """Record a signal-safe drain: what was running, what never ran."""
        self.append({"type": "campaign_paused", "reason": reason,
                     "in_flight": in_flight, "pending": pending})

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullJournal(Journal):
    """Journal stand-in when no path was given: records go nowhere."""

    def __init__(self):  # noqa: super().__init__ intentionally skipped
        self.path = None
        self.fsync = False
        self.header = {}
        self.salvage_event = None

    def append(self, record: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class JournalState:
    """Replay of one journal file: who started, what ran, who finished."""

    path: Optional[str] = None
    #: the campaign header record (version plus any shard/lease identity
    #: fields — ``shard``, ``token``, ``shard_count`` — stamped by the
    #: fabric when the journal belongs to one leased shard)
    header: Optional[Dict[str, Any]] = None
    #: unit_id -> the unit_started record (parameters it was launched with)
    started: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: unit_id -> batch records sorted by index (first write per index wins)
    batches: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: unit_id -> the terminal unit_done / unit_quarantined record
    finished: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: unit_id -> the unit_quarantined record (the dead-letter list)
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: every campaign_paused record, in order (one per drained run)
    pauses: List[Dict[str, Any]] = field(default_factory=list)
    #: the first journaled engine configuration, if any
    config: Optional[Dict[str, Any]] = None
    #: records whose JSON or integrity fields failed verification
    corrupt_lines: int = 0
    #: 1-based line where a salvage load stopped replaying, if it did
    salvaged_line: Optional[int] = None
    #: every typed ``journal_salvaged`` record (a prior writer truncated
    #: complete records away), in journal order
    salvage_events: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str, salvage: bool = False) -> "JournalState":
        """Stream-replay ``path``; a missing file is an empty (fresh) state.

        Every line is verified (JSON decode, CRC32, record index) as it
        streams; the file is never buffered whole.  A bad *final* line
        is the torn tail of a kill and is ignored.  A bad earlier line
        raises :class:`InjectionError` naming the file and line — or,
        with ``salvage=True``, truncates the replayed state at the first
        bad record so resume re-derives everything after it.
        """
        state = cls(path=path)
        if not os.path.exists(path):
            return state
        scan = _scan_journal(path, salvage=salvage, absorb=state._absorb)
        state.corrupt_lines = scan.corrupt_lines
        state.salvaged_line = scan.salvaged_line
        return state

    def _absorb(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        unit = record.get("unit")
        if kind == "campaign" and self.header is None:
            self.header = record
        elif kind == "config" and self.config is None:
            self.config = record.get("config")
        elif kind == "unit_started" and unit is not None:
            self.started.setdefault(unit, record)
        elif kind == "batch" and unit is not None:
            batches = self.batches.setdefault(unit, [])
            if not any(prior["index"] == record["index"]
                       for prior in batches):
                batches.append(record)
                batches.sort(key=lambda item: item["index"])
        elif kind == "unit_done" and unit is not None:
            self.finished.setdefault(unit, record)
        elif kind == "unit_quarantined" and unit is not None:
            self.finished.setdefault(unit, record)
            self.quarantined.setdefault(unit, record)
        elif kind == "campaign_paused":
            self.pauses.append(record)
        elif kind == "journal_salvaged":
            self.salvage_events.append(record)

    def next_batch_index(self, unit_id: str) -> int:
        """First batch index not yet journaled for ``unit_id``."""
        batches = self.batches.get(unit_id)
        if not batches:
            return 0
        return batches[-1]["index"] + 1

    def check_params(self, unit_id: str, params: Dict[str, Any]) -> None:
        """Refuse to resume a unit whose recorded parameters differ."""
        started = self.started.get(unit_id)
        if started is None:
            return
        recorded = started.get("params")
        if recorded != _round_trip(params):
            raise InjectionError(
                f"journal {self.path!r} recorded unit {unit_id!r} with "
                f"params {recorded!r}, which differ from {params!r}; "
                f"use a fresh journal path for a reconfigured campaign")


def _round_trip(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params exactly as they read back from JSON (tuples become lists)."""
    return json.loads(json.dumps(params))


class JournalCursor:
    """Incremental reader over a *growing* journal file (the merge cursor).

    The fabric coordinator ticks its global Wilson estimator on every
    shard progress event; re-reading whole multi-MB shard journals on
    each tick would be quadratic.  A cursor remembers its byte offset
    and running record index, and each :meth:`poll` verifies and returns
    only the records appended since the previous poll:

    * only lines terminated by a newline are consumed — a partial final
      line is either an append in progress or a torn tail, and stays
      pending until (unless) it completes;
    * CRC32 and ``rix`` continuity are verified exactly as in
      :meth:`JournalState.load`; the first bad record **fuses** the
      cursor (``corrupt`` becomes the ``file:line``), which permanently
      stops consumption — the terminal salvage-aware merge, not the
      online estimator, is the authority on damaged journals;
    * a file that does not exist yet simply yields no records.
    """

    def __init__(self, path: str):
        self.path = path
        self.records = 0
        self.corrupt: Optional[str] = None
        self._offset = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Verify and return the complete records appended since last poll."""
        if self.corrupt is not None or not os.path.exists(self.path):
            return []
        fresh: List[Dict[str, Any]] = []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # partial line: in-flight append or torn tail
                text = raw.decode("utf-8", errors="replace").strip()
                self._offset += len(raw)
                if not text:
                    continue
                record = self._verify(text)
                if record is None:
                    return fresh
                self.records += 1
                fresh.append(record)
        return fresh

    def _verify(self, text: str) -> Optional[Dict[str, Any]]:
        def fuse(what: str) -> None:
            self.corrupt = f"{self.path}: {what} at record {self.records}"

        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            fuse("corrupt journal record")
            return None
        if not isinstance(record, dict):
            fuse("non-object journal record")
            return None
        stored_crc = record.pop("crc", None)
        if stored_crc is not None and \
                stored_crc != zlib.crc32(_canonical(record).encode("utf-8")):
            fuse("journal record failed its CRC32 check")
            return None
        rix = record.get("rix")
        if rix is not None and rix != self.records:
            fuse(f"journal record index {rix} != expected {self.records}")
            return None
        return record
