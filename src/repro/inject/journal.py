"""Append-only JSONL journal behind the resilient campaign engine.

Every work-unit lifecycle event — ``unit_started``, one ``batch`` per
completed batch of injections, and a terminal ``unit_done`` — is appended
as one JSON line and flushed immediately, so a campaign killed at any
point leaves a prefix of valid records (plus at most one torn final line,
which replay ignores).  Re-running the engine against the same journal
path replays that prefix: finished units are skipped outright and a unit
interrupted mid-sweep resumes after its last journaled batch.

The journal is the single source of truth for resume; the engine never
keeps checkpoint state anywhere else.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import InjectionError

#: journal schema version, bumped on incompatible record changes
JOURNAL_VERSION = 1


class Journal:
    """Append-only writer for one campaign's JSONL journal."""

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self.fsync = fsync
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "a", encoding="utf-8")
        if fresh:
            self.append({"type": "campaign", "version": JOURNAL_VERSION})

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a JSON line and flush it to the OS."""
        if "type" not in record:
            raise InjectionError("journal records need a 'type' field")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def unit_started(self, unit_id: str, kind: str,
                     params: Dict[str, Any]) -> None:
        self.append({"type": "unit_started", "unit": unit_id, "kind": kind,
                     "params": params})

    def batch(self, unit_id: str, index: int, trials: int, successes: int,
              counts: Dict[str, int], attempts: int,
              payload: Optional[Dict[str, Any]] = None) -> None:
        record = {"type": "batch", "unit": unit_id, "index": index,
                  "trials": trials, "successes": successes,
                  "counts": counts, "attempts": attempts}
        if payload is not None:
            record["payload"] = payload
        self.append(record)

    def unit_done(self, unit_id: str, status: str,
                  summary: Dict[str, Any]) -> None:
        self.append({"type": "unit_done", "unit": unit_id, "status": status,
                     "summary": summary})

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullJournal(Journal):
    """Journal stand-in when no path was given: records go nowhere."""

    def __init__(self):  # noqa: super().__init__ intentionally skipped
        self.path = None
        self.fsync = False

    def append(self, record: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class JournalState:
    """Replay of one journal file: who started, what ran, who finished."""

    path: Optional[str] = None
    #: unit_id -> the unit_started record (parameters it was launched with)
    started: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: unit_id -> batch records sorted by index (first write per index wins)
    batches: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: unit_id -> the terminal unit_done record
    finished: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: the first journaled engine configuration, if any
    config: Optional[Dict[str, Any]] = None
    #: records whose JSON could not be parsed (only a torn tail is expected)
    corrupt_lines: int = 0

    @classmethod
    def load(cls, path: str) -> "JournalState":
        """Replay ``path``; a missing file is an empty (fresh) state."""
        state = cls(path=path)
        if not os.path.exists(path):
            return state
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line is the expected signature of a kill
                # mid-append; anything earlier is real corruption but
                # still only costs that one record.
                state.corrupt_lines += 1
                if number != len(lines) - 1:
                    raise InjectionError(
                        f"{path}:{number + 1}: corrupt journal record "
                        f"before the final line") from None
                continue
            state._absorb(record)
        return state

    def _absorb(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        unit = record.get("unit")
        if kind == "config" and self.config is None:
            self.config = record.get("config")
        elif kind == "unit_started" and unit is not None:
            self.started.setdefault(unit, record)
        elif kind == "batch" and unit is not None:
            batches = self.batches.setdefault(unit, [])
            if not any(prior["index"] == record["index"]
                       for prior in batches):
                batches.append(record)
                batches.sort(key=lambda item: item["index"])
        elif kind == "unit_done" and unit is not None:
            self.finished.setdefault(unit, record)

    def next_batch_index(self, unit_id: str) -> int:
        """First batch index not yet journaled for ``unit_id``."""
        batches = self.batches.get(unit_id)
        if not batches:
            return 0
        return batches[-1]["index"] + 1

    def check_params(self, unit_id: str, params: Dict[str, Any]) -> None:
        """Refuse to resume a unit whose recorded parameters differ."""
        started = self.started.get(unit_id)
        if started is None:
            return
        recorded = started.get("params")
        if recorded != _round_trip(params):
            raise InjectionError(
                f"journal {self.path!r} recorded unit {unit_id!r} with "
                f"params {recorded!r}, which differ from {params!r}; "
                f"use a fresh journal path for a reconfigured campaign")


def _round_trip(params: Dict[str, Any]) -> Dict[str, Any]:
    """Params exactly as they read back from JSON (tuples become lists)."""
    return json.loads(json.dumps(params))
