"""Work-unit leases with TTLs and fencing tokens for the campaign fabric.

A *shard* is a fixed, deterministic slice of a campaign (a list of work
units with a deterministic seed range).  The coordinator never hands a
shard to a worker directly — it grants a **lease**:

* every grant increments the shard's **fencing token**, a monotonic
  per-shard counter that survives coordinator restarts (it is replayed
  from the coordinator journal);
* the lease carries a **TTL**: a holder proves liveness by heartbeating
  (:class:`~repro.inject.supervisor.LeaseHeartbeat`), and a lease whose
  beats stop advancing for longer than the TTL is *expired* and may be
  re-granted to a new holder (work stealing);
* renewals and completions are only honored when they carry the
  *current* token of an *active* lease — anything else raises
  :class:`~repro.errors.StaleFencingToken` (superseded holder) or
  :class:`~repro.errors.LeaseExpired` (TTL lapsed first), so a zombie
  worker that was presumed dead can keep executing but can never get
  its result *accepted*.  Duplicated execution is further defused at
  the data layer: every lease attempt writes its own journal, batch
  records are pure functions of ``(unit params, batch index)``, and the
  merge dedupes by that key — acceptance decides *bookkeeping*, never
  counts.

:func:`rebase_journal` is the work-stealing data path: it compacts the
surviving records of a shard's previous lease journals into the new
lease's journal (fresh CRC/rix chain, new shard/token header), so the
new holder's engine resumes exactly after the last batch any prior
holder durably completed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import (FabricConfigError, FabricError, LeaseExpired,
                          StaleFencingToken)
from repro.inject.journal import Journal, _scan_journal

#: lease lifecycle states
ACTIVE = "active"
EXPIRED = "expired"
COMPLETED = "completed"


@dataclass
class Lease:
    """One grant of one shard to one holder, under one fencing token."""

    shard: str
    token: int
    ttl_s: float
    state: str = ACTIVE
    #: monotonic timestamp of the last observed liveness proof
    last_beat: float = field(default_factory=time.monotonic)
    #: highest beat counter observed from the holder's heartbeat file
    beat_count: int = 0
    #: why the lease left the ACTIVE state ("", or an expiry reason)
    reason: str = ""

    @property
    def active(self) -> bool:
        return self.state == ACTIVE

    def expired_at(self, now: float) -> bool:
        return self.active and now - self.last_beat > self.ttl_s


class LeaseTable:
    """The coordinator's authoritative lease + fencing-counter state.

    The table itself is in-memory; crash tolerance comes from the
    coordinator journaling every transition (`grant`/`expire`/`complete`)
    and :meth:`apply_record` replaying those records on resume.  Replayed
    ACTIVE leases are *not* resurrected — a restarted coordinator cannot
    see its predecessors' heartbeat timers, so every lease that was
    in flight at the crash is deterministically expired and re-granted
    under a fresh token.
    """

    def __init__(self, ttl_s: float = 30.0):
        if ttl_s <= 0:
            raise FabricConfigError(
                f"lease ttl_s must be positive, got {ttl_s}")
        self.ttl_s = ttl_s
        self._tokens: Dict[str, int] = {}
        self._leases: Dict[str, Lease] = {}

    # -- queries -----------------------------------------------------------

    def current(self, shard: str) -> Optional[Lease]:
        """The newest lease of ``shard`` in any state, if one was granted."""
        return self._leases.get(shard)

    def token(self, shard: str) -> int:
        """The shard's current fencing token (0 = never granted)."""
        return self._tokens.get(shard, 0)

    def completed(self, shard: str) -> bool:
        lease = self._leases.get(shard)
        return lease is not None and lease.state == COMPLETED

    def active_shards(self) -> List[str]:
        return [shard for shard, lease in self._leases.items()
                if lease.active]

    def expired_shards(self, now: Optional[float] = None) -> List[str]:
        """Shards whose active lease's TTL has lapsed, in grant order."""
        now = time.monotonic() if now is None else now
        return [shard for shard, lease in self._leases.items()
                if lease.expired_at(now)]

    # -- transitions -------------------------------------------------------

    def grant(self, shard: str, ttl_s: Optional[float] = None) -> Lease:
        """Grant ``shard`` under the next fencing token (work stealing).

        Granting over a still-ACTIVE lease is legal — that is exactly
        the steal path after a TTL expiry was *decided* — but the old
        lease is first marked expired so only one lease per shard is
        ever active.
        """
        previous = self._leases.get(shard)
        if previous is not None and previous.state == COMPLETED:
            raise FabricError(
                f"shard {shard!r} already completed under token "
                f"{previous.token}; refusing to re-grant finished work")
        if previous is not None and previous.active:
            previous.state = EXPIRED
            previous.reason = previous.reason or "superseded by re-grant"
        token = self._tokens.get(shard, 0) + 1
        self._tokens[shard] = token
        lease = Lease(shard=shard, token=token,
                      ttl_s=self.ttl_s if ttl_s is None else ttl_s)
        self._leases[shard] = lease
        return lease

    def _checked(self, shard: str, token: int, verb: str) -> Lease:
        lease = self._leases.get(shard)
        if lease is None:
            raise FabricError(
                f"cannot {verb} shard {shard!r}: no lease was ever granted")
        if token != lease.token:
            raise StaleFencingToken(
                f"cannot {verb} shard {shard!r} with fencing token "
                f"{token}: current token is {lease.token} (holder was "
                f"superseded)")
        if not lease.active:
            raise LeaseExpired(
                f"cannot {verb} shard {shard!r}: lease token {token} is "
                f"{lease.state} ({lease.reason or 'TTL lapsed'})")
        return lease

    def renew(self, shard: str, token: int, beat_count: int,
              now: Optional[float] = None) -> Lease:
        """Record a liveness proof; only *advancing* beats reset the TTL."""
        lease = self._checked(shard, token, "renew")
        if beat_count > lease.beat_count:
            lease.beat_count = beat_count
            lease.last_beat = time.monotonic() if now is None else now
        return lease

    def expire(self, shard: str, reason: str = "TTL lapsed") -> Lease:
        """Expire the shard's active lease (TTL lapse or holder death)."""
        lease = self._leases.get(shard)
        if lease is None:
            raise FabricError(
                f"cannot expire shard {shard!r}: no lease was ever granted")
        if lease.state == COMPLETED:
            raise FabricError(
                f"cannot expire shard {shard!r}: already completed")
        if lease.active:
            lease.state = EXPIRED
            lease.reason = reason
        return lease

    def complete(self, shard: str, token: int) -> Lease:
        """Accept a completion — the one transition fencing really guards."""
        lease = self._checked(shard, token, "complete")
        lease.state = COMPLETED
        return lease

    # -- journal replay ----------------------------------------------------

    def apply_record(self, record: Dict[str, Any]) -> None:
        """Replay one coordinator-journal lease record (crash recovery).

        Replayed grants restore the fencing counters; replayed
        completions mark shards done.  A lease that was ACTIVE when the
        journal ends stays EXPIRED-on-load (reason ``coordinator
        restart``): the new coordinator re-grants it under a higher
        token rather than trusting a liveness clock it never saw.
        """
        kind = record.get("type")
        shard = record.get("shard")
        token = record.get("token")
        if kind == "lease_granted":
            lease = Lease(shard=shard, token=token,
                          ttl_s=record.get("ttl_s", self.ttl_s),
                          state=EXPIRED, reason="coordinator restart")
            self._tokens[shard] = max(self._tokens.get(shard, 0), token)
            self._leases[shard] = lease
        elif kind in ("lease_expired", "lease_paused"):
            lease = self._leases.get(shard)
            if lease is not None and lease.state != COMPLETED:
                lease.state = EXPIRED
                lease.reason = record.get("reason", "TTL lapsed") \
                    if kind == "lease_expired" else "paused"
        elif kind == "lease_completed":
            lease = self._leases.get(shard)
            if lease is not None and token == lease.token:
                lease.state = COMPLETED


#: record types (and their natural first-wins dedup keys) that survive a
#: journal rebase; anything else — pauses, prior headers — is dropped
_REBASE_KEYS = {
    "config": lambda record: ("config",),
    "unit_started": lambda record: ("unit_started", record.get("unit")),
    "batch": lambda record: ("batch", record.get("unit"),
                             record.get("index")),
    "unit_done": lambda record: ("unit_done", record.get("unit")),
    "unit_quarantined": lambda record: ("unit_done", record.get("unit")),
}


def rebase_journal(sources: Sequence[str], dest: str,
                   header: Optional[Dict[str, Any]] = None,
                   fsync: bool = False) -> int:
    """Compact prior lease journals into a new lease's journal.

    Streams every ``sources`` journal in order (oldest lease first) with
    ``salvage`` semantics — a SIGKILLed holder's torn tail or corrupt
    suffix costs only the records after it — keeps the first occurrence
    of each durable record (config, unit_started, batch-by-index,
    terminal unit records), and appends them to ``dest`` under a fresh
    header/CRC/rix chain.  Returns the number of records carried over.

    The new holder's engine then resumes from ``dest`` exactly as if it
    had written those records itself; batches no prior holder durably
    journaled are re-derived from their deterministic seeds.
    """
    import os

    carried: List[Dict[str, Any]] = []
    seen = set()

    def absorb(record: Dict[str, Any]) -> None:
        key_fn = _REBASE_KEYS.get(record.get("type"))
        if key_fn is None:
            return
        key = key_fn(record)
        if key in seen:
            return
        seen.add(key)
        carried.append(dict(record))

    for source in sources:
        if not os.path.exists(source):
            continue
        _scan_journal(source, salvage=True, absorb=absorb)
    journal = Journal(dest, fsync=fsync, header=header)
    try:
        for record in carried:
            journal.append(record)
    finally:
        journal.close()
    return len(carried)
