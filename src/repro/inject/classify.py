"""Turning injection campaigns into the paper's Figures 10 and 11 metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ecc.swap import SwapScheme
from repro.ecc.vectorized import READ_DUE, parity_many
from repro.errors import InjectionError
from repro.inject.hamartia import (SEVERITY_CLASSES, CampaignResult,
                                   classify_severity)


@dataclass(frozen=True)
class Estimate:
    """A fraction with its normal-approximation 95% confidence interval."""

    mean: float
    ci95: float

    def __str__(self) -> str:
        return f"{self.mean * 100:.2f}% ± {self.ci95 * 100:.2f}%"


def _proportion_estimate(values: Sequence[float]) -> Estimate:
    if not values:
        return Estimate(0.0, 0.0)
    count = len(values)
    mean = sum(values) / count
    if count < 2:
        return Estimate(mean, 0.0)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    return Estimate(mean, 1.96 * math.sqrt(variance / count))


def severity_distribution(result: CampaignResult) -> Dict[str, Estimate]:
    """Figure 10: fraction of unmasked errors per severity class.

    Computed as the mean (over input samples) of each sample's conditional
    distribution across its unmasked sites — the exact quantity the paper
    estimates by sampling one unmasked injection per input.
    """
    per_sample: Dict[str, List[float]] = {name: [] for name
                                          in SEVERITY_CLASSES}
    for counts, total in zip(result.class_counts,
                             result.unmasked_site_counts):
        if total == 0:
            continue
        for name in SEVERITY_CLASSES:
            per_sample[name].append(counts[name] / total)
    return {name: _proportion_estimate(values)
            for name, values in per_sample.items()}


def split_into_registers(pattern: int, golden: int, output_bits: int,
                         register_bits: int = 32
                         ) -> List[Tuple[int, int]]:
    """Split a wide output into the 32b register writes the RF sees.

    Returns (golden_word, pattern_word) pairs, one per constituent
    register.  The paper considers a 64b-output error detected if *either*
    register produces a DUE.
    """
    words = max(1, (output_bits + register_bits - 1) // register_bits)
    mask = (1 << register_bits) - 1
    return [((golden >> (word * register_bits)) & mask,
             (pattern >> (word * register_bits)) & mask)
            for word in range(words)]


def record_is_detected(scheme: SwapScheme, pattern: int, golden: int,
                       output_bits: int) -> bool:
    """Would this pipeline error be caught at register readback?

    The faulty unit belongs to the *original* instruction: the register
    ends up holding the erroneous data with the clean shadow's check bits
    (and, for DP schemes, a parity bit the original computed from the bad
    data).  Detection means at least one erroneous register word raises a
    DUE; an error is also harmless if every word reads back as the correct
    value (a correction repaired it).
    """
    if pattern == 0:
        raise InjectionError("masked record has no detection outcome")
    all_repaired = True
    for golden_word, pattern_word in split_into_registers(
            pattern, golden, output_bits):
        if pattern_word == 0:
            continue
        bad_word = golden_word ^ pattern_word
        word = scheme.write_shadow(scheme.write_original(bad_word),
                                   golden_word)
        outcome = scheme.read(word)
        if outcome.is_due:
            return True
        if outcome.data != golden_word:
            all_repaired = False
    return all_repaired


def detection_outcomes(scheme: SwapScheme,
                       result: CampaignResult) -> np.ndarray:
    """Per-record detection verdicts for a whole campaign, batched.

    Equivalent to calling :func:`record_is_detected` on every unmasked
    record, but every erroneous register word of the campaign runs
    through one vectorized
    :meth:`~repro.ecc.swap.SwapScheme.read_many` call — the encode/
    decode batching that keeps large Figure 11 sweeps off the scalar
    Python decoder.  Returns a boolean array aligned with
    ``result.records``.
    """
    records = result.records
    detected = np.zeros(len(records), dtype=bool)
    repaired = np.ones(len(records), dtype=bool)
    index: List[int] = []
    golden_words: List[int] = []
    bad_words: List[int] = []
    for position, record in enumerate(records):
        if record.pattern == 0:
            raise InjectionError("masked record has no detection outcome")
        for golden_word, pattern_word in split_into_registers(
                record.pattern, record.golden, result.output_bits):
            if pattern_word == 0:
                continue
            index.append(position)
            golden_words.append(golden_word)
            bad_words.append(golden_word ^ pattern_word)
    if not index:
        return detected
    word_index = np.array(index, dtype=np.intp)
    golden = np.array(golden_words, dtype=np.uint64)
    data = np.array(bad_words, dtype=np.uint64)
    # The register ends up holding the erroneous data with the clean
    # shadow's check bits and (for DP schemes) a parity bit the original
    # computed from the bad data — the same word record_is_detected builds
    # one at a time.
    check = scheme.code.encode_many(golden)
    dp = parity_many(data) if scheme.uses_data_parity else None
    batch = scheme.read_many(data, check, dp)
    np.logical_or.at(detected, word_index, batch.status == READ_DUE)
    np.logical_and.at(repaired, word_index, batch.data == golden)
    return detected | repaired


def sdc_risk(result: CampaignResult, scheme: SwapScheme) -> Estimate:
    """Figure 11: probability an unmasked pipeline error goes undiagnosed."""
    outcomes = [0.0 if verdict else 1.0
                for verdict in detection_outcomes(scheme, result)]
    return _proportion_estimate(outcomes)


def sdc_risk_sweep(result: CampaignResult,
                   schemes: Sequence[SwapScheme]) -> Dict[str, Estimate]:
    """SDC risk of one unit's campaign under every scheme, keyed by name."""
    return {scheme.name: sdc_risk(result, scheme) for scheme in schemes}


#: the collapsed bins of a detection-rate sweep (gpu / mbu-sweep units):
#: ``detected`` folds every loud outcome (due, trap, hang, crash) while
#: ``masked`` and ``sdc`` keep their engine meanings
DETECTION_CLASSES = ("detected", "masked", "sdc")

#: the engine outcome keys that count as a loud detection
_DETECTED_OUTCOMES = ("due", "trap", "hang", "crash")


def detection_coverage(counts: Dict[str, int]) -> Dict[str, float]:
    """Collapse a gpu/mbu-sweep unit's tallies into detection fractions.

    Returns each :data:`DETECTION_CLASSES` bin as a fraction of the
    architecturally *visible* trials (``not_hit`` excluded): ``detected``
    is the scheme's coverage, ``sdc`` its escape rate, and ``masked``
    the benign remainder.  The MBU-degradation study plots ``detected``
    against strike multiplicity.
    """
    detected = sum(counts.get(name, 0) for name in _DETECTED_OUTCOMES)
    masked = counts.get("masked", 0)
    sdc = counts.get("sdc", 0)
    visible = detected + masked + sdc
    if visible == 0:
        return {name: 0.0 for name in DETECTION_CLASSES}
    return {"detected": detected / visible, "masked": masked / visible,
            "sdc": sdc / visible}


#: the mutually exclusive bins a gpu-recovery unit tallies visible faults
#: into, in recovery-ladder escalation order (sdc = recovery *failed
#: silently*, due/hang = ladder exhausted loudly)
RECOVERY_CLASSES = ("masked", "corrected_in_place", "cta_replayed",
                    "kernel_replayed", "due", "hang", "sdc")


def recovery_coverage(counts: Dict[str, int]) -> Dict[str, float]:
    """Per-rung recovery coverage from a gpu-recovery unit's tallies.

    Returns each :data:`RECOVERY_CLASSES` bin as a fraction of the
    architecturally *visible* trials (``not_hit`` excluded) — the
    breakdown behind the per-scheme recovery-coverage comparison: a
    correcting scheme lands its storage errors in ``corrected_in_place``
    with zero replays, while detect-only schemes push the same faults up
    the replay rungs.
    """
    visible = sum(counts.get(name, 0) for name in RECOVERY_CLASSES)
    if visible == 0:
        return {name: 0.0 for name in RECOVERY_CLASSES}
    return {name: counts.get(name, 0) / visible
            for name in RECOVERY_CLASSES}
