"""Fault-tolerant distributed campaign fabric (coordinator + leased shards).

The paper's coverage numbers rest on statistically large injection
campaigns; one host's supervised engine tops out near a few thousand
trials per second.  The fabric generalizes the engine/supervisor/journal
stack from a subprocess pool to a *sharded fleet* that survives worker
loss, shard death, and coordinator restart without corrupting a single
tally:

**Leased shards.**  The campaign is split into deterministic work-unit
shards (:func:`partition_units` round-robins distinct units;
:func:`replicate_units` clones every unit per shard with disjoint seed
ranges via :func:`~repro.inject.engine.shard_work_unit`).  A shard only
ever runs under a *lease* (:mod:`repro.inject.lease`): a TTL, a
heartbeat file, and a fencing token.  Leases whose heartbeats stop
advancing are expired and — with ``steal=True`` — re-granted to a fresh
holder whose journal is rebased from every prior holder's durable
records; a completion carrying a superseded token is rejected, so
duplicated execution can never double-count.

**Per-shard journals, deterministic merge.**  Each lease holder runs the
existing supervised :class:`~repro.inject.engine.CampaignEngine` against
its own CRC32+rix tamper-evident journal, stamped with shard identity in
the header.  :func:`~repro.inject.merge.merge_shard_journals` reduces
all lease journals into one :class:`~repro.inject.engine.CampaignReport`
— stable ``(shard, rix)`` ordering, salvage-aware, idempotent, and
count-identical under replay.

**Global early-stop.**  The coordinator tails every shard journal with a
:class:`~repro.inject.journal.JournalCursor` and ticks a fleet-wide
Wilson estimator on each progress event; once the confidence interval
is tighter than ``global_ci_half_width`` it broadcasts a drain (a drain
file every shard engine polls through its ``drain_hook``), and every
shard pauses at a safe point with a ``campaign_paused`` journal record.

**Crash-tolerant coordinator.**  The lease table, fencing counters, and
shard plan are journaled to ``coordinator.jsonl`` with the same CRC+rix
format; rerunning the fabric against the same directory after a SIGKILL
replays that journal, expires every lease that was in flight, re-grants
under fresh tokens, and produces a merged report byte-identical to an
undisturbed same-seed run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as _signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import (FabricConfigError, FabricError, LeaseExpired,
                          MergeConflict, StaleFencingToken)
from repro.inject.engine import (CampaignEngine, EngineConfig, WilsonEstimate,
                                 WorkUnit, shard_work_unit, wilson_interval)
from repro.inject.journal import (Journal, JournalCursor, atomic_write_text,
                                  _scan_journal)
from repro.inject.lease import LeaseTable
from repro.inject.lease import rebase_journal
from repro.inject.merge import (MergedCampaign, fabric_journal_paths,
                                merge_shard_journals, write_merged_report)
from repro.inject.supervisor import (CampaignSupervisor, SupervisorConfig,
                                     read_heartbeat)

#: shard process exit codes the coordinator interprets
_EXIT_COMPLETED = 0
_EXIT_PAUSED = 3

#: a lease TTL must clear the heartbeat interval by at least this factor
#: so a single delayed/dropped beat (scheduler hiccup, chaos transport)
#: cannot expire a healthy holder
LEASE_TTL_SAFETY_FACTOR = 4.0


def partition_units(units: Sequence[WorkUnit],
                    shards: int) -> List[List[WorkUnit]]:
    """Round-robin distinct units across ``shards`` buckets (in order)."""
    if shards < 1:
        raise FabricError(f"shards must be >= 1, got {shards}")
    buckets: List[List[WorkUnit]] = [[] for _ in range(shards)]
    for index, unit in enumerate(units):
        buckets[index % shards].append(unit)
    return buckets


def replicate_units(units: Sequence[WorkUnit],
                    shards: int) -> List[List[WorkUnit]]:
    """Clone every unit onto every shard with disjoint seed ranges.

    The scale-out shape: ``shards`` deterministic samples of the same
    campaign, which the coordinator's *global* Wilson estimator reduces
    as one proportion.
    """
    if shards < 1:
        raise FabricError(f"shards must be >= 1, got {shards}")
    return [[shard_work_unit(unit, index, shards) for unit in units]
            for index in range(shards)]


@dataclass
class FabricConfig:
    """Policy knobs for one campaign fabric."""

    #: number of leased shards the campaign splits into
    shards: int = 4
    #: how work maps onto shards: "partition" round-robins distinct
    #: units, "replicate" clones every unit per shard with disjoint
    #: deterministic seed ranges
    mode: str = "partition"
    #: lease TTL: a shard whose heartbeat stalls this long is expired
    lease_ttl_s: float = 30.0
    #: how often each shard's lease heartbeat beats
    heartbeat_interval_s: float = 0.25
    #: coordinator poll cadence (process liveness, heartbeats, cursors)
    poll_interval_s: float = 0.05
    #: re-grant expired/dead leases to fresh holders (work stealing);
    #: with False a lost lease fails the whole fabric instead
    steal: bool = True
    #: give up on a shard after this many lease grants (poison shards)
    max_lease_attempts: int = 5
    #: drain the whole fleet once the *global* Wilson CI half-width over
    #: all shards' monitored trials drops below this (None disables)
    global_ci_half_width: Optional[float] = None
    #: never globally early-stop before this many monitored trials
    global_min_trials: int = 50
    #: z-score of the global confidence level (1.96 = 95%)
    z: float = 1.96
    #: per-shard engine configuration; None = engine defaults with
    #: per-unit early stopping disabled (the global estimator governs)
    engine: Optional[EngineConfig] = None
    #: multiprocessing start method for shard processes; "fork" lets
    #: shards inherit non-picklable unit contexts
    start_method: str = "fork"
    #: hook SIGTERM/SIGINT on the coordinator into a fleet-wide drain
    install_signal_handlers: bool = True
    #: directory terminal fabric failures (lost leases with stealing
    #: off, poison shards, merge conflicts) are exported to as
    #: :mod:`repro.bundle` repro bundles (None = no capture)
    bundle_dir: Optional[str] = None

    def __post_init__(self):
        if self.shards < 1:
            raise FabricConfigError(
                f"shards must be >= 1, got {self.shards}")
        if self.mode not in ("partition", "replicate"):
            raise FabricConfigError(
                f"mode must be 'partition' or 'replicate', got "
                f"{self.mode!r}")
        if self.lease_ttl_s <= 0:
            # With steal=True a non-positive TTL would expire (and
            # self-steal) every live shard on the first poll; refuse the
            # configuration outright rather than thrash leases.
            raise FabricConfigError(
                f"lease_ttl_s must be positive, got {self.lease_ttl_s}"
                + (" (stealing with a non-positive TTL would self-steal "
                   "live shards)" if self.steal else ""))
        if self.heartbeat_interval_s <= 0:
            raise FabricConfigError(
                f"heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}")
        if self.lease_ttl_s < \
                LEASE_TTL_SAFETY_FACTOR * self.heartbeat_interval_s:
            raise FabricConfigError(
                f"lease_ttl_s ({self.lease_ttl_s}) must be at least "
                f"{LEASE_TTL_SAFETY_FACTOR:g}x heartbeat_interval_s "
                f"({self.heartbeat_interval_s}): a TTL that a single "
                f"missed beat can lapse turns every scheduler hiccup "
                f"into a lease steal")
        if self.max_lease_attempts < 1:
            raise FabricConfigError(
                f"max_lease_attempts must be >= 1, got "
                f"{self.max_lease_attempts}")
        if self.global_ci_half_width is not None and \
                self.global_ci_half_width <= 0:
            raise FabricConfigError(
                f"global_ci_half_width must be positive (or None), got "
                f"{self.global_ci_half_width}")

    def shard_engine_config(self) -> EngineConfig:
        """The per-shard engine config (global estimator governs stops)."""
        if self.engine is not None:
            return self.engine
        return EngineConfig(ci_half_width=None, timeout_s=None)


@dataclass
class FabricReport:
    """Outcome of one fabric run: the merged campaign plus fleet facts."""

    merged: MergedCampaign
    fabric_dir: str
    merged_report_path: str
    #: shard id -> "completed" / "paused" / terminal lease state
    shard_status: Dict[str, str]
    #: True when the global Wilson early-stop drained the fleet
    stopped_globally: bool
    #: True when a drain left work unfinished; rerun the same fabric_dir
    #: (resume) to finish it
    paused: bool
    #: the fleet-wide Wilson estimate over every shard's trials
    estimate: WilsonEstimate

    @property
    def report(self):
        """The merged :class:`~repro.inject.engine.CampaignReport`."""
        return self.merged.report


class _GlobalEstimator:
    """Online fleet-wide Wilson estimator fed by journal cursors."""

    def __init__(self, half_width: Optional[float], min_trials: int,
                 z: float):
        self.half_width = half_width
        self.min_trials = min_trials
        self.z = z
        self.trials = 0
        self.successes = 0
        self._seen: Set[tuple] = set()

    def absorb(self, record: Dict[str, Any]) -> None:
        """Tick on one journal record (batches only; idempotent)."""
        if record.get("type") != "batch":
            return
        key = (record.get("unit"), record.get("index"))
        if key in self._seen:
            return
        self._seen.add(key)
        self.trials += record.get("trials", 0)
        self.successes += record.get("successes", 0)

    @property
    def estimate(self) -> WilsonEstimate:
        return wilson_interval(self.successes, self.trials, self.z)

    @property
    def tight(self) -> bool:
        if self.half_width is None or self.trials < self.min_trials:
            return False
        return self.estimate.half_width <= self.half_width


def _shard_id(index: int) -> str:
    return f"shard-{index:03d}"


def lease_journal_path(fabric_dir: str, shard: str, token: int) -> str:
    """The journal path of one lease grant (shared fabric naming)."""
    return os.path.join(fabric_dir, f"{shard}.lease-{token:03d}.jsonl")


def heartbeat_path(fabric_dir: str, shard: str) -> str:
    """The heartbeat-file path of one shard (shared fabric naming)."""
    return os.path.join(fabric_dir, f"{shard}.heartbeat")


def lease_header(shard: str, token: int,
                 shard_count: int) -> Dict[str, Any]:
    """The shard-identity header every lease journal is stamped with."""
    return {"role": "shard", "shard": shard, "token": token,
            "shard_count": shard_count}


def build_plan(units: Sequence[WorkUnit],
               config: "FabricConfig") -> Dict[str, List[WorkUnit]]:
    """Deterministically map a campaign onto named shards.

    Shared by the forking :class:`CampaignFabric` and the
    network-attached :class:`~repro.inject.coordinator.CoordinatorService`
    so both produce the same shard ids for the same units — which is
    what makes their merged reports byte-identical.
    """
    ids = [unit.unit_id for unit in units]
    if len(set(ids)) != len(ids):
        raise FabricError(f"duplicate unit ids in campaign: {ids}")
    splitter = partition_units if config.mode == "partition" \
        else replicate_units
    buckets = splitter(units, config.shards)
    plan = {_shard_id(index): bucket
            for index, bucket in enumerate(buckets) if bucket}
    if not plan:
        raise FabricError("the campaign has no work units to shard")
    return plan


def replay_coordinator_state(path: str,
                             table: LeaseTable) -> Dict[str, Any]:
    """Rebuild lease/fencing/plan state from a coordinator journal.

    Feeds every lease transition through ``table.apply_record`` (active
    leases come back expired with reason ``coordinator restart``) and
    returns the non-lease replay facts: the recorded plan, any global
    stop, and whether the fabric already finished.
    """
    replay: Dict[str, Any] = {"planned": None, "global_stop": None,
                              "done": False}

    def absorb(record: Dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "fabric_planned" and replay["planned"] is None:
            replay["planned"] = record
        elif kind in ("lease_granted", "lease_expired",
                      "lease_paused", "lease_completed"):
            table.apply_record(record)
        elif kind == "global_stop":
            replay["global_stop"] = record
        elif kind == "fabric_done":
            replay["done"] = True

    if os.path.exists(path) and os.path.getsize(path) > 0:
        _scan_journal(path, salvage=True, absorb=absorb)
    return replay


def record_or_check_plan(journal: Journal,
                         planned: Optional[Dict[str, Any]],
                         plan: Dict[str, List[WorkUnit]], mode: str,
                         fabric_dir: str) -> None:
    """Journal a fresh plan, or refuse a resume against a changed one."""
    current = {shard: [unit.unit_id for unit in units]
               for shard, units in plan.items()}
    if planned is None:
        journal.append({"type": "fabric_planned", "mode": mode,
                        "shard_count": len(plan), "shards": current})
        return
    recorded = planned.get("shards")
    if recorded != current:
        raise FabricError(
            f"fabric dir {fabric_dir!r} was planned with shards "
            f"{recorded!r}, which differ from {current!r}; use a "
            f"fresh fabric dir for a reconfigured campaign")


def capture_lease_failure(error: FabricError, shard: str,
                          fabric_dir: str,
                          bundle_dir: Optional[str]) -> FabricError:
    """Export a shard's durable lease state as a repro bundle.

    A lease failure is timing-dependent and cannot re-run, but its
    *residue* — what actually reached the shard's lease journals — is
    deterministic, so the bundle freezes those journals and a
    ``journal-verify`` trial matches their digest on replay.
    Best-effort; always returns ``error`` so callers can
    ``raise capture_lease_failure(...)`` in one expression.
    """
    if bundle_dir is None:
        return error
    try:
        from repro.bundle import capture_bundle, journal_digest
        paths = []
        token = 1
        while True:
            path = lease_journal_path(fabric_dir, shard, token)
            if not os.path.exists(path):
                break
            paths.append(path)
            token += 1
        if not paths:
            return error
        outcome = {"code": error.code,
                   "journals": journal_digest(paths)}
        capture_bundle(
            error, capture_point="fabric.lease", out_dir=bundle_dir,
            trial={"kind": "journal-verify"}, outcome=outcome,
            journal_files={os.path.basename(path): path
                           for path in paths})
    except Exception:
        pass  # a lost bundle must never mask the lease failure
    return error


def capture_merge_conflict(error: MergeConflict, fabric_dir: str,
                           bundle_dir: Optional[str]) -> None:
    """Export every fabric journal plus a re-runnable merge trial."""
    if bundle_dir is None:
        return
    try:
        from repro.bundle import capture_bundle, merge_outcome
        paths = fabric_journal_paths(fabric_dir)
        capture_bundle(
            error, capture_point="fabric.merge", out_dir=bundle_dir,
            trial={"kind": "merge"}, outcome=merge_outcome(error),
            journal_files={os.path.basename(path): path
                           for path in paths})
    except Exception:
        pass  # a lost bundle must never mask the merge conflict


def _shard_entry(shard: str, token: int, units: Sequence[WorkUnit],
                 journal_path: str, header: Dict[str, Any],
                 heartbeat_path: str, drain_path: str,
                 engine_config: EngineConfig,
                 heartbeat_interval_s: float) -> None:
    """Shard process main: supervised engine + lease heartbeat + drain poll.

    Exit codes are the completion protocol: 0 means every unit reached a
    terminal record, 3 means a drain paused the sweep mid-flight (the
    coordinator decides whether that was the global early-stop or an
    interruption to resume later); anything else is a crash and expires
    the lease.
    """
    def drain_hook() -> Optional[str]:
        try:
            with open(drain_path, "r", encoding="utf-8") as handle:
                reason = handle.read().strip()
        except OSError:
            return None
        return reason or "fabric drain broadcast"

    supervisor = CampaignSupervisor(SupervisorConfig())
    engine = CampaignEngine(engine_config, supervisor=supervisor,
                            drain_hook=drain_hook)
    with supervisor, supervisor.lease_heartbeat(heartbeat_path, token,
                                                heartbeat_interval_s):
        report = engine.run(list(units), journal_path,
                            journal_header=header)
    sys.exit(_EXIT_PAUSED if report.paused else _EXIT_COMPLETED)


class CampaignFabric:
    """Coordinator for one sharded, leased, crash-tolerant campaign.

    All durable state lives under ``fabric_dir``:

    * ``coordinator.jsonl`` — the coordinator's own CRC+rix journal
      (shard plan, every lease transition, the global stop, the final
      ``fabric_done``);
    * ``shard-<k>.lease-<t>.jsonl`` — one engine journal per lease
      grant, rebased from its predecessors on every steal;
    * ``shard-<k>.heartbeat`` — each holder's atomically-replaced
      liveness proof;
    * ``drain`` — the drain broadcast file (its content is the reason);
    * ``merged_report.json`` — the canonical merged artifact.

    Rerunning a fabric against the same directory *is* the resume path:
    replayed completions stay completed, every lease that was in flight
    is expired and re-granted under a fresh fencing token, and the merge
    produces byte-identical results.
    """

    COORDINATOR_JOURNAL = "coordinator.jsonl"
    MERGED_REPORT = "merged_report.json"
    DRAIN_FILE = "drain"

    def __init__(self, units: Sequence[WorkUnit], fabric_dir: str,
                 config: Optional[FabricConfig] = None):
        self.config = config if config is not None else FabricConfig()
        self.fabric_dir = fabric_dir
        self.plan: Dict[str, List[WorkUnit]] = build_plan(units,
                                                          self.config)
        self.table = LeaseTable(ttl_s=self.config.lease_ttl_s)
        self.processes: Dict[str, Any] = {}
        self._process_tokens: Dict[str, int] = {}
        self._cursors: Dict[str, JournalCursor] = {}
        self._paused_shards: Set[str] = set()
        self._failed_shards: Dict[str, str] = {}
        self._estimator = _GlobalEstimator(
            self.config.global_ci_half_width,
            self.config.global_min_trials, self.config.z)
        self._stopped_globally = False
        self._drain_reason = ""
        self._journal: Optional[Journal] = None
        self._previous_handlers: Dict[int, Any] = {}

    # -- paths -------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.fabric_dir, name)

    def _lease_journal(self, shard: str, token: int) -> str:
        return lease_journal_path(self.fabric_dir, shard, token)

    def _heartbeat_path(self, shard: str) -> str:
        return heartbeat_path(self.fabric_dir, shard)

    def _lease_header(self, shard: str, token: int) -> Dict[str, Any]:
        return lease_header(shard, token, len(self.plan))

    # -- drain -------------------------------------------------------------

    def request_drain(self, reason: str = "drain requested") -> None:
        """Broadcast a fleet-wide drain (idempotent, crash-durable)."""
        if not self._drain_reason:
            self._drain_reason = reason
        self._broadcast_drain(self._drain_reason)

    def _broadcast_drain(self, reason: str) -> None:
        drain_path = self._path(self.DRAIN_FILE)
        if not os.path.exists(drain_path):
            atomic_write_text(drain_path, reason)

    def _handle_signal(self, signum, frame) -> None:
        self.request_drain(f"signal {_signal.Signals(signum).name}")

    # -- coordinator journal replay ----------------------------------------

    def _replay(self) -> Dict[str, Any]:
        """Rebuild lease/fencing/plan state from the coordinator journal."""
        return replay_coordinator_state(
            self._path(self.COORDINATOR_JOURNAL), self.table)

    def _check_plan(self, planned: Optional[Dict[str, Any]]) -> None:
        record_or_check_plan(self._journal, planned, self.plan,
                             self.config.mode, self.fabric_dir)

    # -- lease lifecycle ---------------------------------------------------

    #: expiry reasons that are *not* steals: re-granting after these is
    #: plain resume and stays legal even with steal=False
    _BENIGN_EXPIRY = ("coordinator restart", "paused", "drained (paused)")

    def _grant(self, shard: str) -> None:
        previous = self.table.current(shard)
        if previous is not None:
            if not self.config.steal and \
                    previous.reason not in self._BENIGN_EXPIRY:
                raise self._captured_lease_failure(FabricError(
                    f"shard {shard!r} lost lease token {previous.token} "
                    f"({previous.reason or 'expired'}) and work stealing "
                    f"is disabled (steal=False)",
                    context={"shard": shard, "token": previous.token}),
                    shard)
            if self.table.token(shard) >= self.config.max_lease_attempts:
                raise self._captured_lease_failure(FabricError(
                    f"shard {shard!r} exhausted its "
                    f"{self.config.max_lease_attempts} lease attempts; "
                    f"poison shard — inspect its lease journals under "
                    f"{self.fabric_dir!r}",
                    context={"shard": shard,
                             "token": self.table.token(shard)}), shard)
        lease = self.table.grant(shard)
        journal_path = self._lease_journal(shard, lease.token)
        self._journal.append({
            "type": "lease_granted", "shard": shard, "token": lease.token,
            "ttl_s": lease.ttl_s,
            "journal": os.path.basename(journal_path)})
        sources = [self._lease_journal(shard, token)
                   for token in range(1, lease.token)]
        rebase_journal(sources, journal_path,
                       header=self._lease_header(shard, lease.token))
        self._watch(journal_path)
        context = multiprocessing.get_context(self.config.start_method)
        process = context.Process(
            target=_shard_entry,
            args=(shard, lease.token, self.plan[shard], journal_path,
                  self._lease_header(shard, lease.token),
                  self._heartbeat_path(shard), self._path(self.DRAIN_FILE),
                  self.config.shard_engine_config(),
                  self.config.heartbeat_interval_s))
        process.start()
        self.processes[shard] = process
        self._process_tokens[shard] = lease.token

    def _watch(self, journal_path: str) -> None:
        if journal_path not in self._cursors:
            self._cursors[journal_path] = JournalCursor(journal_path)

    # -- repro-bundle capture ----------------------------------------------

    def _captured_lease_failure(self, error: FabricError,
                                shard: str) -> FabricError:
        return capture_lease_failure(error, shard, self.fabric_dir,
                                     self.config.bundle_dir)

    def _capture_merge_conflict(self, error: MergeConflict) -> None:
        capture_merge_conflict(error, self.fabric_dir,
                               self.config.bundle_dir)

    def _reap(self, shard: str) -> None:
        """Settle a shard process that exited."""
        process = self.processes.pop(shard)
        token = self._process_tokens.pop(shard)
        exitcode = process.exitcode
        process.join()
        if exitcode == _EXIT_COMPLETED:
            self._accept(shard, token, paused=False)
        elif exitcode == _EXIT_PAUSED:
            if self._stopped_globally:
                self._accept(shard, token, paused=True)
            else:
                # An interruption (coordinator drain, direct signal to
                # the shard): release the lease cleanly so a resume
                # re-grants it; the journal keeps every durable batch.
                try:
                    self.table.expire(shard, "drained (paused)")
                except FabricError:
                    pass
                self._journal.append({"type": "lease_paused",
                                      "shard": shard, "token": token})
                self._paused_shards.add(shard)
        else:
            try:
                self.table.expire(
                    shard, f"holder died with exit code {exitcode}")
            except FabricError:
                pass
            self._journal.append({
                "type": "lease_expired", "shard": shard, "token": token,
                "reason": f"holder died with exit code {exitcode}"})

    def _accept(self, shard: str, token: int, paused: bool) -> None:
        """Run a completion through the fencing gate."""
        try:
            self.table.complete(shard, token)
        except (StaleFencingToken, LeaseExpired) as exc:
            # The fencing rule in action: a superseded or expired holder
            # finished anyway.  Its journal merges idempotently; only
            # its *bookkeeping* claim is refused.
            self._journal.append({
                "type": "lease_rejected", "shard": shard, "token": token,
                "code": exc.code, "reason": str(exc)})
            return
        self._journal.append({"type": "lease_completed", "shard": shard,
                              "token": token, "paused": paused})

    def _expire_stalled(self) -> None:
        for shard in self.table.expired_shards():
            lease = self.table.current(shard)
            reason = (f"no heartbeat for {self.config.lease_ttl_s:.1f}s "
                      f"(token {lease.token})")
            self.table.expire(shard, reason)
            self._journal.append({"type": "lease_expired", "shard": shard,
                                  "token": lease.token, "reason": reason})
            process = self.processes.pop(shard, None)
            self._process_tokens.pop(shard, None)
            if process is not None and process.is_alive():
                # Single-host fencing enforcement: the presumed-dead
                # holder is killed outright so it cannot race the thief
                # on shared resources.  (Its journal stays, and merge
                # dedup would make even a surviving zombie harmless.)
                process.kill()
                process.join(5.0)

    def _renew_from_heartbeats(self) -> None:
        for shard in self.table.active_shards():
            beat = read_heartbeat(self._heartbeat_path(shard))
            if beat is None:
                continue
            lease = self.table.current(shard)
            if beat.get("token") != lease.token:
                continue  # zombie beat under a superseded token
            try:
                self.table.renew(shard, lease.token,
                                 int(beat.get("beat", 0)))
            except (StaleFencingToken, LeaseExpired):  # pragma: no cover
                pass

    # -- global early-stop -------------------------------------------------

    def _tick_estimator(self) -> None:
        for cursor in self._cursors.values():
            for record in cursor.poll():
                self._estimator.absorb(record)
        if not self._stopped_globally and self._estimator.tight:
            estimate = self._estimator.estimate
            reason = (f"global early-stop: detection rate {estimate} "
                      f"after {estimate.trials} fleet-wide trials")
            self._stopped_globally = True
            self._journal.append({
                "type": "global_stop", "reason": reason,
                "estimate": {
                    "rate": estimate.rate, "low": estimate.low,
                    "high": estimate.high, "trials": estimate.trials,
                    "successes": estimate.successes}})
            self._broadcast_drain(reason)

    # -- main loop ---------------------------------------------------------

    def run(self) -> FabricReport:
        """Drive every shard to completion (or drain), then merge."""
        os.makedirs(self.fabric_dir, exist_ok=True)
        self._journal = Journal(self._path(self.COORDINATOR_JOURNAL),
                                salvage=True,
                                header={"role": "fabric-coordinator"})
        self._install_handlers()
        try:
            replay = self._replay()
            self._check_plan(replay["planned"])
            if replay["global_stop"] is not None:
                self._stopped_globally = True
                self._broadcast_drain(
                    replay["global_stop"].get("reason", "global early-stop"))
            for path in fabric_journal_paths(self.fabric_dir):
                self._watch(path)
            self._loop()
            _, report = self._merge()
            return report
        finally:
            self._terminate_all()
            self._uninstall_handlers()
            self._journal.close()
            self._journal = None

    def _loop(self) -> None:
        while True:
            open_shards = [
                shard for shard in self.plan
                if not self.table.completed(shard)
                and shard not in self._paused_shards]
            if not open_shards or \
                    (self._drain_reason and not self.processes):
                return
            for shard in open_shards:
                lease = self.table.current(shard)
                if (lease is None or not lease.active) and \
                        not self._drain_reason:
                    self._grant(shard)
            for shard in list(self.processes):
                if not self.processes[shard].is_alive():
                    self._reap(shard)
            self._renew_from_heartbeats()
            self._expire_stalled()
            self._tick_estimator()
            time.sleep(self.config.poll_interval_s)

    def _merge(self):
        report = finalize_fabric_merge(
            self.fabric_dir, z=self.config.z,
            stopped_globally=self._stopped_globally, table=self.table,
            plan=self.plan, paused_shards=self._paused_shards,
            journal=self._journal, bundle_dir=self.config.bundle_dir)
        return report.merged, report

    def _terminate_all(self) -> None:
        for shard, process in list(self.processes.items()):
            if process.is_alive():
                process.terminate()
                process.join(5.0)
                if process.is_alive():
                    process.kill()
                    process.join(5.0)
        self.processes.clear()
        self._process_tokens.clear()

    def _install_handlers(self) -> None:
        if not self.config.install_signal_handlers:
            return
        try:
            for signum in (_signal.SIGTERM, _signal.SIGINT):
                self._previous_handlers[signum] = _signal.signal(
                    signum, self._handle_signal)
        except ValueError:
            # Off the main thread CPython forbids signal(); callers can
            # still request_drain() programmatically.
            for signum, handler in self._previous_handlers.items():
                _signal.signal(signum, handler)  # pragma: no cover
            self._previous_handlers.clear()

    def _uninstall_handlers(self) -> None:
        while self._previous_handlers:
            signum, handler = self._previous_handlers.popitem()
            _signal.signal(signum, handler)


def finalize_fabric_merge(fabric_dir: str, *, z: float,
                          stopped_globally: bool, table: LeaseTable,
                          plan: Dict[str, List[WorkUnit]],
                          paused_shards: Set[str],
                          journal: Optional[Journal],
                          bundle_dir: Optional[str]) -> FabricReport:
    """Merge every lease journal under ``fabric_dir`` into the artifact.

    The shared tail of both coordinators (forking fabric and the
    network-attached service): merge, write ``merged_report.json``,
    decide paused-ness (a shard drained *between* units leaves nothing
    in any journal, so the lease table has the only evidence), journal
    ``fabric_done`` on full completion, and assemble the
    :class:`FabricReport`.  A merge conflict is exported as a repro
    bundle before it propagates.
    """
    try:
        merged = merge_shard_journals(
            fabric_journal_paths(fabric_dir), z=z,
            stopped_globally=stopped_globally)
    except MergeConflict as exc:
        capture_merge_conflict(exc, fabric_dir, bundle_dir)
        raise
    merged_path = os.path.join(fabric_dir, CampaignFabric.MERGED_REPORT)
    write_merged_report(merged, merged_path)
    paused = merged.report.paused or any(
        not table.completed(shard) for shard in plan)
    if not paused and journal is not None:
        journal.append({
            "type": "fabric_done", "stopped_globally": stopped_globally,
            "merged": os.path.basename(merged_path)})
    status = {}
    for shard in plan:
        lease = table.current(shard)
        if table.completed(shard):
            status[shard] = "completed"
        elif shard in paused_shards or paused:
            status[shard] = "paused"
        else:
            status[shard] = lease.state if lease else "pending"
    return FabricReport(
        merged=merged, fabric_dir=fabric_dir,
        merged_report_path=merged_path, shard_status=status,
        stopped_globally=stopped_globally, paused=paused,
        estimate=merged.estimate)


def run_fabric_campaign(units: Sequence[WorkUnit], fabric_dir: str,
                        config: Optional[FabricConfig] = None
                        ) -> FabricReport:
    """Run (or resume) one sharded campaign under ``fabric_dir``.

    Rerunning with the same directory and the same units resumes:
    completed shards stay completed, interrupted leases are re-granted
    under fresh fencing tokens, and the merged report is byte-identical
    to an undisturbed same-seed run.
    """
    return CampaignFabric(units, fabric_dir, config).run()
