"""Small bit-manipulation helpers shared by the ECC and gate-level layers.

All values are plain non-negative Python integers treated as bit vectors
(bit 0 is the least-significant bit).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import InvalidArgument


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``."""
    return value.bit_count()


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    return popcount(value) & 1


def mask(width: int) -> int:
    """Return a bit mask with the low ``width`` bits set."""
    if width < 0:
        raise InvalidArgument(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def get_bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value``."""
    return (value >> index) & 1


def set_bit(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit``."""
    if bit:
        return value | (1 << index)
    return value & ~(1 << index)


def flip_bits(value: int, indices) -> int:
    """Return ``value`` with every bit position in ``indices`` flipped."""
    for index in indices:
        value ^= 1 << index
    return value


def iter_bits(value: int, width: int) -> Iterator[int]:
    """Yield the low ``width`` bits of ``value``, LSB first."""
    for index in range(width):
        yield (value >> index) & 1


def bits_to_int(bits) -> int:
    """Pack an iterable of bits (LSB first) into an integer."""
    value = 0
    for index, bit in enumerate(bits):
        if bit:
            value |= 1 << index
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Unpack ``value`` into a list of ``width`` bits, LSB first."""
    return [(value >> index) & 1 for index in range(width)]


def bit_positions(value: int) -> List[int]:
    """Return the indices of the set bits of ``value`` in ascending order."""
    positions = []
    index = 0
    while value:
        if value & 1:
            positions.append(index)
        value >>= 1
        index += 1
    return positions


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``."""
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value
