"""Deliberately mis-scheduled passes proving the containment auditor bites.

The compiler-layer sibling of :mod:`repro.certify.tamper`: an auditor
that never fires is indistinguishable from one that checks nothing, so
these factories build resilience passes with a known, precisely located
containment defect.  The flagship is *late checking*: SW-Dup's
correctness rests on its compare/trap pairs executing **before** the
memory operation they guard, and a scheduler regression that slides a
check past its store turns every detected error at that boundary into a
detected-but-leaked one — memory is corrupted first, the trap fires
second.  The :class:`~repro.gpu.recovery.ContainmentAuditor` exists to
catch exactly this class of bug, and the acceptance tests run a
late-checked kernel through the recovery ladder and assert the auditor
raises :class:`~repro.errors.ContainmentViolation`.

Tampered passes are addressed by a JSON-serializable *spec* (``{"pass":
"swdup-late-check"}``) so a failure caught under one can be exported as
a repro bundle and rebuilt bit-identically on another machine.
Test-only: nothing here is registered in the scheme registry.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.compiler.base import PassResult
from repro.compiler.swdup import CHECKED_OPS, apply_swdup
from repro.errors import CompilationError
from repro.gpu.program import Kernel, KernelWriter


def apply_swdup_late_check(kernel: Kernel) -> PassResult:
    """SW-Dup with every checking pair slid *after* the op it guards.

    Starts from the honest :func:`~repro.compiler.swdup.apply_swdup`
    output, then re-schedules each ``checking``-tagged compare/trap pair
    to execute immediately after its guarded boundary instruction —
    store first, check second.  Detection still happens (same traps,
    same coverage counters), but any store consuming a corrupted value
    commits before the trap: strict read-time containment is broken
    while everything the campaign's outcome bins see stays plausible.
    Checks are never slid across a control-flow merge point, so the
    kernel remains well-formed.
    """
    duplicated = apply_swdup(kernel, check=True).kernel
    writer = KernelWriter(f"{kernel.name}.swdup-late-check")
    labels_at = duplicated.labels_at()
    pending = []
    for index, instruction in enumerate(duplicated.instructions):
        labels = labels_at.get(index, [])
        if labels and pending:
            for check in pending:
                writer.emit(check)
            pending = []
        for label in labels:
            writer.place_label(label)
        if instruction.meta.get("klass") == "checking":
            pending.append(instruction)
            continue
        writer.emit(instruction)
        if pending and instruction.op in CHECKED_OPS:
            for check in pending:
                writer.emit(check)
            pending = []
        elif pending:
            # the guarded op vanished (should not happen); fail safe by
            # emitting the checks rather than dropping detection
            for check in pending:
                writer.emit(check)
            pending = []
    for check in pending:
        writer.emit(check)
    for label in labels_at.get(len(duplicated.instructions), []):
        writer.place_label(label)
    return PassResult(writer.finish())


#: tampered pass name -> factory (the compiler-layer tamper registry;
#: deliberately *not* part of the scheme registry)
TAMPERED_PASSES = {
    "swdup-late-check": apply_swdup_late_check,
}


def compile_tampered(kernel: Kernel,
                     spec: Union[str, Dict[str, Any]]) -> PassResult:
    """Compile ``kernel`` under the tampered pass named by ``spec``.

    ``spec`` is either the pass name or a JSON dict ``{"pass": name}``
    (the form repro bundles serialize), so a bundle replay reconstructs
    the exact defective binary from the manifest alone.
    """
    if isinstance(spec, str):
        spec = {"pass": spec}
    if not isinstance(spec, dict) or "pass" not in spec:
        raise CompilationError(
            f"tamper spec must be a pass name or {{'pass': name}} dict, "
            f"got {spec!r}")
    name = spec["pass"]
    factory = TAMPERED_PASSES.get(name)
    if factory is None:
        raise CompilationError(
            f"unknown tampered pass {name!r}; choose from "
            f"{sorted(TAMPERED_PASSES)}")
    return factory(kernel)
