"""Resilience compiler passes and the scheme registry.

Schemes, matching the paper's evaluated configurations:

========================  ====================================================
``baseline``              the un-duplicated program
``swdup``                 software intra-thread duplication + checking code
``swdup-nocheck``         duplication without checking (analysis variant)
``swap-ecc``              Swap-ECC (Section III-A)
``pre-addsub``            Swap-Predict, fixed-point add/sub predictors
``pre-mad``               Swap-Predict, + multiply / MAD predictors
``pre-fxp``               Figure 16 projection: + other fixed-point ops
``pre-fp-addsub``         Figure 16 projection: + fp add/sub predictors
``pre-fp-mad``            Figure 16 projection: + fp multiply/MAD predictors
``interthread``           inter-thread duplication with shuffle checking
``interthread-nocheck``   inter-thread duplication without checking
========================  ====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CompilationError
from repro.gpu.program import Kernel, LaunchConfig
from repro.compiler.base import (KLASSES, PREDICTOR_TIERS, PassResult,
                                 predicted_kinds, tag_baseline)
from repro.compiler.interthread import apply_interthread
from repro.compiler.profiler import (MIX_CATEGORIES, CodeMixProfiler,
                                     MixCounts, OperandTracer)
from repro.compiler.swap_ecc import apply_swap_ecc, apply_swap_predict
from repro.compiler.swdup import apply_swdup

#: every compilation scheme, in the display order of Figures 12/13
SCHEMES = ("baseline", "swdup", "swap-ecc", "pre-addsub", "pre-mad",
           "pre-fxp", "pre-fp-addsub", "pre-fp-mad", "interthread",
           "interthread-nocheck", "swdup-nocheck")

#: the schemes whose detection rides on the register-file ECC decoder
SWAP_SCHEMES = ("swap-ecc", "pre-addsub", "pre-mad", "pre-fxp",
                "pre-fp-addsub", "pre-fp-mad")

_TIER_BY_SCHEME = {
    "pre-addsub": "addsub",
    "pre-mad": "mad",
    "pre-fxp": "fxp",
    "pre-fp-addsub": "fp-addsub",
    "pre-fp-mad": "fp-mad",
}


def compile_for_scheme(kernel: Kernel, launch: LaunchConfig,
                       scheme: str) -> PassResult:
    """Apply the named resilience scheme's backend pass to ``kernel``."""
    if scheme == "baseline":
        return PassResult(tag_baseline(kernel))
    if scheme == "swdup":
        return apply_swdup(kernel, check=True)
    if scheme == "swdup-nocheck":
        return apply_swdup(kernel, check=False)
    if scheme == "swap-ecc":
        return apply_swap_ecc(kernel)
    if scheme in _TIER_BY_SCHEME:
        return apply_swap_predict(kernel, _TIER_BY_SCHEME[scheme])
    if scheme == "interthread":
        return apply_interthread(kernel, launch, check=True)
    if scheme == "interthread-nocheck":
        return apply_interthread(kernel, launch, check=False)
    raise CompilationError(
        f"unknown scheme {scheme!r}; choose from {SCHEMES}")


def resilience_mode(scheme: str) -> str:
    """The simulator resilience mode the scheme's binaries expect."""
    if scheme in SWAP_SCHEMES:
        return "swap"
    if scheme in ("swdup", "interthread"):
        return "swdup"
    return "none"


__all__ = [
    "SCHEMES", "SWAP_SCHEMES", "PREDICTOR_TIERS", "KLASSES",
    "MIX_CATEGORIES",
    "PassResult", "predicted_kinds", "tag_baseline",
    "apply_interthread", "apply_swap_ecc", "apply_swap_predict",
    "apply_swdup",
    "CodeMixProfiler", "MixCounts", "OperandTracer",
    "compile_for_scheme", "resilience_mode",
]
