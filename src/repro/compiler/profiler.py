"""Binary-instrumentation analogs: code-mix profiler and operand tracer.

The paper builds SASSI-based tools (Section IV-A); here the simulator's
observer hook plays that role:

* :class:`CodeMixProfiler` counts dynamic warp instructions per Figure 13
  class (not-eligible / checked-predicted / checked-duplicated /
  compiler-inserted / checking);
* :class:`OperandTracer` extracts arithmetic operand values to drive
  gate-level fault injection with realistic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import InvalidArgument
from repro.gpu.isa import DupClass, Instruction
from repro.inject.operands import OperandTrace

#: Figure 13 stack order, bottom to top
MIX_CATEGORIES = ("not_eligible", "checked_predicted", "checked_duplicated",
                  "inserted", "checking")


@dataclass
class MixCounts:
    """Dynamic warp-instruction counts per Figure 13 category."""

    not_eligible: int = 0
    checked_predicted: int = 0
    checked_duplicated: int = 0
    inserted: int = 0
    checking: int = 0
    #: eligible instructions of an *untransformed* kernel
    plain_eligible: int = 0

    @property
    def total(self) -> int:
        return (self.not_eligible + self.checked_predicted +
                self.checked_duplicated + self.inserted + self.checking +
                self.plain_eligible)

    def as_fractions(self, baseline_total: int) -> Dict[str, float]:
        """Each category relative to the un-duplicated program's count."""
        if baseline_total <= 0:
            raise InvalidArgument("baseline total must be positive")
        return {name: getattr(self, name) / baseline_total
                for name in MIX_CATEGORIES}

    def bloat(self, baseline_total: int) -> float:
        """Total dynamic instruction bloat vs the un-duplicated program."""
        return self.total / baseline_total - 1.0


class CodeMixProfiler:
    """Observer counting every issued instruction into its mix category."""

    wants_values = False

    def __init__(self):
        self.counts = MixCounts()

    def on_step(self, warp, info) -> None:
        self.counts_for(info.instruction)

    def counts_for(self, instruction: Instruction) -> None:
        klass = instruction.meta.get("klass", "baseline")
        role = instruction.meta.get("role")
        counts = self.counts
        if klass == "checking":
            counts.checking += 1
        elif klass == "inserted":
            counts.inserted += 1
        elif klass == "duplicated":
            counts.checked_duplicated += 1
        elif klass == "predicted":
            counts.checked_predicted += 1
        else:  # baseline instruction of the original program
            if role == "original":
                counts.checked_duplicated += 1
            elif role == "predicted":
                counts.checked_predicted += 1
            elif instruction.spec.dup_class in (DupClass.BOUNDARY,
                                                DupClass.NEUTRAL):
                counts.not_eligible += 1
            else:
                counts.plain_eligible += 1


#: opcode -> operand-trace kind for the six Figure 10 units
_TRACE_KINDS = {
    "IADD": "int_add", "ISUB": "int_add",
    "IMUL": "int_mad", "IMAD": "int_mad",
    "FADD": "fp32_add", "FSUB": "fp32_add",
    "FMUL": "fp32_mad", "FFMA": "fp32_mad",
    "DADD": "fp64_add", "DSUB": "fp64_add",
    "DMUL": "fp64_mad", "DFMA": "fp64_mad",
}


class OperandTracer:
    """Observer recording arithmetic operand values for injection.

    Mirrors the paper's tracer bounds: a per-kind cap plays the role of the
    100k-instruction trace limit and ``lanes_per_step`` bounds how many of
    the 32 lane values each dynamic instruction contributes.

    Instructions that overwrite one of their own sources are skipped
    (their inputs are gone by the time the observer runs); this loses a
    small, unbiased slice of the stream.
    """

    wants_values = True

    def __init__(self, trace: Optional[OperandTrace] = None,
                 limit_per_kind: int = 4000, lanes_per_step: int = 2):
        self.trace = trace if trace is not None else OperandTrace()
        self.limit_per_kind = limit_per_kind
        self.lanes_per_step = lanes_per_step

    def full(self, kind: str) -> bool:
        return len(self.trace.values.get(kind, [])) >= self.limit_per_kind

    def on_step(self, warp, info) -> None:
        instruction = info.instruction
        kind = _TRACE_KINDS.get(instruction.op)
        if kind is None or info.active_lanes == 0 or self.full(kind):
            return
        dest_registers = set(instruction.dest_registers())
        if dest_registers.intersection(instruction.source_registers()):
            return
        wide = instruction.spec.is_64bit
        reader = warp.read_u64 if wide else warp.read_u32
        mask = np.ones(32, dtype=bool)
        values = []
        for operand in instruction.sources:
            if not operand.is_register and \
                    operand.kind.value not in ("imm",):
                return
            if operand.is_register:
                values.append(reader(operand, mask))
            else:
                fill = np.uint64(operand.value) if wide \
                    else np.uint32(operand.value)
                values.append(np.full(32, fill))
        lanes = 0
        for lane in range(32):
            if lanes >= self.lanes_per_step:
                break
            lanes += 1
            tuple_values = [int(column[lane]) for column in values]
            if kind.endswith("mad") and len(tuple_values) == 2:
                tuple_values.append(0)  # IMUL/FMUL: zero addend
            if kind == "int_mad":
                # The traced MAD consumes a 64-bit addend register pair.
                tuple_values[2] &= 0xFFFF_FFFF_FFFF_FFFF
            self.trace.add(kind, tuple(tuple_values))
