"""Shared infrastructure for the resilience compiler passes.

Every pass consumes an assembled :class:`~repro.gpu.program.Kernel` and
produces a transformed kernel whose instructions carry two metadata keys:

* ``role`` — how the register file should treat the write: ``original``,
  ``shadow`` (masked check-bit-only writeback), or ``predicted`` (check
  bits from a prediction unit / move propagation);
* ``klass`` — the Figure 13 accounting class: ``baseline`` (an instruction
  of the original program), ``duplicated`` (a shadow), ``predicted``,
  ``checking`` (comparison/trap code), or ``inserted`` (compiler
  sync/copy/overhead instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.gpu.isa import (OPCODES, PT, RZ, DupClass, Instruction, Operand,
                           OperandKind)
from repro.gpu.program import Kernel, KernelWriter, LaunchConfig

#: Figure 13 dynamic-instruction classes
KLASSES = ("baseline", "duplicated", "predicted", "checking", "inserted")

#: cumulative Swap-Predict predictor tiers (Figures 12 and 16)
PREDICTOR_TIERS = ("addsub", "mad", "fxp", "fp-addsub", "fp-mad")


def predicted_kinds(tier: Optional[str]) -> Tuple[str, ...]:
    """The prediction kinds covered by a cumulative predictor tier."""
    if tier is None:
        return ()
    if tier not in PREDICTOR_TIERS:
        raise CompilationError(
            f"unknown predictor tier {tier!r}; choose from "
            f"{PREDICTOR_TIERS}")
    index = PREDICTOR_TIERS.index(tier)
    return PREDICTOR_TIERS[:index + 1]


def is_eligible(instruction: Instruction) -> bool:
    """Duplication-eligible: produces a register value in the datapath."""
    spec = instruction.spec
    return (spec.dup_class in (DupClass.ELIGIBLE, DupClass.MOVE)
            and spec.writes_dest
            and instruction.dest is not None
            and instruction.dest.is_register
            and instruction.dest.value != RZ)


def is_move_like(instruction: Instruction) -> bool:
    """Moves and special-register reads: covered by move propagation."""
    return instruction.spec.dup_class is DupClass.MOVE


def tag(instruction: Instruction, klass: str,
        role: Optional[str] = None) -> Instruction:
    """Annotate an instruction with its accounting class and role."""
    if klass not in KLASSES:
        raise CompilationError(f"unknown klass {klass!r}")
    instruction.meta["klass"] = klass
    if role is not None:
        instruction.meta["role"] = role
    return instruction


def tag_baseline(kernel: Kernel) -> Kernel:
    """Mark every instruction of an untransformed kernel as baseline."""
    for instruction in kernel.instructions:
        instruction.meta.setdefault("klass", "baseline")
    return kernel


@dataclass
class PassResult:
    """A transformed kernel plus how the launch configuration changes."""

    kernel: Kernel
    #: multiply threads-per-CTA by this (inter-thread duplication uses 2)
    thread_multiplier: int = 1
    #: multiply shared memory per CTA by this
    shared_multiplier: int = 1

    def adjust_launch(self, launch: LaunchConfig) -> LaunchConfig:
        if self.thread_multiplier == 1 and self.shared_multiplier == 1:
            return launch
        return LaunchConfig(
            grid_ctas=launch.grid_ctas,
            threads_per_cta=launch.threads_per_cta * self.thread_multiplier,
            shared_words_per_cta=(launch.shared_words_per_cta *
                                  self.shared_multiplier))


class RegisterBudget:
    """Hands out scratch registers above a kernel's live range."""

    def __init__(self, kernel: Kernel, limit: int = RZ - 1):
        self.base = kernel.register_count()
        self.next = self.base
        self.limit = limit

    def fresh(self) -> int:
        if self.next > self.limit:
            raise CompilationError(
                f"out of registers (needs more than {self.limit})")
        register = self.next
        self.next += 1
        return register

    def fresh_pair(self) -> int:
        if self.next % 2:
            self.next += 1
        register = self.next
        self.next += 2
        if register + 1 > self.limit:
            raise CompilationError("out of registers for a 64-bit pair")
        return register


def remap_operand(operand: Operand, offset: int) -> Operand:
    """Shift a register operand into a shadow space ``offset`` above."""
    if operand.kind is OperandKind.REGISTER and operand.value != RZ:
        return Operand.reg(operand.value + offset)
    if operand.kind is OperandKind.REGISTER64 and operand.value != RZ:
        return Operand.reg64(operand.value + offset)
    return operand
