"""Inter-thread (redundant multithreading) duplication, Section V.

Doubles each CTA's thread count and pairs lanes 0-15 with lanes 16-31 of
every warp: both halves compute the same logical thread (thread-index reads
are rewritten so the pair sees the same index), shuffles exchange the
address and value at every global store and atomic for checking, and only
the original half performs the actual store.  Shared memory is doubled and
shadow lanes are redirected to their own partition.

The pass reproduces the paper's applicability limits: kernels that already
use shuffles are rejected (SNAP), and CTAs that would exceed 1024 threads
after doubling are rejected (matrixMul).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompilationError
from repro.gpu.isa import Instruction, Operand, OperandKind, RZ
from repro.gpu.program import Kernel, KernelWriter, LaunchConfig
from repro.compiler.base import PassResult, RegisterBudget, tag

#: predicate registers reserved by the pass
P_ORIGINAL = 4  # lane < 16
P_SHADOW = 5    # lane >= 16
P_CHECK = 6


def apply_interthread(kernel: Kernel, launch: LaunchConfig,
                      check: bool = True) -> PassResult:
    """Transform ``kernel`` for paired-lane redundant multithreading."""
    if launch.threads_per_cta * 2 > 1024:
        raise CompilationError(
            f"{kernel.name}: {launch.threads_per_cta} threads/CTA cannot "
            f"be doubled (inter-thread duplication limit)")
    for instruction in kernel.instructions:
        if instruction.op == "SHFL":
            raise CompilationError(
                f"{kernel.name}: uses shuffle instructions; inter-thread "
                f"duplication would corrupt them")
        if instruction.predicate is not None and \
                instruction.op in ("STG", "ATOM"):
            raise CompilationError(
                f"{kernel.name}: predicated global store/atomic is not "
                f"supported by the inter-thread pass")

    writer = KernelWriter(f"{kernel.name}.interthread")
    budget = RegisterBudget(kernel)
    lane_reg = budget.fresh()
    smoff_reg = budget.fresh()
    tmp_reg = budget.fresh()
    addr_reg = budget.fresh()
    shared_words = launch.shared_words_per_cta

    def inserted(instruction: Instruction) -> None:
        writer.emit(tag(instruction, "inserted"))

    def checking(instruction: Instruction) -> None:
        writer.emit(tag(instruction, "checking"))

    # --- prologue ---------------------------------------------------------
    inserted(Instruction(op="S2R", dest=Operand.reg(lane_reg),
                         sources=[Operand.special("SR_LANE")]))
    inserted(Instruction(op="ISETP", compare="LT",
                         dest=Operand.pred(P_ORIGINAL),
                         sources=[Operand.reg(lane_reg), Operand.imm(16)]))
    inserted(Instruction(op="ISETP", compare="GE",
                         dest=Operand.pred(P_SHADOW),
                         sources=[Operand.reg(lane_reg), Operand.imm(16)]))
    inserted(Instruction(op="MOV", dest=Operand.reg(smoff_reg),
                         sources=[Operand.imm(0)]))
    if shared_words:
        inserted(Instruction(op="MOV", dest=Operand.reg(smoff_reg),
                             sources=[Operand.imm(shared_words)],
                             predicate=P_SHADOW))

    def emit_pair_check(register: int) -> None:
        """Exchange a register across the pair and trap on mismatch."""
        if not check or register == RZ:
            return
        shuffle = Instruction(op="SHFL", dest=Operand.reg(tmp_reg),
                              sources=[Operand.reg(register),
                                       Operand.imm(16)])
        shuffle.meta["modifiers"] = ["BFLY"]
        checking(shuffle)
        checking(Instruction(op="ISETP", compare="NE",
                             dest=Operand.pred(P_CHECK),
                             sources=[Operand.reg(tmp_reg),
                                      Operand.reg(register)]))
        checking(Instruction(op="BPT", predicate=P_CHECK))

    labels_at = kernel.labels_at()
    for index, instruction in enumerate(kernel.instructions):
        for label in labels_at.get(index, []):
            writer.place_label(label)
        op = instruction.op

        if op == "S2R":
            special = instruction.sources[0].name
            if special == "SR_TID":
                # logical tid: (tid // 32) * 16 + (tid % 16)
                dest = instruction.dest
                writer.emit(tag(instruction.copy(), "baseline"))
                inserted(Instruction(op="SHR", dest=Operand.reg(tmp_reg),
                                     sources=[dest, Operand.imm(5)]))
                inserted(Instruction(op="SHL", dest=Operand.reg(tmp_reg),
                                     sources=[Operand.reg(tmp_reg),
                                              Operand.imm(4)]))
                inserted(Instruction(op="AND", dest=dest,
                                     sources=[dest, Operand.imm(15)]))
                inserted(Instruction(op="IADD", dest=dest,
                                     sources=[dest, Operand.reg(tmp_reg)]))
                continue
            if special == "SR_NTID":
                dest = instruction.dest
                writer.emit(tag(instruction.copy(), "baseline"))
                inserted(Instruction(op="SHR", dest=dest,
                                     sources=[dest, Operand.imm(1)]))
                continue
            writer.emit(tag(instruction.copy(), "baseline"))
            continue

        if op in ("LDS", "STS") and shared_words:
            # Redirect shadow lanes into their shared-memory partition.
            adjusted = instruction.copy()
            base = adjusted.sources[0]
            inserted(Instruction(op="IADD", dest=Operand.reg(addr_reg),
                                 sources=[base, Operand.reg(smoff_reg)]))
            adjusted.sources = [Operand.reg(addr_reg)] + \
                adjusted.sources[1:]
            writer.emit(tag(adjusted, "baseline"))
            continue

        if op == "STG":
            emit_pair_check(instruction.sources[0].value)
            for register in instruction.sources[1].registers():
                emit_pair_check(register)
            guarded = instruction.copy()
            guarded.predicate = P_ORIGINAL
            writer.emit(tag(guarded, "baseline"))
            continue

        if op == "ATOM":
            emit_pair_check(instruction.sources[0].value)
            for register in instruction.sources[1].registers():
                emit_pair_check(register)
            guarded = instruction.copy()
            guarded.predicate = P_ORIGINAL
            writer.emit(tag(guarded, "baseline"))
            if guarded.dest is not None and guarded.dest.value != RZ:
                # Broadcast the atomic's return value to the shadow half.
                shuffle = Instruction(op="SHFL",
                                      dest=Operand.reg(tmp_reg),
                                      sources=[guarded.dest,
                                               Operand.imm(16)])
                shuffle.meta["modifiers"] = ["BFLY"]
                inserted(shuffle)
                inserted(Instruction(op="MOV", dest=guarded.dest,
                                     sources=[Operand.reg(tmp_reg)],
                                     predicate=P_SHADOW))
            continue

        writer.emit(tag(instruction.copy(), "baseline"))

    for label in labels_at.get(len(kernel.instructions), []):
        writer.place_label(label)
    return PassResult(writer.finish(), thread_multiplier=2,
                      shared_multiplier=2 if shared_words else 1)
