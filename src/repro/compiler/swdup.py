"""Software-enforced intra-thread instruction duplication (SW-Dup).

The Base-DRDV-like pass the paper uses as its software baseline
(Section IV-A): every duplication-eligible instruction is doubled into a
shadow register space, and the original/shadow values are compared with
explicit checking instructions before any memory operation, atomic,
control-flow instruction, or other non-duplicated consumer.  Checking uses
a compare into a scratch predicate plus a predicated trap (two instructions
per checked register).

Costs modelled exactly as the paper describes: double arithmetic, roughly
double register usage (occupancy pressure), and 11-35% explicit checking
bloat depending on the workload's store/branch density.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import CompilationError
from repro.gpu.isa import (PT, RZ, DupClass, Instruction, Operand,
                           OperandKind)
from repro.gpu.program import Kernel, KernelWriter
from repro.compiler.base import (PassResult, is_eligible, remap_operand, tag)

#: scratch predicate reserved for checking comparisons
CHECK_PREDICATE = 6

#: predicate shadow space: P0-P2 original, P3-P5 shadow
PREDICATE_OFFSET = 3

#: instructions whose register inputs are checked before execution
CHECKED_OPS = ("LDG", "STG", "LDS", "STS", "ATOM", "SHFL")


def _shadow_predicate(index):
    """Map an original predicate to its shadow (PT maps to itself)."""
    if index is None or index == PT:
        return index
    if index >= PREDICATE_OFFSET:
        raise CompilationError(
            f"kernel uses P{index}; SW-Dup reserves P3-P6 "
            f"(shadow predicates and checking)")
    return index + PREDICATE_OFFSET


def _checkable_registers(instruction: Instruction) -> List[Operand]:
    """Register operands whose values must be verified before this runs."""
    seen: Set[int] = set()
    operands: List[Operand] = []
    for operand in instruction.sources:
        if operand.is_register and operand.value != RZ and \
                operand.value not in seen:
            seen.add(operand.value)
            operands.append(operand)
    if instruction.predicate is not None:
        pass  # predicates are verified through their source registers
    return operands


def apply_swdup(kernel: Kernel, check: bool = True) -> PassResult:
    """Duplicate ``kernel`` with shadow registers and checking code.

    ``check=False`` produces the duplication-only variant (used to isolate
    checking cost, mirroring the paper's inter-thread no-check study).

    Shadow copies of values produced by non-duplicated instructions (load
    results, special registers) are *deferred* until first needed — before
    a shadow consumer, a check, a redefinition, or a control-flow point —
    the way the production compiler's scheduler would place them, so a
    burst of independent loads keeps its memory-level parallelism.
    """
    offset = kernel.register_count()
    if 2 * offset >= RZ - 1:
        raise CompilationError(
            f"{kernel.name}: shadow space needs {2 * offset} registers")
    writer = KernelWriter(f"{kernel.name}.swdup")
    labels_at = kernel.labels_at()
    #: registers whose shadow copy is live and must be checked at uses
    shadowed: Set[int] = set()
    #: registers whose shadow copy has not been materialized yet
    pending: Dict[int, Instruction] = {}
    #: registers already compared against their shadow since their last
    #: redefinition — DRDV checks each produced value once, so verified
    #: registers are not re-checked at later boundaries
    verified: Set[int] = set()

    def flush_copy(register: int) -> None:
        copy = pending.pop(register, None)
        if copy is not None:
            writer.emit(copy)

    def flush_all() -> None:
        for register in list(pending):
            flush_copy(register)

    def defer_copy(instruction: Instruction) -> None:
        for register in instruction.dest_registers():
            copy = Instruction(
                op="MOV", dest=Operand.reg(register + offset),
                sources=[Operand.reg(register)],
                predicate=instruction.predicate,
                predicate_negated=instruction.predicate_negated)
            pending[register] = tag(copy, "inserted")
            shadowed.add(register)

    def emit_checks(instruction: Instruction) -> None:
        if not check or instruction.op not in CHECKED_OPS:
            return
        for operand in _checkable_registers(instruction):
            for register in operand.registers():
                if register not in shadowed or register in verified:
                    continue
                flush_copy(register)
                compare = Instruction(
                    op="ISETP", compare="NE",
                    dest=Operand.pred(CHECK_PREDICATE),
                    sources=[Operand.reg(register),
                             Operand.reg(register + offset)])
                writer.emit(tag(compare, "checking"))
                trap = Instruction(op="BPT", predicate=CHECK_PREDICATE)
                writer.emit(tag(trap, "checking"))
                verified.add(register)

    for index, instruction in enumerate(kernel.instructions):
        labels = labels_at.get(index, [])
        if labels:
            flush_all()  # control-flow merge point
        for label in labels:
            writer.place_label(label)
        spec = instruction.spec

        if spec.dup_class is DupClass.ELIGIBLE and not spec.writes_dest \
                and instruction.dest is not None and \
                instruction.dest.kind is OperandKind.PREDICATE:
            # Compares: duplicated into the shadow predicate space, so
            # control flow needs no explicit checks (control errors get
            # the paper's "incidental coverage" only).
            flush_all()  # pending predicated copies guard on old values
            for register in instruction.source_registers():
                flush_copy(register)
            original = instruction.copy()
            writer.emit(tag(original, "baseline", role="original"))
            shadow = instruction.copy()
            if shadow.dest.value != PT:
                shadow.dest = Operand.pred(
                    _shadow_predicate(shadow.dest.value))
            shadow.predicate = _shadow_predicate(shadow.predicate)
            shadow.sources = [
                remap_operand(op, offset) if _has_shadow(op, shadowed)
                else op
                for op in shadow.sources]
            writer.emit(tag(shadow, "duplicated", role="shadow"))
            continue

        if is_eligible(instruction):
            for register in instruction.dest_registers():
                flush_copy(register)  # about to be redefined
                verified.discard(register)
            for register in instruction.source_registers():
                flush_copy(register)  # the shadow reads register+offset
            original = instruction.copy()
            writer.emit(tag(original, "baseline", role="original"))
            shadow = instruction.copy()
            shadow.dest = remap_operand(shadow.dest, offset)
            shadow.predicate = _shadow_predicate(shadow.predicate)
            shadow.sources = [
                remap_operand(op, offset) if _has_shadow(op, shadowed)
                else op
                for op in shadow.sources]
            for op_index, operand in enumerate(shadow.sources):
                if operand.kind is OperandKind.PREDICATE and \
                        operand.value != PT:
                    shadow.sources[op_index] = Operand.pred(
                        _shadow_predicate(operand.value))
            writer.emit(tag(shadow, "duplicated", role="shadow"))
            shadowed.update(instruction.dest_registers())
            continue

        # Boundary or neutral instruction (stores, atomics, compares,
        # control flow): check its inputs, execute it once, and queue a
        # copy of any produced value into the shadow space so later
        # duplicated code keeps computing redundantly.
        emit_checks(instruction)
        if instruction.op in ("BRA", "EXIT", "BAR"):
            flush_all()  # copies must not be skipped by control flow
        if instruction.dest is not None and \
                instruction.dest.kind is OperandKind.PREDICATE:
            flush_all()  # pending predicated copies guard on old values
        for register in instruction.dest_registers():
            flush_copy(register)
            verified.discard(register)
        single = instruction.copy()
        writer.emit(tag(single, "baseline"))
        if spec.writes_dest and instruction.dest is not None and \
                instruction.dest.is_register and \
                instruction.dest.value != RZ:
            defer_copy(single)

    flush_all()
    for label in labels_at.get(len(kernel.instructions), []):
        writer.place_label(label)
    return PassResult(writer.finish())


def _has_shadow(operand: Operand, shadowed: Set[int]) -> bool:
    registers = operand.registers()
    return bool(registers) and all(r in shadowed for r in registers)
