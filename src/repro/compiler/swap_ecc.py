"""The Swap-ECC and Swap-Predict backend passes (Sections III-A, III-C).

Swap-ECC duplicates eligible instructions *in place*: the shadow writes
only the ECC check bits of the same destination register (the ``role``
metadata drives the simulator's masked writeback), so there is no shadow
register space and no checking code — detection rides on every register
read through the ECC decoder.

Swap-Predict is the same pass with a predictor tier: instructions whose
``predict_kind`` falls inside the tier are not duplicated at all; their
check bits come from the datapath's prediction units.  Moves and
special-register reads are never duplicated (end-to-end move propagation,
Figure 4).

The pass also enforces the no-single-register-accumulation constraint: an
instruction whose destination is also one of its sources would let the
original's write corrupt the shadow's inputs, so such instructions are
rewritten through a scratch register finished by a propagated move.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompilationError
from repro.gpu.isa import Instruction, Operand, OperandKind, RZ
from repro.gpu.program import Kernel, KernelWriter
from repro.compiler.base import (PassResult, RegisterBudget, is_eligible,
                                 is_move_like, predicted_kinds, tag)


def apply_swap_ecc(kernel: Kernel,
                   predictor_tier: Optional[str] = None) -> PassResult:
    """Transform ``kernel`` for a Swap-ECC (or Swap-Predict) machine."""
    kinds = predicted_kinds(predictor_tier)
    suffix = f".swap-{predictor_tier}" if predictor_tier else ".swap-ecc"
    writer = KernelWriter(kernel.name + suffix)
    budget = RegisterBudget(kernel)
    labels_at = kernel.labels_at()
    scratch32: List[int] = []
    scratch64: List[int] = []
    #: deferred move-backs from accumulation rewrites ("Swap-ECC-aware
    #: scheduling", Table II): (move, architectural regs, scratch regs)
    pending: List[tuple] = []

    def scratch(is_64bit: bool) -> int:
        pool = scratch64 if is_64bit else scratch32
        if not pool:
            pool.append(budget.fresh_pair() if is_64bit
                        else budget.fresh())
        return pool[0]

    def flush_pending(touched=None, scratch_needed=None,
                      predicate=None) -> None:
        """Emit deferred move-backs that the next instruction depends on."""
        keep = []
        for move, arch_regs, scratch_regs in pending:
            conflict = touched is None
            if touched is not None and arch_regs.intersection(touched):
                conflict = True
            if scratch_needed is not None and \
                    scratch_regs.intersection(scratch_needed):
                conflict = True
            if predicate is not None and move.predicate == predicate:
                conflict = True
            if conflict:
                writer.emit(move)
            else:
                keep.append((move, arch_regs, scratch_regs))
        pending[:] = keep

    for index, instruction in enumerate(kernel.instructions):
        if labels_at.get(index):
            flush_pending()  # control-flow merge point
        for label in labels_at.get(index, []):
            writer.place_label(label)

        touched = set(instruction.source_registers())
        touched.update(instruction.dest_registers())
        pred_dest = None
        if instruction.dest is not None and \
                instruction.dest.kind is OperandKind.PREDICATE:
            pred_dest = instruction.dest.value
        flush_pending(touched=touched, predicate=pred_dest)
        if instruction.op in ("BRA", "EXIT", "BAR"):
            flush_pending()

        if not is_eligible(instruction):
            writer.emit(tag(instruction.copy(), "baseline"))
            continue

        if is_move_like(instruction):
            # End-to-end move propagation: the full swapped codeword flows
            # through the datapath, no shadow needed.
            move = instruction.copy()
            writer.emit(tag(move, "baseline", role="predicted"))
            continue

        if instruction.spec.predict_kind in kinds:
            predicted = instruction.copy()
            writer.emit(tag(predicted, "predicted", role="predicted"))
            continue

        dest_registers = set(instruction.dest_registers())
        accumulates = bool(
            dest_registers.intersection(instruction.source_registers()))
        if not accumulates:
            original = instruction.copy()
            writer.emit(tag(original, "baseline", role="original"))
            shadow = instruction.copy()
            shadow.meta["swap_shadow"] = True
            writer.emit(tag(shadow, "duplicated", role="shadow"))
            continue

        # Single-register accumulation: rotate through a scratch register,
        # then propagate the swapped codeword back with a (deferred) move.
        is_64bit = instruction.dest.kind is OperandKind.REGISTER64
        temp = scratch(is_64bit)
        temp_operand = (Operand.reg64(temp) if is_64bit
                        else Operand.reg(temp))
        flush_pending(scratch_needed=set(temp_operand.registers()))
        rewritten = instruction.copy()
        final_dest = rewritten.dest
        rewritten.dest = temp_operand
        writer.emit(tag(rewritten, "baseline", role="original"))
        shadow = rewritten.copy()
        shadow.meta["swap_shadow"] = True
        writer.emit(tag(shadow, "duplicated", role="shadow"))
        move_back = Instruction(
            op="MOV", dest=final_dest, sources=[temp_operand],
            predicate=instruction.predicate,
            predicate_negated=instruction.predicate_negated)
        pending.append((tag(move_back, "inserted", role="predicted"),
                        set(final_dest.registers()),
                        set(temp_operand.registers())))

    flush_pending()
    for label in labels_at.get(len(kernel.instructions), []):
        writer.place_label(label)
    return PassResult(writer.finish())


def apply_swap_predict(kernel: Kernel, predictor_tier: str) -> PassResult:
    """Swap-Predict: Swap-ECC plus check-bit prediction for ``tier`` ops."""
    if predictor_tier is None:
        raise CompilationError("Swap-Predict needs a predictor tier")
    return apply_swap_ecc(kernel, predictor_tier)
