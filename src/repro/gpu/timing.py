"""Timing parameters for the SM model (a scaled-down Pascal-class GPU).

The defaults model a P100-like SM at reduced scale so cycle-level Python
simulation stays tractable: the ratios that drive the paper's performance
effects are preserved —

* dual-issue schedulers (spare issue slots absorb some duplication bloat),
* a half-rate FP64 pipe (why fp64-MAD-bound lavaMD suffers most),
* a register file sized so per-thread register growth costs occupancy,
* long global-memory latency hidden by thread-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.isa import Pipe
from repro.gpu.program import Kernel, LaunchConfig


@dataclass(frozen=True)
class TimingParams:
    """SM and device geometry plus issue/pipe behaviour."""

    clock_ghz: float = 1.3
    num_sms: int = 2
    issue_width: int = 4
    max_warps_per_sm: int = 32
    max_ctas_per_sm: int = 16
    registers_per_sm: int = 32768
    shared_words_per_sm: int = 12288
    #: extra per-transaction cycles a memory instruction holds the LSU
    lsu_cycles_per_transaction: int = 2
    #: per-SM L1 data cache capacity in 128B lines (0 disables caching)
    l1_lines: int = 512
    #: global-memory load-to-use latency on an L1 hit
    l1_hit_latency: int = 30

    def pipe_units(self, pipe: Pipe) -> int:
        """Execution units per pipe (P100-like 2-partition SM)."""
        if pipe in (Pipe.ALU, Pipe.FMA32):
            return 2
        return 1

    def occupancy(self, kernel: Kernel,
                  launch: LaunchConfig) -> "Occupancy":
        """Resident CTAs/warps per SM for this kernel (register pressure!)."""
        registers_per_thread = max(kernel.register_count(), 1)
        registers_per_cta = registers_per_thread * launch.threads_per_cta
        limits = {
            "ctas": self.max_ctas_per_sm,
            "warps": self.max_warps_per_sm // launch.warps_per_cta,
            "registers": self.registers_per_sm // registers_per_cta,
        }
        if launch.shared_words_per_cta:
            limits["shared"] = (self.shared_words_per_sm //
                                launch.shared_words_per_cta)
        ctas = min(limits.values())
        if ctas < 1:
            binding = min(limits, key=limits.get)
            raise SimulationError(
                f"kernel {kernel.name} cannot launch: {binding} limit "
                f"(needs {registers_per_cta} registers/CTA, "
                f"{launch.shared_words_per_cta} shared words/CTA)")
        return Occupancy(
            ctas_per_sm=ctas,
            warps_per_sm=ctas * launch.warps_per_cta,
            registers_per_thread=registers_per_thread,
            limiter=min(limits, key=limits.get))


@dataclass(frozen=True)
class Occupancy:
    """Resident-parallelism summary for one kernel launch."""

    ctas_per_sm: int
    warps_per_sm: int
    registers_per_thread: int
    limiter: str
