"""The SIMT GPU simulator: ISA, assembler, SM timing model, ECC semantics.

Quick tour::

    from repro.gpu import (Device, LaunchConfig, MemorySpace, assemble,
                           run_functional)

    kernel = assemble("vadd", '''
        S2R R0, SR_TID
        S2R R1, SR_CTAID
        S2R R2, SR_NTID
        IMAD R3, R1, R2, R0     // global thread id
        IADD R4, R3, 0          // a[i] address (a at 0)
        LDG R5, [R4]
        LDG R6, [R4+1024]       // b at 1024
        IADD R7, R5, R6
        STG [R4+2048], R7       // c at 2048
        EXIT
    ''')
    memory = MemorySpace(4096)
    result = Device().launch(kernel, LaunchConfig(4, 256), memory)
"""

from repro.gpu.asm import assemble, parse_instruction
from repro.gpu.device import (Device, LaunchResult, run_functional,
                              run_functional_cta)
from repro.gpu.power import PowerEstimate, PowerModel
from repro.gpu.recovery import (LADDER_OUTCOMES, ContainmentAuditor,
                                LadderConfig, LadderReport, RecoveryResult,
                                run_with_ladder, run_with_recovery)
from repro.gpu.isa import (OPCODES, PT, RZ, WARP_SIZE, DupClass, Instruction,
                           Operand, OperandKind, OpSpec, Pipe)
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, KernelWriter, LaunchConfig
from repro.gpu.resilience import (DetectionEvent, FaultPlan, ResilienceState,
                                  TaintTracker)
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.timing import Occupancy, TimingParams
from repro.gpu.warp import KernelHalt, StepInfo, Warp
from repro.gpu.watchdog import Watchdog, WatchdogConfig

__all__ = [
    "assemble", "parse_instruction",
    "Device", "LaunchResult", "run_functional", "run_functional_cta",
    "PowerEstimate", "PowerModel",
    "LADDER_OUTCOMES", "ContainmentAuditor", "LadderConfig", "LadderReport",
    "RecoveryResult", "run_with_ladder", "run_with_recovery",
    "Watchdog", "WatchdogConfig",
    "OPCODES", "PT", "RZ", "WARP_SIZE", "DupClass", "Instruction", "Operand",
    "OperandKind", "OpSpec", "Pipe",
    "MemorySpace",
    "Kernel", "KernelWriter", "LaunchConfig",
    "DetectionEvent", "FaultPlan", "ResilienceState", "TaintTracker",
    "StreamingMultiprocessor",
    "Occupancy", "TimingParams",
    "KernelHalt", "StepInfo", "Warp",
]
