"""Register-file ECC semantics and fault injection for the GPU simulator.

The simulator models SwapCodes *lazily*: during fault-free execution no ECC
bits are materialized (everything is consistent by construction).  When a
fault is injected, the affected register lane becomes *tainted* with an
explicit :class:`~repro.ecc.swap.RegisterWord` tracking its data, swapped
check bits, and parity bit; every later read of a tainted lane runs the
scheme's real decoder, which is where Swap-ECC detection happens.

Modes:

* ``none`` — unprotected: faults silently corrupt architectural state.
* ``swdup`` — software duplication: faults corrupt state; detection happens
  (or not) in the program's own checking code, which raises a trap (BPT).
* ``swap`` — Swap-ECC / Swap-Predict: faults taint registers; the
  register-file decoder (``scheme.read``) flags them on use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ecc.swap import ReadStatus, RegisterWord, SwapScheme
from repro.ecc.vectorized import BatchReadResult
from repro.errors import FaultModelError, SimulationError


@dataclass(frozen=True)
class FaultPlan:
    """A single transient error to inject during a kernel run.

    The fault strikes the ``occurrence``-th dynamic *datapath* instruction
    (register-writing ALU/FMA/SFU work) executed by warp ``warp_index`` of
    CTA ``cta_index``, flipping ``bit`` of the result in ``lane``.
    ``where`` selects the struck structure:

    * ``"result"`` — the main datapath (data wrong).  Striking a shadow
      instruction this way corrupts only its check-bit writeback, because
      shadows never write data.
    * ``"predictor"`` — the check-bit prediction unit of a predicted
      instruction (check bits wrong, data intact).
    * ``"storage"`` — the register-file cell itself, flipping a stored
      data bit *after* the duplicated pair completed.  Check bits and
      data-parity still describe the true value, so the correcting
      schemes (SEC-DED-DP, SEC-DP) repair it in place at the next read
      while detect-only schemes DUE.  Storage strikes on shadow
      instructions (which own no data segment) do not fire.

    Multi-bit and correlated upsets (the MBU patterns field studies
    report) are expressed with three optional extensions:

    * ``bits`` — an explicit tuple of bit indices struck together,
      overriding the ``bit``/``burst`` pair.  Arbitrary (possibly
      non-contiguous) multi-bit masks.
    * ``burst`` — a contiguous burst of ``burst`` bits starting at
      ``bit`` (default 1, the classic single-event upset).
    * ``lanes`` — a tuple of additional lanes struck by the same event,
      modelling the row/column-correlated strikes that span a warp's
      adjacent datapath lanes.  Defaults to just ``lane``.

    Bits that fall outside the struck value's width are *dropped*, never
    wrapped: a 40-bit burst on a 32-bit register clips to the top of the
    register, exactly as a physical strike spanning past the array edge
    would.  Malformed plans (out-of-range indices, empty strike sets,
    non-positive burst widths) raise :class:`~repro.errors.FaultModelError`
    at construction.
    """

    cta_index: int
    warp_index: int
    occurrence: int
    lane: int
    bit: int
    where: str = "result"
    bits: Optional[Tuple[int, ...]] = None
    burst: int = 1
    lanes: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.where not in ("result", "predictor", "storage"):
            raise SimulationError(f"unknown fault site {self.where!r}")
        if not 0 <= self.lane < 32:
            raise SimulationError(f"lane {self.lane} out of range")
        if not 0 <= self.bit < 64:
            raise SimulationError(f"bit {self.bit} out of range")
        # JSON round-trips hand us lists; normalise to tuples so the plan
        # stays hashable and comparable.
        if self.bits is not None and not isinstance(self.bits, tuple):
            object.__setattr__(self, "bits", tuple(self.bits))
        if self.lanes is not None and not isinstance(self.lanes, tuple):
            object.__setattr__(self, "lanes", tuple(self.lanes))
        if not isinstance(self.burst, int) or self.burst < 1:
            raise FaultModelError(
                f"burst width must be a positive integer, got {self.burst!r}")
        if self.bits is not None:
            if len(self.bits) == 0:
                raise FaultModelError(
                    "bits must be a nonempty tuple of bit indices (omit it "
                    "for a single-bit strike at `bit`)")
            for index in self.bits:
                if not isinstance(index, int) or not 0 <= index < 64:
                    raise FaultModelError(
                        f"strike bit {index!r} out of range [0, 64)")
            if len(set(self.bits)) != len(self.bits):
                raise FaultModelError(
                    f"strike bits must be distinct, got {self.bits}")
        if self.lanes is not None:
            if len(self.lanes) == 0:
                raise FaultModelError(
                    "lanes must be a nonempty tuple of lane indices (omit "
                    "it for a single-lane strike at `lane`)")
            for index in self.lanes:
                if not isinstance(index, int) or not 0 <= index < 32:
                    raise FaultModelError(
                        f"strike lane {index!r} out of range [0, 32)")
            if len(set(self.lanes)) != len(self.lanes):
                raise FaultModelError(
                    f"strike lanes must be distinct, got {self.lanes}")

    @property
    def strike_bits(self) -> Tuple[int, ...]:
        """The bit indices this event flips (before width clipping)."""
        if self.bits is not None:
            return self.bits
        return tuple(range(self.bit, min(self.bit + self.burst, 64)))

    @property
    def strike_lanes(self) -> Tuple[int, ...]:
        """Every lane this event strikes (always includes ``lane``)."""
        if self.lanes is None:
            return (self.lane,)
        return self.lanes if self.lane in self.lanes \
            else (self.lane,) + self.lanes

    @property
    def multiplicity(self) -> int:
        """Number of bits flipped per struck lane (before clipping)."""
        return len(self.strike_bits)

    def strike_mask(self, width: int) -> int:
        """XOR mask of the strike clipped to a ``width``-bit value.

        Bits beyond ``width`` are dropped — a strike aimed past the edge
        of a narrow register simply has fewer effective flips, and a mask
        of zero means the event fired without corrupting anything (the
        campaign bins it as masked).
        """
        strike = 0
        for index in self.strike_bits:
            if index < width:
                strike |= 1 << index
        return strike

    def to_dict(self) -> Dict[str, object]:
        """The JSON form of this plan (for journals and repro bundles)."""
        return {
            "cta_index": self.cta_index,
            "warp_index": self.warp_index,
            "occurrence": self.occurrence,
            "lane": self.lane,
            "bit": self.bit,
            "where": self.where,
            "bits": list(self.bits) if self.bits is not None else None,
            "burst": self.burst,
            "lanes": list(self.lanes) if self.lanes is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        ``__post_init__`` re-validates and re-normalises (lists back to
        tuples), so ``FaultPlan.from_dict(plan.to_dict()) == plan`` and a
        tampered payload fails loudly instead of striking elsewhere.
        """
        known = {name: payload.get(name) for name in (
            "cta_index", "warp_index", "occurrence", "lane", "bit")}
        missing = [name for name, value in known.items() if value is None]
        if missing:
            raise FaultModelError(
                f"fault-plan payload is missing fields: {missing}")
        return cls(where=payload.get("where", "result"),
                   bits=payload.get("bits"),
                   burst=payload.get("burst", 1),
                   lanes=payload.get("lanes"),
                   **known)


@dataclass
class DetectionEvent:
    """One detection: an ECC DUE at a register read, or a checking trap."""

    kind: str  # "due", "trap", or "corrected"
    cta_index: int
    warp_index: int
    pc: int
    detail: str = ""


@dataclass
class ResilienceState:
    """Per-launch error bookkeeping shared by all warps."""

    mode: str = "none"
    scheme: Optional[SwapScheme] = None
    halt_on_detect: bool = True
    fault: Optional[FaultPlan] = None
    events: List[DetectionEvent] = field(default_factory=list)
    fault_fired: bool = False

    def __post_init__(self):
        if self.mode not in ("none", "swdup", "swap"):
            raise SimulationError(f"unknown resilience mode {self.mode!r}")
        if self.mode == "swap" and self.scheme is None:
            raise SimulationError("swap mode needs a SwapScheme")

    @property
    def detected(self) -> bool:
        """True once any uncorrectable detection (DUE/trap) recorded."""
        return any(event.kind in ("due", "trap") for event in self.events)

    def record(self, kind: str, cta_index: int, warp_index: int, pc: int,
               detail: str = "") -> None:
        """Append one :class:`DetectionEvent` to the launch log."""
        self.events.append(
            DetectionEvent(kind, cta_index, warp_index, pc, detail))


class TaintTracker:
    """Tainted register lanes of one warp: (register, lane) -> ECC word."""

    def __init__(self, scheme: SwapScheme):
        self.scheme = scheme
        self.words: Dict[Tuple[int, int], RegisterWord] = {}

    def __bool__(self) -> bool:
        return bool(self.words)

    def taint_original(self, register: int, lane: int,
                       bad_value: int) -> None:
        """The original instruction wrote a faulty value (valid codeword)."""
        self.words[(register, lane)] = \
            self.scheme.write_original(bad_value)

    def taint_check_only(self, register: int, lane: int, data_value: int,
                         wrong_value: int) -> None:
        """A shadow/predictor fault: clean data, check bits of a wrong value."""
        word = self.scheme.write_original(data_value)
        self.words[(register, lane)] = \
            self.scheme.write_shadow(word, wrong_value)

    def on_full_write(self, register: int, lane: int) -> None:
        """A clean full-register write replaces any tainted word."""
        self.words.pop((register, lane), None)

    def on_shadow_write(self, register: int, lane: int,
                        shadow_value: int) -> None:
        """The shadow of a tainted original updates only the check bits."""
        key = (register, lane)
        word = self.words.get(key)
        if word is not None:
            self.words[key] = self.scheme.write_shadow(word, shadow_value)

    def taint_data_with_true_check(self, register: int, lane: int,
                                   bad_value: int, true_value: int) -> None:
        """Bad data whose check bits encode the true value.

        This is a predicted instruction struck in its datapath: the
        prediction unit still produced the correct check bits.
        """
        word = self.scheme.write_original(bad_value)
        self.words[(register, lane)] = \
            self.scheme.write_shadow(word, true_value)

    def taint_storage(self, register: int, lane: int, true_value: int,
                      bit: int) -> None:
        """A storage upset: flipped stored data under a healthy pair.

        The word is what :meth:`~repro.ecc.swap.SwapScheme.storage_strike`
        builds — check bits (and DP bit) of the true value over data with
        one flipped bit — so correcting schemes scrub it in place at the
        next read and detect-only schemes refuse it.
        """
        self.words[(register, lane)] = \
            self.scheme.storage_strike(true_value, bit)

    def taint_storage_mask(self, register: int, lane: int, true_value: int,
                           strike_mask: int) -> None:
        """A multi-bit storage upset: flipped stored data under a healthy pair.

        The MBU counterpart of :meth:`taint_storage` — every set bit of
        ``strike_mask`` flips in the stored data segment while the check
        bits (and DP bit) keep describing the true value.
        """
        self.words[(register, lane)] = \
            self.scheme.storage_strike_mask(true_value, strike_mask)

    def taint_bad_check_bit(self, register: int, lane: int,
                            true_value: int, bit: int) -> None:
        """Clean data with one flipped bit in the predicted check field."""
        word = self.scheme.write_original(true_value)
        flip = 1 << (bit % self.scheme.code.check_bits)
        self.words[(register, lane)] = word.with_check_error(flip)

    def taint_check_strike(self, register: int, lane: int, true_value: int,
                           bits: Sequence[int]) -> bool:
        """A (possibly multi-bit) strike on the check-prediction unit.

        Each datapath bit index folds onto the narrow predicted check
        field exactly as :meth:`taint_bad_check_bit` folds one — the
        physical structure only has ``check_bits`` cells, so a wide event
        lands on whatever cells underlie the struck positions.  Returns
        False (and taints nothing) when the folds cancel pairwise and
        the predicted check field comes out intact.
        """
        flip = 0
        for bit in bits:
            flip ^= 1 << (bit % self.scheme.code.check_bits)
        if flip == 0:
            return False
        word = self.scheme.write_original(true_value)
        self.words[(register, lane)] = word.with_check_error(flip)
        return True

    def read(self, register: int, lane: int):
        """Decode a tainted lane as the register file read port would.

        Returns ``(status, data)``; the caller drops the taint and reacts.
        """
        word = self.words.pop((register, lane))
        result = self.scheme.read(word)
        return result.status, result.data

    def read_many(self, keys: Sequence[Tuple[int, int]]) -> BatchReadResult:
        """Decode several tainted lanes in one vectorized read-port pass.

        ``keys`` are (register, lane) pairs that must all be tainted; the
        taints are dropped (as :meth:`read` does) and the whole batch runs
        through :meth:`~repro.ecc.swap.SwapScheme.read_many` — this is how
        the warp register file decodes every tainted lane of a register
        read in one call instead of one scalar decode per lane.
        """
        words = [self.words.pop(key) for key in keys]
        data = np.array([word.data for word in words], dtype=np.uint64)
        check = np.array([word.check for word in words], dtype=np.uint64)
        dp = np.array([word.dp for word in words], dtype=np.uint64) \
            if self.scheme.uses_data_parity else None
        return self.scheme.read_many(data, check, dp)
